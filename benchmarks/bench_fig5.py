"""Benchmark F5 — Figure 5: the block-size distribution, plus the raw
generator throughput (blocks generated+optimized per second)."""

from repro.experiments import fig5
from repro.experiments.runner import mean
from repro.synth.population import sample_population

from conftest import publish


def test_fig5_regeneration(benchmark, population_records, results_dir):
    result = benchmark(fig5.run_from_records, population_records)
    publish(results_dir, "fig5", result.render())
    sizes = [r.size for r in result.records]
    assert 17.0 <= mean(sizes) <= 24.0  # paper: 20.6
    benchmark.extra_info["mean_block_size"] = round(mean(sizes), 2)


def test_generator_throughput(benchmark):
    def generate_corpus():
        return [gb for gb in sample_population(60, master_seed=4)]

    blocks = benchmark(generate_corpus)
    assert len(blocks) == 60
