"""Benchmark H — the flattened hot core against the reference engine.

The pytest-benchmark view of the ``repro-bench`` measurement: one
population pass per engine (identical results enforced) plus the
headline speedup, published to ``results/hot_core.txt`` so the perf
trajectory is tracked next to the experiment tables.
"""

from repro.bench.hot_core import run_bench

from conftest import bench_population_size, publish


def test_hot_core_speedup(benchmark, results_dir):
    payload, failures = run_bench(
        blocks=bench_population_size(),
        repeats=5,
    )
    assert failures == [], failures

    pop = payload["suites"]["population"]
    kern = payload["suites"]["kernels"]

    def headline():
        return (
            f"population speedup {pop['speedup']}x "
            f"({pop['blocks']} blocks, {pop['omega_calls']} omega calls)"
        )

    benchmark.pedantic(headline, rounds=1, iterations=1)
    rendered = (
        "H — flattened hot core vs reference engine\n"
        f"population: {pop['blocks']} blocks, fast "
        f"{pop['engines']['fast']['wall_seconds']:.2f}s vs reference "
        f"{pop['engines']['reference']['wall_seconds']:.2f}s "
        f"-> {pop['speedup']}x ({pop['engines']['fast']['omega_per_sec']:.0f} "
        "omega calls/s)\n"
        f"kernels: {len(kern['entries'])} kernel x machine pairs "
        f"-> {kern['speedup']}x\n"
        f"identical results: {payload['summary']['identical']}, "
        f"certified: {pop['certified']}/{pop['blocks']}"
    )
    publish(results_dir, "hot_core", rendered)
    benchmark.extra_info["speedup"] = pop["speedup"]
    benchmark.extra_info["omega_per_sec"] = pop["engines"]["fast"][
        "omega_per_sec"
    ]
    assert pop["identical"] and kern["speedup"] is not None
