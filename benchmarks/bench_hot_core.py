"""Benchmark H — the flattened and vector hot cores against the reference.

The pytest-benchmark view of the ``repro-bench`` measurement: one
population pass per engine (identical results enforced) plus the
headline speedups, published to ``results/hot_core.txt`` so the perf
trajectory is tracked next to the experiment tables.
"""

from repro.bench.hot_core import run_bench

from conftest import bench_population_size, publish


def test_hot_core_speedup(benchmark, results_dir):
    payload, failures = run_bench(
        blocks=bench_population_size(),
        repeats=5,
    )
    assert failures == [], failures

    pop = payload["suites"]["population"]
    kern = payload["suites"]["kernels"]

    def headline():
        return (
            f"population speedups fast {pop['speedups']['fast']}x, "
            f"vector {pop['speedups']['vector']}x "
            f"({pop['blocks']} blocks, {pop['omega_calls']} omega calls)"
        )

    benchmark.pedantic(headline, rounds=1, iterations=1)
    walls = ", ".join(
        f"{name} {pop['engines'][name]['wall_seconds']:.2f}s"
        for name in ("fast", "vector", "reference")
    )
    rendered = (
        "H — flattened + vector hot cores vs reference engine\n"
        f"population: {pop['blocks']} blocks, {walls} "
        f"-> fast {pop['speedups']['fast']}x, "
        f"vector {pop['speedups']['vector']}x "
        f"({pop['engines']['fast']['omega_per_sec']:.0f} omega calls/s on "
        "fast)\n"
        f"kernels: {len(kern['entries'])} kernel x machine pairs "
        f"-> fast {kern['speedups']['fast']}x, "
        f"vector {kern['speedups']['vector']}x\n"
        f"identical results: {payload['summary']['identical']}, "
        f"certified: {pop['certified']}/{pop['blocks']}"
    )
    publish(results_dir, "hot_core", rendered)
    benchmark.extra_info["speedups"] = pop["speedups"]
    benchmark.extra_info["omega_per_sec"] = pop["engines"]["fast"][
        "omega_per_sec"
    ]
    assert pop["identical"] and kern["speedups"]["fast"] is not None
