"""Benchmark X1 — multi-pipeline selection (Tables 2+3 machine and the
asymmetric-units machine): joint order+assignment search vs static
pinning (paper footnote 3)."""

import pytest

from repro.experiments import extension
from repro.ir.dag import DependenceDAG
from repro.machine.presets import paper_example_machine
from repro.sched.multi import (
    first_pipeline_assignment,
    schedule_block_multi,
)
from repro.sched.search import SearchOptions, schedule_block
from repro.synth.population import sample_population

from conftest import publish


@pytest.fixture(scope="module")
def selection_dags():
    return [
        DependenceDAG(gb.block)
        for gb in sample_population(25, master_seed=99)
        if len(gb.block) > 1
    ]


def test_x1_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        extension.run_x1,
        kwargs=dict(n_blocks=60, curtail=30_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "extension_x1", result.render())
    assert result.joint_never_loses
    by_key = {(r.machine, r.policy): r for r in result.rows}
    joint = by_key[("asymmetric-units", "joint search (extension)")]
    first = by_key[("asymmetric-units", "first-pipeline (pinned)")]
    rr = by_key[("asymmetric-units", "round-robin (pinned)")]
    assert joint.avg_nops <= min(first.avg_nops, rr.avg_nops)


def test_joint_search_cost(benchmark, selection_dags):
    machine = paper_example_machine()
    options = SearchOptions(curtail=30_000)

    def run_all():
        return sum(
            schedule_block_multi(dag, machine, options).total_nops
            for dag in selection_dags
        )

    benchmark(run_all)


def test_pinned_search_cost(benchmark, selection_dags):
    machine = paper_example_machine()
    options = SearchOptions(curtail=30_000)

    def run_all():
        return sum(
            schedule_block(
                dag, machine, options,
                assignment=first_pipeline_assignment(dag, machine),
            ).final_nops
            for dag in selection_dags
        )

    benchmark(run_all)
