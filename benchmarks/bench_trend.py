#!/usr/bin/env python
"""Speedup trend report: fresh ``BENCH_search.json`` vs the committed one.

Usage::

    python benchmarks/bench_trend.py BASELINE FRESH [--out summary.md]

Prints a per-engine speedup-delta table in GitHub-flavoured markdown
(suitable for ``$GITHUB_STEP_SUMMARY``).  This is a *report*, never a
perf gate: shared CI runners are far too noisy for speedup assertions,
so the script always exits 0 once both files parse — correctness
divergence is already a non-zero exit from ``repro-bench`` itself.

Engine-agnostic across payload schemas: ``repro-bench/2`` and ``/3``
carry per-engine ``speedups`` dicts (whatever engines they name — the
table is the union of baseline and fresh, so a new or renamed engine
never raises); the oldest ``repro-bench/1`` had a single scalar
``speedup`` for the fast engine.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional


def _load(path: str) -> Optional[dict]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench-trend: cannot read {path}: {exc}", file=sys.stderr)
        return None


def _suite_speedups(payload: dict, suite: str) -> Dict[str, Optional[float]]:
    """Per-engine speedup-over-reference, from either schema version."""
    data = payload.get("suites", {}).get(suite, {})
    if "speedups" in data:  # repro-bench/2 and later
        return dict(data["speedups"])
    if "speedup" in data:  # repro-bench/1: fast vs reference only
        return {"fast": data["speedup"]}
    return {}


def _fmt(value: Optional[float]) -> str:
    return f"{value:.3f}x" if isinstance(value, (int, float)) else "—"


def _delta(base: Optional[float], fresh: Optional[float]) -> str:
    if not isinstance(base, (int, float)) or not isinstance(
        fresh, (int, float)
    ):
        return "—"
    return f"{fresh - base:+.3f}"


def render(baseline: dict, fresh: dict) -> str:
    lines = [
        "### Engine speedup trend (vs reference, report-only)",
        "",
        f"Baseline schema `{baseline.get('schema', '?')}`, "
        f"fresh schema `{fresh.get('schema', '?')}`; "
        f"blocks: {fresh.get('config', {}).get('blocks', '?')}.",
        "",
        "| suite | engine | baseline | fresh | delta |",
        "| --- | --- | --- | --- | --- |",
    ]
    for suite in ("population", "kernels"):
        base_ups = _suite_speedups(baseline, suite)
        fresh_ups = _suite_speedups(fresh, suite)
        # Union of engines, baseline order first: a new engine appears
        # with a "—" baseline, a dropped one with a "—" fresh column.
        engines = list(base_ups) + [
            e for e in fresh_ups if e not in base_ups
        ]
        for engine in engines:
            base = base_ups.get(engine)
            new = fresh_ups.get(engine)
            lines.append(
                f"| {suite} | {engine} | {_fmt(base)} | {_fmt(new)} "
                f"| {_delta(base, new)} |"
            )
    summary = fresh.get("summary", {})
    lines += [
        "",
        f"Fresh run identical across engines: "
        f"`{summary.get('identical', '?')}`; "
        f"failures: {len(summary.get('failures', []))}.",
        "",
        "_Deltas on shared runners are noise-dominated; this table tracks "
        "direction over time and is never a gate._",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_search.json")
    parser.add_argument("fresh", help="freshly produced BENCH_search.json")
    parser.add_argument(
        "--out",
        default=None,
        help="also append the report to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    if baseline is None or fresh is None:
        # Report-only contract: a missing baseline must not fail the job.
        print("bench-trend: nothing to compare, skipping", file=sys.stderr)
        return 0
    report = render(baseline, fresh)
    print(report, end="")
    if args.out:
        try:
            with open(args.out, "a") as fh:
                fh.write(report)
        except OSError as exc:
            print(
                f"bench-trend: cannot write {args.out}: {exc}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
