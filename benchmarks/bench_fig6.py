"""Benchmark F6 — Figure 6: scheduling runtime vs block size, and the
paper's throughput claim ("about 100 typical blocks per second" on a Sun
3/50; section 6)."""

from repro.experiments import fig6

from conftest import publish


def test_fig6_regeneration(benchmark, population_records, results_dir):
    result = benchmark(fig6.run_from_records, population_records)
    publish(results_dir, "fig6", result.render())
    # Same decade as the paper's ~100 blocks/s claim: pure Python per-call
    # overhead roughly cancels 35 years of hardware, and the rare
    # truncated blocks (lambda = 50,000) dominate the denominator.
    assert result.blocks_per_second > 20
    benchmark.extra_info["blocks_per_second"] = round(result.blocks_per_second)
