"""Benchmark T7 — Table 7: statistics for scheduling the block corpus.

Benchmarks the full per-block scheduling pipeline (DAG + seed + optimal
search) at corpus scale and regenerates the paper's summary table.
"""

from repro.experiments import table7
from repro.experiments.runner import DEFAULT_CURTAIL, run_population

from conftest import bench_population_size, publish


def test_table7_regeneration(benchmark, population_records, results_dir):
    result = benchmark.pedantic(
        table7.run_from_records,
        args=(population_records, DEFAULT_CURTAIL),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "table7", result.render())
    complete = result.column(result.complete)
    # Shape assertions mirroring the paper's headline row.
    assert complete["percentage"] >= 95.0
    assert complete["avg_final_nops"] < complete["avg_initial_nops"] / 3
    benchmark.extra_info["summary"] = result.summary_line()


def test_population_scheduling_throughput(benchmark):
    """End-to-end blocks/second (paper: ~100 blocks/s on a Sun 3/50)."""
    n = max(20, bench_population_size() // 10)
    records = benchmark.pedantic(
        run_population,
        args=(n,),
        kwargs=dict(curtail=DEFAULT_CURTAIL, master_seed=77),
        rounds=1,
        iterations=1,
    )
    assert len(records) == n
    benchmark.extra_info["blocks"] = n
