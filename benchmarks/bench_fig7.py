"""Benchmark F7 — Figure 7: percentage of provably optimal schedules vs
block size (paper: ~100% through common sizes, 98.83% overall)."""

from repro.experiments import fig7

from conftest import publish


def test_fig7_regeneration(benchmark, population_records, results_dir):
    result = benchmark(fig7.run_from_records, population_records)
    publish(results_dir, "fig7", result.render())
    assert result.overall_percentage >= 95.0
    series = result.series()
    # Small blocks are always provably optimal, as in the paper.
    assert series[0][1] == 100.0
    benchmark.extra_info["overall_percent_optimal"] = round(
        result.overall_percentage, 2
    )
