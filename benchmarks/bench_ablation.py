"""Benchmarks A1/A2 — pruning ablations and curtail sensitivity.

A1 regenerates the per-prune contribution table and benchmarks each
configuration on a fixed block set, so the cost of every pruning idea is
visible in the pytest-benchmark comparison.  A2 regenerates the paper's
"fifty-fold lambda" observation (section 5.3).
"""

import pytest

from repro.experiments import ablation
from repro.ir.dag import DependenceDAG
from repro.machine.presets import paper_simulation_machine
from repro.sched.search import SearchOptions, schedule_block
from repro.synth.population import sample_population

from conftest import publish


@pytest.fixture(scope="module")
def fixed_dags():
    return [
        DependenceDAG(gb.block)
        for gb in sample_population(40, master_seed=313)
        if len(gb.block) > 1
    ]


def test_a1_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        ablation.run_a1,
        kwargs=dict(n_blocks=120, curtail=20_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "ablation_a1", result.render())
    assert result.optimality_consistent
    by_label = {r.label: r for r in result.rows}
    default = by_label["all prunes (default)"]
    paper_only = by_label["paper prunes only"]
    # The added prunes must pay for themselves in omega calls.
    assert default.avg_omega <= paper_only.avg_omega


def test_a2_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        ablation.run_a2,
        kwargs=dict(n_blocks=600, base_curtail=1_000, multipliers=(1, 10, 50)),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "ablation_a2", result.render())
    if result.rows:
        base, *rest = result.rows
        for row in rest:
            assert row.avg_final_nops <= base.avg_final_nops + 1e-9


@pytest.mark.parametrize(
    "label,options",
    [
        ("all-prunes", SearchOptions(curtail=20_000)),
        ("paper-prunes", SearchOptions.paper(curtail=20_000)),
        ("no-dominance", SearchOptions(curtail=20_000, dominance_prune=False)),
        ("no-lower-bounds", SearchOptions(curtail=20_000, lower_bound_prune=False)),
    ],
)
def test_search_configuration_cost(benchmark, fixed_dags, label, options):
    machine = paper_simulation_machine()

    def run_all():
        return sum(
            schedule_block(dag, machine, options).omega_calls
            for dag in fixed_dags
        )

    total_omega = benchmark(run_all)
    benchmark.extra_info["total_omega_calls"] = total_omega


def test_a3_regeneration(benchmark, results_dir):
    """A3 — prepass vs postpass scheduling (the paper's motivating delta)."""
    from repro.experiments import prepass

    result = benchmark.pedantic(
        prepass.run_a3,
        kwargs=dict(n_blocks=100, register_files=(None, 4, 8), curtail=30_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "ablation_a3", result.render())
    assert result.penalty_never_negative
    # The headline: postpass scheduling must cost real NOPs.
    tightest = result.rows[0]
    assert tightest.avg_penalty > 0.5


def test_stalls_regeneration(benchmark, results_dir):
    """S — stall taxonomy: which kind of stall does scheduling remove?"""
    from repro.experiments import stalls

    result = benchmark.pedantic(
        stalls.run,
        kwargs=dict(n_blocks=200, curtail=20_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "stalls", result.render())
    assert result.removed_pct("dependence") > 80.0
