"""Benchmark X2 — block splitting for very large blocks (section 5.3):
window-by-window locally-optimal scheduling vs the monolithic search,
under both the paper's prune set and the full one."""

import pytest

from repro.experiments import extension
from repro.ir.dag import DependenceDAG
from repro.machine.presets import paper_simulation_machine
from repro.sched.search import SearchOptions, schedule_block
from repro.sched.splitting import schedule_block_split
from repro.synth.population import PopulationSpec, sample_population

from conftest import publish


@pytest.fixture(scope="module")
def large_dags():
    spec = PopulationSpec(
        statement_shape=30.0,
        statement_scale=1.6,
        min_statements=30,
        max_statements=80,
        min_variables=10,
        max_variables=24,
        min_constants=4,
        max_constants=10,
    )
    dags = []
    for gb in sample_population(60, master_seed=500, spec=spec):
        if len(gb.block) >= 40:
            dags.append(DependenceDAG(gb.block))
        if len(dags) == 8:
            break
    return dags


def test_x2_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        extension.run_x2,
        kwargs=dict(n_blocks=20, curtail=50_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "extension_x2", result.render())
    mono_paper, mono_full, split = result.rows
    assert split.avg_nops >= mono_full.avg_nops
    # Splitting's omega ceiling is per-window; its worst case must undercut
    # the paper-prune monolithic worst case.
    assert split.max_omega <= mono_paper.max_omega * 2


def test_split_scheduler_cost(benchmark, large_dags):
    machine = paper_simulation_machine()

    def run_all():
        return sum(
            schedule_block_split(dag, machine, window=20, curtail_per_window=5_000).total_nops
            for dag in large_dags
        )

    benchmark(run_all)


def test_monolithic_scheduler_cost(benchmark, large_dags):
    machine = paper_simulation_machine()
    options = SearchOptions(curtail=50_000)

    def run_all():
        return sum(
            schedule_block(dag, machine, options).final_nops
            for dag in large_dags
        )

    benchmark(run_all)
