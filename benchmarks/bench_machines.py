"""Benchmark M — the pipeline-structure design-space sweep (§6's
"ongoing work ... various (more complex) pipeline structures")."""

from repro.experiments import machines

from conftest import publish


def test_machines_sweep_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(
        machines.run,
        kwargs=dict(n_blocks=100, curtail=20_000),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "machines", result.render())
    for row in result.rows:
        assert row.avg_optimal_nops <= row.avg_naive_nops
    # The scheduler hides most of the stall budget on every structure.
    assert min(r.hidden_pct for r in result.rows) > 30.0
