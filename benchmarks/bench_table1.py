"""Benchmark T1 — Table 1: search-space pruning on representative blocks.

Regenerates the table (exhaustive n!, legal-only schedule counts, and the
proposed search's Ω calls for blocks of 8-22 instructions) and benchmarks
the proposed search on a paper-sized 15-instruction block — the block the
paper prices at "just under 5 years" exhaustively and "about 0.01
seconds" with pruning.
"""

import pytest

from repro.experiments import table1
from repro.ir.dag import DependenceDAG
from repro.machine.presets import paper_simulation_machine
from repro.sched.search import SearchOptions, schedule_block
from repro.synth.population import sample_population

from conftest import publish


@pytest.fixture(scope="module")
def fifteen_instruction_dag():
    for gb in sample_population(20_000, master_seed=151):
        if len(gb.block) == 15:
            return DependenceDAG(gb.block)
    raise RuntimeError("no 15-instruction block found")  # pragma: no cover


def test_table1_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    publish(results_dir, "table1", result.render())
    assert len(result.rows) == len(table1.PAPER_SIZES)
    for row in result.rows:
        # The pruned searches must touch a vanishing fraction of n!.
        assert row.proposed_calls_all_prunes < row.exhaustive_calls
    benchmark.extra_info["rows"] = [
        (r.size, r.proposed_calls_paper_prunes, r.proposed_calls_all_prunes)
        for r in result.rows
    ]


def test_fifteen_instruction_block_seconds(benchmark, fifteen_instruction_dag):
    """Paper section 2.3: 15 instructions = 15! = 1.3e12 exhaustive calls
    (~5 years at 0.12 ms each); the pruned search lands near 0.01 s."""
    machine = paper_simulation_machine()
    result = benchmark(
        schedule_block, fifteen_instruction_dag, machine, SearchOptions()
    )
    assert result.completed
    benchmark.extra_info["omega_calls"] = result.omega_calls
    benchmark.extra_info["exhaustive_equivalent"] = "15! = 1,307,674,368,000"


def test_paper_prune_search_on_same_block(benchmark, fifteen_instruction_dag):
    machine = paper_simulation_machine()
    result = benchmark(
        schedule_block,
        fifteen_instruction_dag,
        machine,
        SearchOptions.paper(curtail=200_000),
    )
    benchmark.extra_info["omega_calls"] = result.omega_calls
