"""Micro-benchmarks of the core primitives.

Section 2.3 prices one Ω application at 0.12 ms (Gould NP1) / 0.3 ms
(Sun 3/50) for ~15-instruction schedules; these benches measure our
per-Ω cost and the other inner-loop primitives so regressions in the
search's hot path are visible.
"""

import pytest

from repro.ir.dag import DependenceDAG
from repro.machine.presets import paper_simulation_machine
from repro.opt.manager import optimize_block
from repro.regalloc.allocator import allocate_registers
from repro.sched.list_scheduler import list_schedule
from repro.sched.nop_insertion import (
    IncrementalTimingState,
    SigmaResolver,
    compute_timing,
    sequential_etas,
)
from repro.simulator.core import PipelineSimulator
from repro.synth.generator import generate_block
from repro.synth.population import sample_population


@pytest.fixture(scope="module")
def typical_block():
    """A ~15-instruction block, the paper's 'typical' size."""
    for gb in sample_population(20_000, master_seed=151):
        if len(gb.block) == 15:
            return gb.block
    raise RuntimeError("no 15-instruction block found")  # pragma: no cover


@pytest.fixture(scope="module")
def typical_dag(typical_block):
    return DependenceDAG(typical_block)


def test_omega_full_schedule(benchmark, typical_dag):
    """One complete Ω evaluation (the paper's procedure Q: 0.12-0.3 ms in
    1990 C; a modern interpreter should land in the same decade)."""
    machine = paper_simulation_machine()
    order = typical_dag.idents
    timing = benchmark(
        compute_timing, typical_dag, order, machine, None, False
    )
    assert len(timing.order) == 15


def test_omega_sequential_formulation(benchmark, typical_dag):
    machine = paper_simulation_machine()
    benchmark(sequential_etas, typical_dag, typical_dag.idents, machine)


def test_incremental_push_pop(benchmark, typical_dag):
    """One push+pop pair — the search's innermost operation."""
    machine = paper_simulation_machine()
    resolver = SigmaResolver(typical_dag, machine)
    state = IncrementalTimingState(typical_dag, resolver)
    first = typical_dag.roots[0]

    def push_pop():
        state.push(first)
        state.pop()

    benchmark(push_pop)


def test_dag_construction(benchmark, typical_block):
    benchmark(DependenceDAG, typical_block)


def test_list_scheduler(benchmark, typical_dag):
    benchmark(list_schedule, typical_dag)


def test_optimizer(benchmark):
    gb = generate_block(15, 8, 4, seed=8, optimize=False)
    benchmark(optimize_block, gb.block)


def test_register_allocation(benchmark, typical_block, typical_dag):
    order = list_schedule(typical_dag)
    benchmark(allocate_registers, typical_block, order)


def test_simulator_implicit(benchmark, typical_block, typical_dag):
    machine = paper_simulation_machine()
    sim = PipelineSimulator(typical_block, machine, typical_dag)
    order = list_schedule(typical_dag)
    memory = {v: 1 for v in typical_block.variables}
    benchmark(sim.run_implicit, order, memory)
