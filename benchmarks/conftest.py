"""Shared benchmark machinery.

Every table/figure benchmark draws on one shared population run (the
paper schedules a single 16,000-block corpus and derives Table 7 and
Figures 1/4/5/6/7 from it).  The run is session-scoped and sized by
``REPRO_SCALE`` (fraction of the paper's 16,000 blocks; benchmark default
1/40 ⇒ 400 blocks, a ~4 s pass — set ``REPRO_SCALE=1`` for the full
corpus).

Rendered experiment outputs are written to ``results/<name>.txt`` next to
the repository root and echoed into the pytest-benchmark ``extra_info``
so the numbers that matter survive in ``bench_output.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.parallel import run_population_parallel
from repro.experiments.runner import DEFAULT_CURTAIL, PAPER_BLOCKS

#: Benchmark-default fraction of the paper's population.
BENCH_SCALE = 1 / 40

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_population_size() -> int:
    scale = float(os.environ.get("REPRO_SCALE", BENCH_SCALE))
    return max(1, round(PAPER_BLOCKS * scale))


@pytest.fixture(scope="session")
def population_records():
    """The shared scheduled-population records (Table 7's corpus).

    ``REPRO_WORKERS`` fans the run out over a process pool (default 1,
    which takes the serial path — identical records either way).
    """
    workers = max(1, int(os.environ.get("REPRO_WORKERS", "1") or "1"))
    return run_population_parallel(
        bench_population_size(),
        curtail=DEFAULT_CURTAIL,
        master_seed=1990,
        workers=workers,
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Persist a rendered experiment table and echo it to the console."""
    path = results_dir / f"{name}.txt"
    path.write_text(rendered + "\n")
    print(f"\n{rendered}\n[written to {path}]")
