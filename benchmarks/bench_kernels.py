"""Benchmark K — the realistic-kernel scheduler comparison, plus the
end-to-end compile cost of a representative kernel."""

from repro.driver import compile_source
from repro.experiments import kernels as kernels_experiment
from repro.machine.presets import paper_simulation_machine
from repro.synth.kernels import get_kernel

from conftest import publish


def test_kernels_regeneration(benchmark, results_dir):
    result = benchmark.pedantic(kernels_experiment.run, rounds=1, iterations=1)
    publish(results_dir, "kernels", result.render())
    assert all(r.optimal_proved for r in result.rows)
    speedups = {r.kernel: r.speedup for r in result.rows}
    assert speedups["horner5"] == 1.0  # serial chain: nothing to hide
    assert speedups["fir3"] > 1.5  # parallel taps: plenty to hide
    benchmark.extra_info["speedups"] = {
        k: round(v, 2) for k, v in speedups.items()
    }


def test_compile_dot4_end_to_end(benchmark):
    """Full pipeline cost on one kernel: parse -> optimize -> schedule ->
    allocate -> emit -> simulate-verify."""
    kernel = get_kernel("dot4")
    machine = paper_simulation_machine()
    result = benchmark(
        compile_source,
        kernel.source,
        machine,
        "optimal",
        verify_memory=kernel.memory,
    )
    assert result.search.completed
