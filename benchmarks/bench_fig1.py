"""Benchmark F1 — Figure 1: schedules searched vs block size (complete
runs).  The expensive part (scheduling the corpus) is shared; this bench
times the analysis and regenerates the scatter."""

from repro.experiments import fig1

from conftest import publish


def test_fig1_regeneration(benchmark, population_records, results_dir):
    result = benchmark(fig1.run_from_records, population_records)
    publish(results_dir, "fig1", result.render())
    points = result.points()
    assert points, "no complete runs to plot"
    # Paper shape: complete searches live in the 10^1..10^5 band.
    assert max(calls for _, calls in points) < 10**6
    benchmark.extra_info["complete_runs"] = len(points)
