"""Benchmark F4 — Figure 4: initial and final NOPs vs block size.

The paper's headline figure: initial NOPs grow linearly with block size
(~0.46/instruction) while final NOPs stay nearly constant.
"""

from repro.experiments import fig4
from repro.experiments.runner import mean

from conftest import publish


def test_fig4_regeneration(benchmark, population_records, results_dir):
    result = benchmark(fig4.run_from_records, population_records)
    publish(results_dir, "fig4", result.render())
    slope, _ = result.linear_fit()
    assert 0.25 < slope < 0.75  # paper: linear growth, ~0.46/instruction
    final_avg = mean(r.final_nops for r in result.records)
    initial_avg = mean(r.initial_nops for r in result.records)
    assert final_avg < initial_avg / 3  # the collapse the paper shows
    benchmark.extra_info["initial_slope_per_instruction"] = round(slope, 3)
    benchmark.extra_info["avg_final_nops"] = round(final_avg, 3)
