"""The native (compiled C) engine: lattice fidelity, build cache, fallback.

Three layers of contract:

* **Differential** — the native engine must be bit-for-bit the fast /
  vector / reference engines in every ``SearchResult`` field except
  ``elapsed_seconds``, over random blocks x (random + adversarial)
  machines and under every truncation mode (curtail, wall-clock
  deadline, memo starvation).
* **Build cache** — first use compiles into a sha256-keyed cache dir;
  later uses hit the cache without invoking the compiler; a corrupted
  cached object is recompiled once, transparently.
* **Fallback** — without a C compiler the engine degrades to ``fast``
  with exactly one stderr notice per process and a telemetry counter,
  mirroring the vector engine's no-NumPy contract.

The whole module degrades gracefully on a host without a compiler: the
differential tests then exercise the documented fallback (identical
results, just not an independent implementation), and the cache tests
skip.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings

import repro.native.bindings as bindings
import repro.native.build as build
import repro.sched.core as core
from repro.ir.dag import DependenceDAG
from repro.machine.presets import get_machine
from repro.native import NativeBuildError, build_kernel, compiler_info
from repro.sched.multi import first_pipeline_assignment
from repro.sched.search import SearchOptions, schedule_block
from repro.sched.splitting import schedule_block_split
from repro.synth.population import PopulationSpec, sample_population
from repro.telemetry import Telemetry

from .strategies import any_machines, blocks

HAVE_CC = build.find_compiler() is not None

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")


def _fields(result):
    """Everything a ``SearchResult`` carries except wall time."""
    return (
        result.best,
        result.initial,
        result.omega_calls,
        result.completed,
        result.improvements,
        result.proved_by_bound,
        result.timed_out,
        result.memo_evicted,
        dict(result.prune_counts),
    )


def _split_fields(result):
    return (
        result.timing,
        result.windows,
        result.omega_calls,
        result.all_windows_completed,
        dict(result.prune_counts),
    )


def _assignment_for(dag, machine):
    if machine.is_deterministic:
        return None
    return first_pipeline_assignment(dag, machine)


def _population(n_blocks, seed=7):
    machine = get_machine("paper-simulation")
    spec = PopulationSpec(
        statement_shape=2.0, statement_scale=2.0, max_statements=10
    )
    generated = sample_population(n_blocks, master_seed=seed, spec=spec)
    return machine, [gb for gb in generated if len(gb.block) > 1]


# ----------------------------------------------------------------------
# Differential fuzzing: native against every other engine
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(block=blocks(max_size=9), machine=any_machines())
def test_native_matches_every_engine(block, machine):
    """Random blocks x (random + adversarial) machines: the native result
    is field-for-field the fast, vector and reference results."""
    dag = DependenceDAG(block)
    assignment = _assignment_for(dag, machine)
    results = {
        name: schedule_block(
            dag, machine, SearchOptions(), assignment=assignment, engine=name
        )
        for name in ("native", "fast", "vector", "reference")
    }
    native = _fields(results["native"])
    for name in ("fast", "vector", "reference"):
        assert native == _fields(results[name]), f"native != {name}"


@settings(max_examples=40, deadline=None)
@given(block=blocks(max_size=8), machine=any_machines())
def test_native_matches_paper_prunes(block, machine):
    """The published prune set (no dominance/lower-bound prunes, no
    heuristic seeding) drives different kernel paths — same contract."""
    dag = DependenceDAG(block)
    assignment = _assignment_for(dag, machine)
    ref = schedule_block(
        dag,
        machine,
        SearchOptions.paper(),
        assignment=assignment,
        engine="reference",
    )
    nat = schedule_block(
        dag,
        machine,
        SearchOptions.paper(),
        assignment=assignment,
        engine="native",
    )
    assert _fields(nat) == _fields(ref)


def test_native_split_matches():
    """Window-by-window scheduling through the C splitter: every field of
    the ``SplitScheduleResult`` agrees with the fast splitter."""
    machine, members = _population(25)
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block_split(
            dag, machine, window=4, curtail_per_window=300, engine="fast"
        )
        nat = schedule_block_split(
            dag, machine, window=4, curtail_per_window=300, engine="native"
        )
        assert _split_fields(nat) == _split_fields(fast)


def test_native_register_budget_matches():
    """A ``max_live`` budget routes the operand/produces tables into the
    kernel; budget-illegal candidates must be skipped identically."""
    machine, members = _population(30, seed=19)
    options = SearchOptions(max_live=6)
    compared = 0
    for gb in members:
        dag = DependenceDAG(gb.block)
        try:
            fast = schedule_block(dag, machine, options, engine="fast")
        except ValueError:
            continue  # seed itself exceeds the budget
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(nat) == _fields(fast)
        compared += 1
    assert compared, "population never fit a max_live=6 budget"


# ----------------------------------------------------------------------
# Truncation regressions (mirroring test_hot_core.py)
# ----------------------------------------------------------------------
def test_native_curtail_truncates_identically():
    """A tiny omega budget truncates the C DFS at exactly the same call,
    with the same incumbent and the same prune counters."""
    machine, members = _population(40, seed=3)
    options = SearchOptions(curtail=1)
    saw_truncation = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(dag, machine, options, engine="fast")
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(nat) == _fields(fast)
        saw_truncation = saw_truncation or not fast.completed
    assert saw_truncation, "curtail=1 never truncated a search"


def test_native_time_limit_honored():
    """A vanishing deadline expires before the first expansion in both
    engines, so even the (speed-dependent) truncation point agrees."""
    machine, members = _population(40, seed=5)
    options = SearchOptions(time_limit=1e-9)
    saw_timeout = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(dag, machine, options, engine="fast")
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(nat) == _fields(fast)
        if nat.timed_out:
            saw_timeout = True
            assert not nat.completed
    assert saw_timeout, "a 1ns time limit never expired a search"


def test_native_memo_eviction_matches():
    """A 4-entry dominance memo overflows; the C FIFO hash table must
    evict the same entries at the same time as the Python dict."""
    machine, members = _population(60, seed=11)
    options = SearchOptions(max_memo_entries=4)
    evicted_anywhere = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(dag, machine, options, engine="fast")
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(nat) == _fields(fast)
        evicted_anywhere = evicted_anywhere or nat.memo_evicted > 0
    assert evicted_anywhere, "population never overflowed a 4-entry memo"


def test_native_memo_disabled():
    """``max_memo_entries=0`` must disable insertion (not prune logic) on
    the C side exactly as on the Python side."""
    machine, members = _population(20, seed=13)
    options = SearchOptions(max_memo_entries=0)
    for gb in members[:8]:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(dag, machine, options, engine="fast")
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(nat) == _fields(fast)
        assert nat.completed


# ----------------------------------------------------------------------
# Build cache
# ----------------------------------------------------------------------
@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """An isolated, empty build cache; the memoized library is cleared on
    entry and exit so neighbouring tests re-load from the real cache."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    bindings._reset()
    yield tmp_path
    bindings._reset()


@needs_cc
def test_build_cache_hit_skips_compiler(fresh_cache, monkeypatch):
    """The second build serves the cached object without invoking the
    compiler at all (subprocess.run is rigged to explode)."""
    first = build_kernel()
    assert os.path.exists(first)
    assert os.path.dirname(first) == str(fresh_cache)
    real_run = build.subprocess.run

    def version_only(cmd, *args, **kwargs):
        # The cache key re-probes `cc --version`; an actual compile on a
        # hit is the bug this test pins down.
        if "--version" not in cmd:
            raise AssertionError("cache hit must not recompile")
        return real_run(cmd, *args, **kwargs)

    monkeypatch.setattr(build.subprocess, "run", version_only)
    assert build_kernel() == first


@needs_cc
def test_build_cache_writes_provenance(fresh_cache):
    lib_path = build_kernel()
    import json

    sidecar = lib_path[: -len(".so")] + ".json"
    with open(sidecar) as fh:
        meta = json.load(fh)
    assert meta["abi"] == build.ABI_VERSION
    assert meta["compiler"] == build.find_compiler()
    assert meta["cflags"] == list(build.CFLAGS)
    assert len(meta["source_sha256"]) == 64


@needs_cc
def test_corrupted_cache_entry_recompiles(fresh_cache):
    """A truncated .so fails to dlopen; the loader must force one
    recompile and come back fully functional."""
    lib_path = build_kernel()
    with open(lib_path, "wb") as fh:
        fh.write(b"\x7fELF not really")
    bindings._reset()
    lib = bindings.load_kernel()
    assert int(lib.repro_abi()) == build.ABI_VERSION
    # And the engine actually runs on the recompiled object.
    machine, members = _population(3, seed=2)
    dag = DependenceDAG(members[0].block)
    fast = schedule_block(dag, machine, SearchOptions(), engine="fast")
    nat = schedule_block(dag, machine, SearchOptions(), engine="native")
    assert _fields(nat) == _fields(fast)


@needs_cc
def test_force_rebuild_replaces_object(fresh_cache):
    lib_path = build_kernel()
    before = os.stat(lib_path).st_ino
    assert build_kernel(force=True) == lib_path
    assert os.stat(lib_path).st_ino != before  # atomically replaced


def test_compiler_info_shape():
    info = compiler_info()
    if HAVE_CC:
        assert set(info) == {"path", "version"}
        assert os.path.isabs(info["path"])
    else:
        assert info is None


# ----------------------------------------------------------------------
# No-compiler fallback
# ----------------------------------------------------------------------
@pytest.fixture
def no_compiler(monkeypatch):
    """A process view with no C compiler and a pristine warning flag."""
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    bindings._reset()
    monkeypatch.setattr(core, "_native_fallback_warned", False)
    yield
    bindings._reset()


def test_native_fallback_without_compiler(no_compiler, capsys):
    """With no compiler the native engine must degrade to fast: one
    warning line per process, results byte-for-byte the fast engine's,
    the split path included."""
    machine, members = _population(6, seed=21)
    dag = DependenceDAG(members[0].block)
    fast = schedule_block(dag, machine, SearchOptions(), engine="fast")
    split_fast = schedule_block_split(dag, machine, window=4, engine="fast")
    nat1 = schedule_block(dag, machine, SearchOptions(), engine="native")
    nat2 = schedule_block(dag, machine, SearchOptions(), engine="native")
    split_nat = schedule_block_split(dag, machine, window=4, engine="native")
    err = capsys.readouterr().err
    assert err.count("falling back to 'fast'") == 1, err
    assert "engine 'native' unavailable" in err
    assert _fields(nat1) == _fields(fast)
    assert _fields(nat2) == _fields(fast)
    assert _split_fields(split_nat) == _split_fields(split_fast)


def test_native_fallback_counts_telemetry(no_compiler, capsys):
    """Every degraded dispatch bumps ``search.engine_fallbacks`` even
    after the one-line warning went quiet."""
    telemetry = Telemetry()
    machine, members = _population(4, seed=23)
    dag = DependenceDAG(members[0].block)
    for _ in range(3):
        schedule_block(
            dag, machine, SearchOptions(), telemetry=telemetry, engine="native"
        )
    capsys.readouterr()
    assert telemetry.counters["search.engine_fallbacks"] == 3


def test_build_kernel_raises_without_compiler(no_compiler):
    with pytest.raises(NativeBuildError, match="no C compiler"):
        build_kernel()
    assert not bindings.native_available()
    assert "no C compiler" in bindings.unavailable_reason()


@needs_cc
def test_compile_failure_is_memoized(tmp_path, monkeypatch, capsys):
    """A broken kernel source fails once, then the failure is served from
    memory — no recompile storm, and the engine still answers via fast."""
    bad_src = tmp_path / "kernel.c"
    bad_src.write_text("this is not C\n")
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setattr(build, "kernel_source_path", lambda: str(bad_src))
    bindings._reset()
    monkeypatch.setattr(core, "_native_fallback_warned", False)
    calls = []
    real_run = build.subprocess.run

    def counting_run(*args, **kwargs):
        calls.append(1)
        return real_run(*args, **kwargs)

    monkeypatch.setattr(build.subprocess, "run", counting_run)
    try:
        machine, members = _population(3, seed=2)
        dag = DependenceDAG(members[0].block)
        fast = schedule_block(dag, machine, SearchOptions(), engine="fast")
        nat1 = schedule_block(dag, machine, SearchOptions(), engine="native")
        nat2 = schedule_block(dag, machine, SearchOptions(), engine="native")
        err = capsys.readouterr().err
        assert err.count("falling back to 'fast'") == 1
        assert "C compile failed" in err
        assert _fields(nat1) == _fields(fast)
        assert _fields(nat2) == _fields(fast)
        # --version probe(s) plus exactly ONE compile attempt.
        compile_calls = [c for c in calls]
        assert len(compile_calls) <= 3
    finally:
        bindings._reset()


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_native_is_a_valid_engine_everywhere():
    assert SearchOptions(engine="native").engine == "native"
    machine, members = _population(3, seed=1)
    dag = DependenceDAG(members[0].block)
    options = SearchOptions(engine="native")
    nat = schedule_block(dag, machine, options)
    fast = schedule_block(dag, machine, SearchOptions(), engine="fast")
    assert _fields(nat) == _fields(fast)


@needs_cc
def test_resolve_engine_passes_native_through():
    assert core.resolve_engine("native") == "native"
    assert core.resolve_engine("fast") == "fast"
    assert core.resolve_engine("reference") == "reference"
