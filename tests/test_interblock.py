"""Tests for inter-block scheduling (footnote 1): carry-in/carry-out
initial conditions and sequence scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dag import DependenceDAG
from repro.ir.ops import Opcode
from repro.ir.textual import parse_block
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc
from repro.sched.interblock import carry_out, schedule_sequence
from repro.sched.nop_insertion import (
    InitialConditions,
    compute_timing,
    sequential_etas,
)
from repro.sched.search import schedule_block
from repro.simulator.core import PipelineSimulator

from .strategies import blocks, machines


class TestInitialConditions:
    def test_defaults_are_trivial(self):
        conditions = InitialConditions()
        assert conditions.is_trivial

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            InitialConditions(pipe_free={1: -1})
        with pytest.raises(ValueError):
            InitialConditions(variable_ready={"a": -2})

    def test_rendering(self):
        text = str(InitialConditions(pipe_free={2: 3}))
        assert "pipe_free" in text and "2: 3" in text


class TestCarryInTiming:
    def test_busy_pipeline_delays_first_issue(self, sim_machine):
        # Multiplier busy until cycle 2: a leading Mul must wait.
        block = parse_block("1: Const 2\n2: Const 3\n3: Mul 1, 2")
        dag = DependenceDAG(block)
        conditions = InitialConditions(pipe_free={2: 3})
        timing = compute_timing(
            dag, (1, 2, 3), sim_machine, initial=conditions
        )
        # Consts fill cycles 0-1; Mul may issue at 3 (base 2, one NOP).
        assert timing.etas == (0, 0, 1)
        mul_first = compute_timing(
            dag, (1, 2, 3), sim_machine
        )
        assert mul_first.total_nops == 0  # idle machine needs none

    def test_carry_in_delays_even_the_first_instruction(self, sim_machine):
        block = parse_block("1: Load #a")
        dag = DependenceDAG(block)
        conditions = InitialConditions(pipe_free={1: 2})
        timing = compute_timing(dag, (1,), sim_machine, initial=conditions)
        assert timing.etas == (2,)
        assert timing.issue_times == (2,)

    def test_variable_ready_blocks_loads(self, sim_machine):
        block = parse_block("1: Load #pending\n2: Load #free")
        dag = DependenceDAG(block)
        conditions = InitialConditions(variable_ready={"pending": 4})
        best = schedule_block(
            dag, sim_machine, initial_conditions=conditions
        )
        # Optimal order loads the free variable first while waiting.
        assert best.best.order[0] == 2
        assert best.final_nops < compute_timing(
            dag, (1, 2), sim_machine, initial=conditions
        ).total_nops

    def test_sequential_formulation_agrees_under_carry_in(self, sim_machine):
        block = parse_block(
            "1: Load #a\n2: Const 5\n3: Mul 1, 2\n4: Store #x, 3"
        )
        dag = DependenceDAG(block)
        conditions = InitialConditions(
            pipe_free={1: 2, 2: 4}, variable_ready={"a": 3}
        )
        for order in ((1, 2, 3, 4), (2, 1, 3, 4)):
            closed = compute_timing(
                dag, order, sim_machine, initial=conditions
            ).etas
            sequential = sequential_etas(
                dag, order, sim_machine, initial=conditions
            )
            assert closed == sequential

    def test_simulator_agrees_with_omega_under_carry_in(self, sim_machine):
        block = parse_block(
            "1: Load #a\n2: Mul 1, 1\n3: Store #x, 2"
        )
        dag = DependenceDAG(block)
        conditions = InitialConditions(pipe_free={1: 3, 2: 2})
        timing = compute_timing(dag, (1, 2, 3), sim_machine, initial=conditions)
        sim = PipelineSimulator(block, sim_machine, dag, initial=conditions)
        trace = sim.run_implicit((1, 2, 3), {"a": 2})
        assert trace.issue_cycles == timing.issue_times
        assert trace.stall_cycles == timing.total_nops


class TestCarryOut:
    def test_trailing_multiply_occupies_pipeline(self, sim_machine):
        # Mul issues last: the multiplier (enqueue 2) stays busy one cycle
        # into the successor block.
        block = parse_block("1: Const 2\n2: Const 3\n3: Mul 1, 2")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3), sim_machine)
        out = carry_out(timing, dag, sim_machine)
        assert out.pipe_free == {2: 1}

    def test_early_multiply_leaves_nothing(self, sim_machine):
        block = parse_block("1: Const 2\n2: Mul 1, 1\n3: Const 4\n4: Const 5")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3, 4), sim_machine)
        out = carry_out(timing, dag, sim_machine)
        assert out.pipe_free == {}

    def test_empty_block_carries_nothing(self, sim_machine):
        from repro.ir.block import BasicBlock

        dag = DependenceDAG(BasicBlock([]))
        timing = compute_timing(dag, (), sim_machine)
        assert carry_out(timing, dag, sim_machine).is_trivial


class TestScheduleSequence:
    BLOCKS = [
        "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #x, 3",
        "1: Load #x\n2: Mul 1, 1\n3: Store #y, 2",
        "1: Load #y\n2: Const 1\n3: Add 1, 2\n4: Store #z, 3",
    ]

    def _blocks(self):
        return [parse_block(text, f"b{i}") for i, text in enumerate(self.BLOCKS)]

    def test_sequence_schedules_every_block(self, sim_machine):
        seq = schedule_sequence(self._blocks(), sim_machine)
        assert len(seq) == 3
        assert seq.all_completed
        assert seq.total_nops == sum(r.final_nops for r in seq.results)

    def test_concatenated_stream_is_hazard_free(self, sim_machine):
        """The whole point of footnote 1: each block scheduled under its
        predecessor's carry-out replays back-to-back without hazards."""
        blocks_ = self._blocks()
        seq = schedule_sequence(blocks_, sim_machine)
        memory = {"a": 2, "b": 3}
        origin_ok = True
        for block, result, conditions in zip(
            blocks_, seq.results, seq.conditions
        ):
            sim = PipelineSimulator(
                block, sim_machine, initial=conditions
            )
            stream = []
            for ident, eta in zip(result.best.order, result.best.etas):
                stream.extend([None] * eta)
                stream.append(ident)
            trace = sim.run_padded(stream, memory)  # HazardError on bug
            memory = dict(trace.memory)
        assert memory["z"] == (2 * 3) * (2 * 3) + 1

    def test_carry_in_can_cost_nops_the_isolated_schedule_misses(self):
        """Scheduling block B as if the machine were idle under-pads when
        a long-enqueue pipeline is still busy; the sequence scheduler
        accounts for it (and the simulator proves the isolated schedule
        wrong)."""
        machine = MachineDescription(
            "slow-mult",
            [PipelineDesc("mult", 1, latency=6, enqueue_time=6)],
            {Opcode.MUL: {1}},
        )
        a = parse_block("1: Const 2\n2: Mul 1, 1", "A")
        b = parse_block("1: Const 3\n2: Mul 1, 1", "B")
        seq = schedule_sequence([a, b], machine)
        # Block B must absorb the multiplier still busy from block A.
        assert seq.results[1].final_nops > 0
        # The naive (idle-start) schedule of B has fewer NOPs...
        naive = schedule_block(DependenceDAG(b), machine)
        assert naive.final_nops < seq.results[1].final_nops
        # ...and under-pads: replaying it after A faults on the simulator.
        from repro.simulator.core import HazardError

        sim = PipelineSimulator(
            b, machine, initial=seq.conditions[1]
        )
        stream = []
        for ident, eta in zip(naive.best.order, naive.best.etas):
            stream.extend([None] * eta)
            stream.append(ident)
        with pytest.raises(HazardError):
            sim.run_padded(stream)

    def test_entry_conditions_are_honoured(self, sim_machine):
        blocks_ = self._blocks()[:1]
        entry = InitialConditions(pipe_free={1: 5})
        seq = schedule_sequence(blocks_, sim_machine, entry_conditions=entry)
        assert seq.conditions[0] == entry
        assert seq.results[0].final_nops >= 1  # loads must wait


@given(blocks(min_size=2, max_size=8), machines())
@settings(max_examples=60, deadline=None)
def test_sequence_of_random_blocks_replays_hazard_free(block, machine):
    """Property: schedule the same random block twice back-to-back; the
    second copy's schedule under carry-out must replay cleanly on a
    simulator seeded with those conditions, with matching issue times."""
    seq = schedule_sequence([block, block], machine)
    result = seq.results[1]
    conditions = seq.conditions[1]
    dag = DependenceDAG(block)
    sim = PipelineSimulator(block, machine, dag, initial=conditions)
    stream = []
    for ident, eta in zip(result.best.order, result.best.etas):
        stream.extend([None] * eta)
        stream.append(ident)
    memory = {v: 1 for v in ("a", "b", "c", "d")}
    trace = sim.run_padded(stream, memory)
    assert trace.issue_cycles == result.best.issue_times


@given(
    blocks(min_size=1, max_size=8),
    machines(),
    st.integers(0, 6),
    st.integers(0, 6),
)
@settings(max_examples=80, deadline=None)
def test_sequential_equals_closed_form_under_carry_in(
    block, machine, pipe_delay, var_delay
):
    """The Ω oracle property extended to arbitrary carry-in conditions."""
    conditions = InitialConditions(
        pipe_free={p.ident: pipe_delay for p in machine.pipelines},
        variable_ready={"a": var_delay, "c": max(0, var_delay - 1)},
    )
    dag = DependenceDAG(block)
    from repro.sched.list_scheduler import list_schedule

    for order in (dag.idents, list_schedule(dag)):
        closed = compute_timing(
            dag, order, machine, initial=conditions
        ).etas
        sequential = sequential_etas(
            dag, order, machine, initial=conditions
        )
        assert closed == sequential


@given(blocks(min_size=1, max_size=8), machines(), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_simulator_matches_omega_under_carry_in(block, machine, delay):
    conditions = InitialConditions(
        pipe_free={p.ident: delay for p in machine.pipelines}
    )
    dag = DependenceDAG(block)
    order = dag.idents
    timing = compute_timing(dag, order, machine, initial=conditions)
    sim = PipelineSimulator(block, machine, dag, initial=conditions)
    memory = {v: 1 for v in ("a", "b", "c", "d")}
    trace = sim.run_implicit(order, memory)
    assert trace.issue_cycles == timing.issue_times
    assert trace.stall_cycles == timing.total_nops
