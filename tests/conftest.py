"""Shared fixtures: the paper's machines and worked examples."""

from __future__ import annotations

import pytest

from repro.ir.block import BasicBlock
from repro.ir.dag import DependenceDAG
from repro.ir.ops import Opcode
from repro.ir.textual import parse_block
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc
from repro.machine.presets import (
    paper_example_machine,
    paper_simulation_machine,
    scalar_machine,
)

#: Figure 3's basic block, verbatim.
FIGURE3_TEXT = """
1: Const 15
2: Store #b, 1
3: Load #a
4: Mul 1, 3
5: Store #a, 4
"""


@pytest.fixture
def sim_machine() -> MachineDescription:
    """Tables 4+5 — the machine all paper results use."""
    return paper_simulation_machine()


@pytest.fixture
def example_machine() -> MachineDescription:
    """Tables 2+3 — the five-pipeline example machine."""
    return paper_example_machine()


@pytest.fixture
def scalar() -> MachineDescription:
    return scalar_machine()


@pytest.fixture
def figure3_block() -> BasicBlock:
    return parse_block(FIGURE3_TEXT, "figure3")


@pytest.fixture
def figure3_dag(figure3_block) -> DependenceDAG:
    return DependenceDAG(figure3_block)


@pytest.fixture
def section21_machine() -> MachineDescription:
    """The machine implied by section 2.1's worked examples: a 4-tick
    memory pipeline whose MAR is busy for the first 2 ticks of a Load."""
    return MachineDescription(
        "section-2.1",
        [PipelineDesc("loader", 1, latency=4, enqueue_time=2)],
        {Opcode.LOAD: {1}},
    )
