"""Unit tests for the opcode vocabulary."""

from fractions import Fraction

import pytest

from repro.ir.ops import (
    BINARY_ARITHMETIC,
    VALUE_PRODUCING_OPCODES,
    Opcode,
    parse_opcode,
)


class TestClassification:
    def test_arity(self):
        assert Opcode.CONST.arity == 1
        assert Opcode.LOAD.arity == 1
        assert Opcode.STORE.arity == 2
        assert Opcode.NEG.arity == 1
        for op in BINARY_ARITHMETIC:
            assert op.arity == 2

    def test_store_is_the_only_non_value_op(self):
        assert not Opcode.STORE.produces_value
        assert Opcode.STORE not in VALUE_PRODUCING_OPCODES
        for op in Opcode:
            if op is not Opcode.STORE:
                assert op.produces_value
                assert op in VALUE_PRODUCING_OPCODES

    def test_memory_classification(self):
        assert Opcode.LOAD.reads_memory
        assert not Opcode.LOAD.writes_memory
        assert Opcode.STORE.writes_memory
        assert not Opcode.STORE.reads_memory
        assert not Opcode.ADD.reads_memory
        assert not Opcode.ADD.writes_memory

    def test_commutativity(self):
        assert Opcode.ADD.is_commutative
        assert Opcode.MUL.is_commutative
        assert not Opcode.SUB.is_commutative
        assert not Opcode.DIV.is_commutative


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.ADD, 2, 3, 5),
            (Opcode.SUB, 2, 3, -1),
            (Opcode.MUL, 4, -3, -12),
            (Opcode.NEG, 7, None, -7),
            (Opcode.COPY, 9, None, 9),
        ],
    )
    def test_arithmetic(self, op, a, b, expected):
        assert op.evaluate(a, b) == expected

    def test_division_is_exact(self):
        assert Opcode.DIV.evaluate(1, 3) == Fraction(1, 3)
        assert Opcode.DIV.evaluate(6, 3) == 2

    def test_division_by_zero_faults(self):
        with pytest.raises(ZeroDivisionError):
            Opcode.DIV.evaluate(1, 0)

    def test_non_evaluable_opcodes(self):
        with pytest.raises(ValueError):
            Opcode.LOAD.evaluate(1)
        with pytest.raises(ValueError):
            Opcode.STORE.evaluate(1, 2)
        with pytest.raises(ValueError):
            Opcode.CONST.evaluate(1)


class TestParsing:
    @pytest.mark.parametrize("text", ["Mul", "mul", "MUL", "  mul "])
    def test_case_insensitive(self, text):
        assert parse_opcode(text) is Opcode.MUL

    def test_every_opcode_round_trips(self):
        for op in Opcode:
            assert parse_opcode(op.value) is op

    def test_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            parse_opcode("Jump")
