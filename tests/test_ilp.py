"""The ILP optimality backend, bottom-up.

Three layers, mirroring the package:

* the **simplex** solver on hand-solved tableaux — phase-1 starts,
  bound flips, infeasibility, the bound-override hooks branch and bound
  relies on;
* the **encoder** — issue windows, the encoder-owned Ω repricing, and
  the encode → solve → decode round trip certifying under the
  independent checker;
* the **backend** — ``schedule_block(backend="ilp")`` equals the
  exhaustive brute-force optimum on every random block small enough to
  enumerate (the cross-solver differential property).
"""

import math

import pytest
from hypothesis import assume, given, settings

from repro.ilp import (
    INFEASIBLE,
    OPTIMAL,
    IlpOptions,
    LinearProgram,
    ModelTables,
    TimeIndexedModel,
    schedule_block_ilp,
    solve,
)
from repro.ilp.simplex import PIVOT_LIMIT, UNBOUNDED
from repro.ir.dag import COUNT_CAPPED, DependenceDAG
from repro.sched.core import _Flat
from repro.sched.nop_insertion import SigmaResolver
from repro.sched.search import SearchOptions, schedule_block
from repro.verify.certificate import brute_force_optimum, check_schedule

from .strategies import any_machines, blocks

#: Legal-order cap under which brute force is cheap enough for a test.
ENUM_CAP = 600


# ----------------------------------------------------------------------
# Simplex on hand-solved programs
# ----------------------------------------------------------------------
def test_simplex_box_constrained_lp():
    # min -x - 2y  s.t.  x + y <= 1.5,  x, y in [0, 1].
    # Optimum by hand: y = 1 (cheaper), x = 0.5, objective -2.5.
    lp = LinearProgram()
    x = lp.add_variable(0.0, 1.0, objective=-1.0)
    y = lp.add_variable(0.0, 1.0, objective=-2.0)
    lp.add_row({x: 1.0, y: 1.0}, "<=", 1.5)
    sol = solve(lp)
    assert sol.status == OPTIMAL
    assert sol.objective == pytest.approx(-2.5)
    assert sol.x[x] == pytest.approx(0.5)
    assert sol.x[y] == pytest.approx(1.0)


def test_simplex_phase1_start():
    # min 2x + 3y  s.t.  x + y >= 4,  x in [0, 3], y in [0, 10].
    # The slack basis violates the >= row, forcing a phase-1 artificial.
    # Optimum by hand: x = 3, y = 1, objective 9.
    lp = LinearProgram()
    x = lp.add_variable(0.0, 3.0, objective=2.0)
    y = lp.add_variable(0.0, 10.0, objective=3.0)
    lp.add_row({x: 1.0, y: 1.0}, ">=", 4.0)
    sol = solve(lp)
    assert sol.status == OPTIMAL
    assert sol.objective == pytest.approx(9.0)
    assert sol.x == (pytest.approx(3.0), pytest.approx(1.0))


def test_simplex_equality_row():
    # min x  s.t.  x + y == 2,  x, y in [0, 1.5]  →  x = 0.5, y = 1.5.
    lp = LinearProgram()
    x = lp.add_variable(0.0, 1.5, objective=1.0)
    y = lp.add_variable(0.0, 1.5)
    lp.add_row({x: 1.0, y: 1.0}, "==", 2.0)
    sol = solve(lp)
    assert sol.status == OPTIMAL
    assert sol.objective == pytest.approx(0.5)
    assert sol.x[y] == pytest.approx(1.5)


def test_simplex_infeasible():
    lp = LinearProgram()
    x = lp.add_variable(0.0, 1.0)
    y = lp.add_variable(0.0, 1.0)
    lp.add_row({x: 1.0, y: 1.0}, ">=", 5.0)
    assert solve(lp).status == INFEASIBLE


def test_simplex_bound_flip_without_rows():
    # min -x with x in [0, 1] and no rows: the optimum is reached by a
    # pure bound flip (no basis exists to pivot on).
    lp = LinearProgram()
    x = lp.add_variable(0.0, 1.0, objective=-1.0)
    sol = solve(lp)
    assert sol.status == OPTIMAL
    assert sol.x[x] == pytest.approx(1.0)


def test_simplex_unbounded_is_reported():
    lp = LinearProgram()
    lp.add_variable(0.0, objective=-1.0)  # no upper bound, no rows
    assert solve(lp).status == UNBOUNDED


def test_simplex_pivot_limit():
    lp = LinearProgram()
    x = lp.add_variable(0.0, 3.0, objective=1.0)
    lp.add_row({x: 1.0}, ">=", 2.0)  # needs at least one phase-1 pivot
    assert solve(lp, pivot_limit=0).status == PIVOT_LIMIT


def test_simplex_bound_overrides_fix_variables():
    # The branch-and-bound hook: the same immutable program solved under
    # different bound overrides, without mutation.
    lp = LinearProgram()
    x = lp.add_variable(0.0, 1.0, objective=-1.0)
    y = lp.add_variable(0.0, 1.0, objective=-1.0)
    lp.add_row({x: 1.0, y: 1.0}, "<=", 1.0)
    free = solve(lp)
    assert free.objective == pytest.approx(-1.0)
    fixed = solve(lp, upper=[0.0, 1.0])  # branch x = 0
    assert fixed.status == OPTIMAL
    assert fixed.x[x] == pytest.approx(0.0)
    assert fixed.x[y] == pytest.approx(1.0)
    # Contradictory overrides (lo > up) are detected before any pivot.
    clash = solve(lp, lower=[1.0, 0.0], upper=[0.0, 1.0])
    assert clash.status == INFEASIBLE
    assert clash.pivots == 0


def test_program_validation():
    lp = LinearProgram()
    with pytest.raises(ValueError, match="finite lower bound"):
        lp.add_variable(-math.inf)
    with pytest.raises(ValueError, match="empty bound interval"):
        lp.add_variable(1.0, 0.0)
    x = lp.add_variable(0.0, 1.0)
    with pytest.raises(ValueError, match="unknown row sense"):
        lp.add_row({x: 1.0}, "<", 1.0)
    with pytest.raises(ValueError, match="unknown column"):
        lp.add_row({x + 1: 1.0}, "<=", 1.0)


def test_ilp_options_validation():
    with pytest.raises(ValueError, match="max_nodes"):
        IlpOptions(max_nodes=0)
    with pytest.raises(ValueError, match="pivot limits"):
        IlpOptions(node_pivot_limit=0)
    with pytest.raises(ValueError, match="time limit"):
        IlpOptions(time_limit=0.0)
    with pytest.raises(ValueError, match="integrality tolerance"):
        IlpOptions(integrality_tol=0.7)


# ----------------------------------------------------------------------
# Encoder: windows, repricing, round trip
# ----------------------------------------------------------------------
def _tables_for(block, machine):
    dag = DependenceDAG(block)
    resolver = SigmaResolver(dag, machine)
    return dag, ModelTables(_Flat(dag, machine, resolver, None))


def test_timing_of_matches_search_pricing(figure3_block, sim_machine):
    dag, tables = _tables_for(figure3_block, sim_machine)
    search = schedule_block(dag, sim_machine)
    dense = [tables.flat.index_of[i] for i in search.best.order]
    timing = tables.timing_of(dense)
    assert timing.order == search.best.order
    assert timing.etas == search.best.etas
    assert timing.total_nops == search.final_nops


def test_issue_windows_admit_the_optimum(figure3_block, sim_machine):
    dag, tables = _tables_for(figure3_block, sim_machine)
    search = schedule_block(dag, sim_machine)
    assert search.completed
    horizon = search.best.issue_times[-1]
    model = TimeIndexedModel(tables, horizon)
    assert model.z_lower >= len(dag) - 1
    assert model.z_lower <= horizon
    # Every issue cycle of the proven-optimal schedule falls inside its
    # instruction's [est, lst] window — the windows cut no optimum off.
    for ident, t in zip(search.best.order, search.best.issue_times):
        k = tables.flat.index_of[ident]
        assert model.est[k] <= t <= model.lst[k]
        assert (k, t) in model.col_of


def test_decode_recovers_a_known_schedule(figure3_block, sim_machine):
    dag, tables = _tables_for(figure3_block, sim_machine)
    search = schedule_block(dag, sim_machine)
    model = TimeIndexedModel(tables, search.best.issue_times[-1])
    x = [0.0] * (len(model.slot_of) + 1)
    dense = [tables.flat.index_of[i] for i in search.best.order]
    for k, t in zip(dense, search.best.issue_times):
        x[model.col_of[(k, t)]] = 1.0
    assert model.fractional_col(tuple(x)) is None
    assert model.decode(tuple(x)) == dense
    # And the repriced decode certifies under the independent checker.
    timing = tables.timing_of(model.decode(tuple(x)))
    cert = check_schedule(
        figure3_block, sim_machine, timing.order, timing.etas
    )
    assert cert.ok, cert.summary()


def test_fractional_solutions_are_flagged(figure3_block, sim_machine):
    _, tables = _tables_for(figure3_block, sim_machine)
    model = TimeIndexedModel(tables, 12)
    x = [0.0] * (len(model.slot_of) + 1)
    x[0] = 0.5
    assert model.fractional_col(tuple(x)) == 0
    with pytest.raises(ValueError, match="one-slot-per-instruction"):
        model.decode(tuple(x))


def test_too_small_horizon_raises(figure3_block, sim_machine):
    _, tables = _tables_for(figure3_block, sim_machine)
    with pytest.raises(ValueError, match="no issue window"):
        TimeIndexedModel(tables, 2)


# ----------------------------------------------------------------------
# Backend: end to end and differential against brute force
# ----------------------------------------------------------------------
def test_ilp_backend_on_figure3(figure3_block, sim_machine):
    dag = DependenceDAG(figure3_block)
    search = schedule_block(dag, sim_machine)
    ilp = schedule_block_ilp(dag, sim_machine)
    assert ilp.completed
    assert ilp.final_nops == search.final_nops == 2
    assert ilp.lower_bound == ilp.final_nops
    assert ilp.optimality_gap == 0
    assert ilp.lp_relaxation <= ilp.final_nops + 1e-6
    assert ilp.nodes >= 1
    cert = check_schedule(
        figure3_block, sim_machine, ilp.best.order, ilp.best.etas
    )
    assert cert.ok, cert.summary()
    assert cert.required_nops == ilp.final_nops


def test_ilp_backend_trivial_block(sim_machine):
    from repro.ir import parse_block

    dag = DependenceDAG(parse_block("1: Load #a"))
    ilp = schedule_block_ilp(dag, sim_machine)
    assert ilp.completed
    assert ilp.nodes == 0
    assert ilp.lower_bound == ilp.final_nops


def test_ilp_backend_rejects_register_budget(figure3_block, sim_machine):
    dag = DependenceDAG(figure3_block)
    with pytest.raises(ValueError, match="max_live"):
        schedule_block(
            dag, sim_machine, SearchOptions(max_live=4), backend="ilp"
        )


def test_unknown_backend_rejected(figure3_block, sim_machine):
    dag = DependenceDAG(figure3_block)
    with pytest.raises(ValueError, match="unknown scheduling backend"):
        schedule_block(dag, sim_machine, backend="simplex")


def test_ilp_never_worse_than_its_seed(figure3_block, sim_machine):
    dag = DependenceDAG(figure3_block)
    # Seed with the worst list order (program order): the ILP must match
    # or improve it, and its `initial` records the seed's pricing.
    seed = tuple(dag.idents)
    ilp = schedule_block_ilp(dag, sim_machine, seed=seed)
    assert ilp.initial.order == seed
    assert ilp.final_nops <= ilp.initial_nops


@given(blocks(max_size=6), any_machines())
@settings(max_examples=25, deadline=None)
def test_ilp_matches_brute_force_optimum(block, machine):
    """The cross-solver differential property: on every block small
    enough to enumerate, the ILP's proven optimum equals independent
    exhaustive enumeration, and its schedule certifies."""
    if not machine.is_deterministic:
        machine = machine.fixed_assignment()
    dag = DependenceDAG(block)
    assume(dag.count_legal_orders(cap=ENUM_CAP) != COUNT_CAPPED)
    ilp = schedule_block_ilp(
        dag, machine, ilp_options=IlpOptions(max_nodes=600)
    )
    brute = brute_force_optimum(block, machine)
    assert brute.exhausted
    # Incumbent above the optimum, certified bound below it — and when
    # branch and bound completes the three collapse to one number.
    assert ilp.final_nops >= brute.best_nops
    assert ilp.lower_bound <= brute.best_nops
    assert ilp.lp_relaxation <= brute.best_nops + 1e-6
    if ilp.completed:
        assert ilp.final_nops == brute.best_nops
        assert ilp.lower_bound == ilp.final_nops
    cert = check_schedule(block, machine, ilp.best.order, ilp.best.etas)
    assert cert.ok, cert.summary()
    assert cert.required_nops == ilp.final_nops
