"""Unit tests for tuple instructions and operands."""

import pytest

from repro.ir.ops import Opcode
from repro.ir.tuples import (
    ConstOperand,
    IRTuple,
    RefOperand,
    VarOperand,
    add,
    const,
    copy,
    div,
    load,
    mul,
    neg,
    store,
    sub,
)


class TestOperands:
    def test_var_operand_requires_name(self):
        with pytest.raises(ValueError):
            VarOperand("")

    def test_ref_operand_starts_at_one(self):
        with pytest.raises(ValueError):
            RefOperand(0)

    def test_operand_rendering(self):
        assert str(VarOperand("x")) == "#x"
        assert str(ConstOperand(15)) == '"15"'
        assert str(RefOperand(3)) == "3"

    def test_operands_are_hashable_and_equal_by_value(self):
        assert VarOperand("x") == VarOperand("x")
        assert len({RefOperand(1), RefOperand(1), RefOperand(2)}) == 2


class TestShapeValidation:
    def test_const_requires_literal(self):
        with pytest.raises(ValueError):
            IRTuple(1, Opcode.CONST, RefOperand(1))
        with pytest.raises(ValueError):
            IRTuple(1, Opcode.CONST, ConstOperand(1), ConstOperand(2))

    def test_load_requires_variable(self):
        with pytest.raises(ValueError):
            IRTuple(1, Opcode.LOAD, ConstOperand(1))

    def test_store_requires_var_and_ref(self):
        with pytest.raises(ValueError):
            IRTuple(2, Opcode.STORE, VarOperand("a"), ConstOperand(1))
        with pytest.raises(ValueError):
            IRTuple(2, Opcode.STORE, RefOperand(1), RefOperand(1))

    def test_binary_requires_two_refs(self):
        with pytest.raises(ValueError):
            IRTuple(2, Opcode.ADD, RefOperand(1))
        with pytest.raises(ValueError):
            IRTuple(2, Opcode.MUL, RefOperand(1), VarOperand("a"))

    def test_unary_requires_single_ref(self):
        with pytest.raises(ValueError):
            IRTuple(2, Opcode.NEG, RefOperand(1), RefOperand(1))

    def test_ident_starts_at_one(self):
        with pytest.raises(ValueError):
            const(0, 5)


class TestAccessors:
    def test_value_refs(self):
        assert add(3, 1, 2).value_refs == (1, 2)
        assert store(2, "a", 1).value_refs == (1,)
        assert const(1, 5).value_refs == ()
        assert load(1, "a").value_refs == ()

    def test_variable(self):
        assert load(1, "a").variable == "a"
        assert store(2, "b", 1).variable == "b"
        assert const(1, 5).variable is None
        assert add(3, 1, 2).variable is None

    def test_with_ident(self):
        t = mul(4, 1, 3)
        renamed = t.with_ident(9)
        assert renamed.ident == 9
        assert renamed.op is Opcode.MUL
        assert renamed.value_refs == (1, 3)

    def test_rendering_matches_paper_notation(self):
        assert str(const(1, 15)) == '1: Const "15"'
        assert str(store(2, "b", 1)) == "2: Store #b, 1"
        assert str(load(3, "a")) == "3: Load #a"
        assert str(mul(4, 1, 3)) == "4: Mul 1, 3"

    def test_constructors_cover_all_binary_ops(self):
        assert sub(3, 1, 2).op is Opcode.SUB
        assert div(3, 1, 2).op is Opcode.DIV
        assert neg(2, 1).op is Opcode.NEG
        assert copy(2, 1).op is Opcode.COPY

    def test_tuples_are_immutable(self):
        t = add(3, 1, 2)
        with pytest.raises(AttributeError):
            t.ident = 5
