"""Tests for the optimal branch-and-bound scheduler (section 4.2.3)."""

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.sched.exhaustive import legal_only_search
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import DEFAULT_CURTAIL, SearchOptions, schedule_block

from .strategies import blocks, machines


class TestOptions:
    def test_defaults_enable_everything(self):
        options = SearchOptions()
        assert options.alpha_beta and options.equivalence_prune
        assert options.lower_bound_prune and options.dominance_prune
        assert options.heuristic_seeds and options.cheapest_first
        assert options.curtail == DEFAULT_CURTAIL

    def test_paper_preset(self):
        options = SearchOptions.paper()
        assert options.alpha_beta and options.equivalence_prune
        assert not options.lower_bound_prune
        assert not options.dominance_prune
        assert not options.heuristic_seeds
        assert not options.cheapest_first

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchOptions(curtail=0)
        with pytest.raises(ValueError):
            SearchOptions(time_limit=0)

    def test_with_curtail(self):
        assert SearchOptions().with_curtail(7).curtail == 7


class TestFigure3:
    def test_finds_the_optimum(self, figure3_dag, sim_machine):
        result = schedule_block(figure3_dag, sim_machine)
        assert result.completed
        assert result.final_nops == 2
        assert figure3_dag.is_legal_order(result.best.order)

    def test_initial_is_list_schedule_timing(self, figure3_dag, sim_machine):
        result = schedule_block(figure3_dag, sim_machine)
        from repro.sched.list_scheduler import list_schedule

        seeded = compute_timing(figure3_dag, list_schedule(figure3_dag), sim_machine)
        assert result.initial == seeded

    def test_result_rendering(self, figure3_dag, sim_machine):
        text = str(schedule_block(figure3_dag, sim_machine))
        assert "optimal" in text and "omega calls" in text


class TestSeeds:
    def test_explicit_seed(self, figure3_dag, sim_machine):
        result = schedule_block(
            figure3_dag, sim_machine, seed=(1, 2, 3, 4, 5)
        )
        assert result.initial_nops == 4  # program order costs 4
        assert result.final_nops == 2

    def test_seed_must_be_permutation(self, figure3_dag, sim_machine):
        with pytest.raises(ValueError, match="permutation"):
            schedule_block(figure3_dag, sim_machine, seed=(1, 2, 3))

    def test_program_order_seed_option(self, figure3_dag, sim_machine):
        result = schedule_block(
            figure3_dag,
            sim_machine,
            SearchOptions(seed_with_list_schedule=False),
        )
        assert result.initial_nops == 4
        assert result.final_nops == 2


class TestCurtail:
    def test_curtail_truncates(self, sim_machine):
        # A block big enough that lambda = seed cost + 1 must truncate.
        text = "\n".join(f"{i}: Load #v{i}" for i in range(1, 10))
        dag = DependenceDAG(parse_block(text))
        result = schedule_block(
            dag,
            sim_machine,
            SearchOptions(
                curtail=10,
                lower_bound_prune=False,
                dominance_prune=False,
                heuristic_seeds=False,
            ),
        )
        assert not result.completed
        assert result.omega_calls <= 10

    def test_omega_calls_include_seed_pricing(self, figure3_dag, sim_machine):
        result = schedule_block(
            figure3_dag, sim_machine, SearchOptions(heuristic_seeds=False)
        )
        assert result.omega_calls >= len(figure3_dag)

    def test_time_limit(self, sim_machine):
        text = "\n".join(f"{i}: Load #v{i}" for i in range(1, 12))
        block = parse_block(text)
        dag = DependenceDAG(block)
        result = schedule_block(
            dag,
            sim_machine,
            SearchOptions(
                curtail=10_000_000,
                time_limit=0.001,
                lower_bound_prune=False,
                dominance_prune=False,
            ),
        )
        # Either it finished very fast or the limit kicked in; both legal,
        # but the flag must reflect which.
        assert isinstance(result.completed, bool)


class TestDegenerateBlocks:
    def test_empty_seed_not_required(self, sim_machine):
        from repro.ir.block import BasicBlock

        dag = DependenceDAG(BasicBlock([]))
        result = schedule_block(dag, sim_machine)
        assert result.completed and result.final_nops == 0

    def test_single_instruction(self, sim_machine):
        dag = DependenceDAG(parse_block("1: Load #a"))
        result = schedule_block(dag, sim_machine)
        assert result.completed
        assert result.best.order == (1,)

    def test_pure_chain_has_one_schedule(self, sim_machine):
        dag = DependenceDAG(
            parse_block("1: Load #a\n2: Neg 1\n3: Neg 2\n4: Store #a, 3")
        )
        result = schedule_block(dag, sim_machine)
        assert result.completed
        assert result.best.order == (1, 2, 3, 4)
        assert result.final_nops == 1  # Load latency 2, Neg waits 1


class TestPruneToggles:
    @pytest.mark.parametrize(
        "options",
        [
            SearchOptions(),
            SearchOptions.paper(),
            SearchOptions(alpha_beta=False, curtail=100_000),
            SearchOptions(equivalence_prune=False),
            SearchOptions(lower_bound_prune=False),
            SearchOptions(dominance_prune=False),
            SearchOptions(heuristic_seeds=False),
            SearchOptions(cheapest_first=False),
        ],
        ids=[
            "all", "paper", "no-ab", "no-equiv", "no-lb", "no-dom",
            "no-seeds", "no-cheapest",
        ],
    )
    def test_every_configuration_is_optimal(self, options, sim_machine):
        blocks_text = [
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #c, 3",
            "1: Const 2\n2: Load #x\n3: Mul 1, 2\n4: Mul 3, 3\n5: Store #x, 4",
            "1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Mul 3, 3\n"
            "5: Store #p, 4\n6: Load #c\n7: Mul 6, 6\n8: Store #q, 7",
        ]
        for text in blocks_text:
            dag = DependenceDAG(parse_block(text))
            truth = legal_only_search(dag, sim_machine).optimal_nops
            result = schedule_block(dag, sim_machine, options)
            assert result.completed
            assert result.final_nops == truth

    def test_proved_by_bound_short_circuits(self, sim_machine):
        # Independent loads: 0 NOPs, provable from the root bound without
        # expanding a single node.
        dag = DependenceDAG(parse_block("1: Load #a\n2: Load #b\n3: Load #c"))
        result = schedule_block(dag, sim_machine)
        assert result.completed and result.proved_by_bound
        assert result.final_nops == 0


# ----------------------------------------------------------------------
# The headline property: the pruned search equals exhaustive legal search
# on arbitrary blocks and machines.
# ----------------------------------------------------------------------
@given(blocks(min_size=2, max_size=8, allow_div=True), machines())
@settings(max_examples=150, deadline=None)
def test_search_is_optimal(block, machine):
    dag = DependenceDAG(block)
    truth = legal_only_search(dag, machine).optimal_nops
    result = schedule_block(dag, machine, SearchOptions(curtail=10_000_000))
    assert result.completed
    assert result.final_nops == truth
    assert dag.is_legal_order(result.best.order)
    # The best timing must be internally consistent.
    assert compute_timing(dag, result.best.order, machine).etas == result.best.etas


@given(blocks(min_size=2, max_size=7), machines())
@settings(max_examples=60, deadline=None)
def test_paper_prunes_alone_are_also_optimal(block, machine):
    dag = DependenceDAG(block)
    truth = legal_only_search(dag, machine).optimal_nops
    result = schedule_block(
        dag, machine, SearchOptions.paper(curtail=10_000_000)
    )
    assert result.completed
    assert result.final_nops == truth


@given(blocks(min_size=2, max_size=10), machines())
@settings(max_examples=60, deadline=None)
def test_truncated_results_are_still_valid_schedules(block, machine):
    dag = DependenceDAG(block)
    result = schedule_block(
        dag, machine, SearchOptions(curtail=len(block) * 3 + 1)
    )
    assert dag.is_legal_order(result.best.order)
    assert result.final_nops <= result.initial_nops


class TestRegisterBudget:
    """The max_live constraint (section 3.1's no-new-spills guarantee)."""

    def _block(self):
        from repro.frontend.lowering import lower_source

        return lower_source(
            "s = a + b; t = c + d; u = e + f; x = s + t; y = x + u; z = y + a;"
        )

    def test_constrained_schedule_is_allocatable(self, sim_machine):
        from repro.regalloc.allocator import allocate_registers
        from repro.regalloc.liveness import max_live
        from repro.regalloc.spill import insert_spill_code

        block = insert_spill_code(self._block(), 4).block
        dag = DependenceDAG(block)
        result = schedule_block(dag, sim_machine, SearchOptions(max_live=4))
        assert max_live(block, result.best.order) <= 4
        allocation = allocate_registers(block, result.best.order, 4)
        assert allocation.num_registers_used <= 4

    def test_budget_can_cost_nops(self, sim_machine):
        """A tight register budget restricts reordering, so the optimum
        under the budget can only be >= the unconstrained optimum."""
        block = self._block()
        from repro.regalloc.spill import insert_spill_code

        spilled = insert_spill_code(block, 4).block
        dag = DependenceDAG(spilled)
        free = schedule_block(dag, sim_machine)
        tight = schedule_block(dag, sim_machine, SearchOptions(max_live=4))
        assert tight.final_nops >= free.final_nops

    def test_explicit_overtight_seed_rejected(self, sim_machine):
        dag = DependenceDAG(self._block())
        with pytest.raises(ValueError, match="max_live"):
            schedule_block(
                dag,
                sim_machine,
                SearchOptions(max_live=3),
                seed=dag.idents,
            )

    def test_min_budget_validated(self):
        with pytest.raises(ValueError, match="at least 3"):
            SearchOptions(max_live=2)


@given(blocks(min_size=2, max_size=7))
@settings(max_examples=50, deadline=None)
def test_max_live_search_is_optimal_among_pressure_legal_orders(block):
    """The register-budget search must find the best schedule among
    exactly those legal orders whose linear-scan pressure fits the
    budget (cross-checked by filtered enumeration)."""
    from repro.machine.presets import paper_simulation_machine
    from repro.regalloc.liveness import max_live as pressure_of

    machine = paper_simulation_machine()
    dag = DependenceDAG(block)
    budget = max(3, pressure_of(block))  # program order always fits
    candidates = [
        order
        for order in dag.iter_legal_orders()
        if pressure_of(block, order) <= budget
    ]
    truth = min(
        compute_timing(dag, order, machine, check_legality=False).total_nops
        for order in candidates
    )
    result = schedule_block(
        dag,
        machine,
        SearchOptions(curtail=10_000_000, max_live=budget),
    )
    assert result.completed
    assert result.final_nops == truth
    assert pressure_of(block, result.best.order) <= budget


class TestMemoCap:
    def test_tiny_memo_still_optimal(self, sim_machine):
        """Capping the dominance table degrades speed, never correctness."""
        text = (
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Add 1, 2\n"
            "5: Mul 4, 4\n6: Store #p, 3\n7: Store #q, 5"
        )
        dag = DependenceDAG(parse_block(text))
        truth = legal_only_search(dag, sim_machine).optimal_nops
        capped = schedule_block(
            dag, sim_machine, SearchOptions(max_memo_entries=2)
        )
        assert capped.completed
        assert capped.final_nops == truth


@given(blocks(min_size=1, max_size=10), machines())
@settings(max_examples=60, deadline=None)
def test_omega_accounting_invariants(block, machine):
    """Lambda is a hard budget, and the bookkeeping fields stay sane."""
    dag = DependenceDAG(block)
    curtail = max(3 * len(block) + 1, 40)
    result = schedule_block(dag, machine, SearchOptions(curtail=curtail))
    assert result.omega_calls <= curtail or result.proved_by_bound
    assert result.improvements >= 0
    assert result.elapsed_seconds >= 0.0
    # A proved-by-bound result never expanded a node beyond its seeds.
    if result.proved_by_bound:
        assert result.omega_calls <= 3 * max(1, len(block))
