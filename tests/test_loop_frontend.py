"""Loop front end: parse → lower → interpret must equal AST evaluation.

The bounded-loop surface syntax (``for i in 0..N { ... }``) reaches the
scheduler through two independent semantic paths: the AST reference
interpreter (:func:`repro.frontend.run_program`) and the lowered
:class:`~repro.ir.loop.LoopBlock` executed either iteratively
(:func:`~repro.ir.loop.run_loop`) or as a flat unrolled block.  These
tests pin the deterministic corners and then let hypothesis generate
random loops and check all three paths agree on the final memory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (
    ForLoop,
    ParseError,
    lower_loop,
    parse_program,
    run_program,
)
from repro.ir.interp import run_block
from repro.ir.loop import run_loop
from repro.synth.loops import LOOP_KERNELS

VARS = ("a", "b", "c", "d")


# ---------------------------------------------------------------------------
# Deterministic corners
# ---------------------------------------------------------------------------


def test_parse_loop_shape():
    prog = parse_program("for i in 0..8 { p = a * b; a = a + b; }")
    assert prog.has_loops
    (stmt,) = prog.statements
    assert isinstance(stmt, ForLoop)
    assert stmt.var == "i"
    assert stmt.start == 0
    assert stmt.stop == 8
    assert len(stmt.body) == 2


def test_parse_symbolic_bound():
    prog = parse_program("for i in 0..n { a = a + 1; }")
    (stmt,) = prog.statements
    assert stmt.stop == "n"
    loop = lower_loop(stmt)
    assert loop.trip_count({"n": 5}) == 5
    with pytest.raises((KeyError, ValueError, TypeError)):
        loop.trip_count({})


def test_nested_loops_rejected():
    with pytest.raises(ParseError):
        parse_program("for i in 0..4 { for j in 0..2 { a = a + 1; } }")


def test_zero_trip_loop_is_identity():
    prog = parse_program("for i in 3..3 { a = a + 1; }")
    assert run_program(prog, {"a": 5}) == {"a": 5}
    loop = lower_loop(prog.statements[0])
    assert dict(run_loop(loop, memory={"a": 5})) == {"a": 5}


def test_loop_var_is_scoped():
    prog = parse_program("for i in 1..5 { s = s + i; }")
    loop = lower_loop(prog.statements[0])
    assert loop.loop_var == "i"
    final = run_loop(loop, memory={"s": 0, "i": 99})
    # 1 + 2 + 3 + 4, and the outer binding of ``i`` survives the loop.
    assert final["s"] == 10
    assert final["i"] == 99


def test_unused_loop_var_is_dropped():
    prog = parse_program("for i in 0..4 { a = a + b; }")
    loop = lower_loop(prog.statements[0])
    assert loop.loop_var is None


def test_carried_dependences_exist_for_recurrence():
    prog = parse_program("for i in 0..6 { s = s + x; x = x * r; }")
    loop = lower_loop(prog.statements[0])
    assert loop.carried, "a recurrence must produce loop-carried edges"
    assert all(d.distance >= 1 for d in loop.carried)


@pytest.mark.parametrize("kernel", LOOP_KERNELS, ids=lambda k: k.name)
def test_builtin_kernels_round_trip(kernel):
    prog = parse_program(kernel.source)
    loop = kernel.lower()
    trips = loop.trip_count(kernel.memory)
    ref = dict(run_program(prog, kernel.memory))
    got = dict(run_loop(loop, memory=dict(kernel.memory)))
    assert ref == got
    # And the flat unrolled block, executed sequentially, agrees too.
    memory = dict(kernel.memory)
    if loop.loop_var is not None:
        memory[loop.loop_var] = loop.start
    flat = dict(run_block(loop.unrolled(trips), memory=memory).memory)
    if loop.loop_var is not None:
        flat.pop(loop.loop_var, None)
        ref.pop(loop.loop_var, None)
    assert ref == flat


# ---------------------------------------------------------------------------
# Hypothesis: random loops, three execution paths, one answer
# ---------------------------------------------------------------------------


@st.composite
def loop_sources(draw):
    """Random single-loop programs over + - * (no division: the paths
    would only diverge on who raises ZeroDivisionError first)."""

    def expr(depth: int) -> str:
        leaves = [draw(st.sampled_from(VARS)), str(draw(st.integers(-9, 9)))]
        leaves.append("i")
        if depth <= 0:
            return draw(st.sampled_from(leaves))
        kind = draw(st.sampled_from(("leaf", "unary", "binary")))
        if kind == "leaf":
            return draw(st.sampled_from(leaves))
        if kind == "unary":
            return f"-({expr(depth - 1)})"
        op = draw(st.sampled_from(("+", "-", "*")))
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    start = draw(st.integers(0, 3))
    trips = draw(st.integers(1, 5))
    n_stmts = draw(st.integers(1, 4))
    body = " ".join(
        f"{draw(st.sampled_from(VARS))} = {expr(draw(st.integers(0, 2)))};"
        for _ in range(n_stmts)
    )
    return f"for i in {start}..{start + trips} {{ {body} }}"


@settings(max_examples=60, deadline=None)
@given(source=loop_sources(), seed=st.integers(0, 2**16))
def test_round_trip_random(source, seed):
    prog = parse_program(source)
    (stmt,) = prog.statements
    memory = {v: (seed >> k) % 13 - 6 for k, v in enumerate(VARS)}

    ref = dict(run_program(prog, memory))
    loop = lower_loop(stmt, name="hypo")
    got = dict(run_loop(loop, memory=dict(memory)))
    assert ref == got, source

    trips = loop.trip_count(memory)
    flat_mem = dict(memory)
    if loop.loop_var is not None:
        flat_mem[loop.loop_var] = loop.start
    flat = dict(run_block(loop.unrolled(trips), memory=flat_mem).memory)
    if loop.loop_var is not None:
        flat.pop(loop.loop_var, None)
        ref.pop(loop.loop_var, None)
    assert ref == flat, source
