"""An audit of the paper's own checkable numbers.

The prose of TR-EE 90-11 contains arithmetic claims independent of any
implementation (factorials, percentages, the "5 years" estimate).  This
module re-derives each one — partly as a sanity net for our constants,
partly as executable documentation of what the paper actually says.
"""


import pytest

from repro.machine.presets import paper_example_machine, paper_simulation_machine
from repro.sched.exhaustive import exhaustive_search_size


class TestSection23Arithmetic:
    """Section 2.3's complexity worked example."""

    def test_fifteen_factorial(self):
        # "Q would be applied 15!, or 1,307,674,368,000, times."
        assert exhaustive_search_size(15) == 1_307_674_368_000

    def test_five_years_on_the_np1(self):
        # "0.12 milliseconds on a heavily-loaded Gould NP1 ... a mere
        # 156,920,924 seconds — just under 5 years!"
        seconds = exhaustive_search_size(15) * 0.12e-3
        assert round(seconds) == 156_920_924
        years = seconds / (365.25 * 24 * 3600)
        assert 4.9 < years < 5.0  # "just under 5 years"

    def test_sun_350_is_slower(self):
        # 0.3 ms per Q on the Sun 3/50 => ~12.4 years; the paper quotes
        # the NP1 figure as the flattering one.
        seconds = exhaustive_search_size(15) * 0.3e-3
        assert seconds > 156_920_924


class TestTable1Factorials:
    """Table 1's 'Exhaustive Search Calls' column is just n!."""

    @pytest.mark.parametrize(
        "n,printed",
        [
            (8, 40_320),
            (11, 39_916_800),
        ],
    )
    def test_exact_entries(self, n, printed):
        assert exhaustive_search_size(n) == printed

    @pytest.mark.parametrize(
        "n,mantissa,exponent",
        [
            (13, 6.2, 9),
            (14, 8.7, 10),
            (16, 2.1, 13),
            (20, 2.4, 18),
            (21, 5.1, 19),
            (22, 1.1, 21),
        ],
    )
    def test_scientific_entries(self, n, mantissa, exponent):
        value = exhaustive_search_size(n)
        assert value == pytest.approx(mantissa * 10**exponent, rel=0.05)


class TestTable7Arithmetic:
    """Internal consistency of Table 7's published numbers."""

    def test_percentages(self):
        assert round(100 * 15_812 / 16_000, 2) == 98.83
        assert round(100 * 188 / 16_000, 2) == 1.18  # paper prints 1.17
        # (the pair sums to 100.00 only with the paper's rounding)

    def test_average_block_size_is_consistent(self):
        # Complete avg 20.50 over 15,812 + truncated avg 32.28 over 188
        # => overall ~20.64, matching the prose's "average ... was 20.6".
        overall = (20.50 * 15_812 + 32.28 * 188) / 16_000
        assert 20.5 < overall < 20.7

    def test_throughput_claim(self):
        # "~0.1s" per complete search on a Sun 3/50 vs "schedules about
        # 100 typical blocks per second" (section 6): the conclusions'
        # throughput must refer to *total compiler* throughput with the
        # per-block search amortized over easy blocks — at face value
        # 0.1 s/block is 10 blocks/s.  We reproduce the shape, not the
        # inconsistency; our measured throughput is in EXPERIMENTS.md.
        assert 1 / 0.1 == 10


class TestMachineTables:
    """Tables 2 and 4 transcribed exactly."""

    def test_table2_rows(self):
        machine = paper_example_machine()
        rows = [
            (p.function, p.ident, p.latency, p.enqueue_time)
            for p in machine.pipelines
        ]
        assert rows == [
            ("loader", 1, 2, 1),
            ("loader", 2, 2, 1),
            ("adder", 3, 4, 3),
            ("adder", 4, 4, 3),
            ("multiplier", 5, 4, 2),
        ]

    def test_table3_mapping(self):
        from repro.ir.ops import Opcode

        machine = paper_example_machine()
        assert machine.op_map[Opcode.LOAD] == frozenset({1, 2})
        assert machine.op_map[Opcode.ADD] == frozenset({3, 4})
        assert machine.op_map[Opcode.SUB] == frozenset({3, 4})
        assert machine.op_map[Opcode.MUL] == frozenset({5})
        assert machine.op_map[Opcode.DIV] == frozenset({5})

    def test_table4_rows(self):
        machine = paper_simulation_machine()
        rows = [
            (p.function, p.ident, p.latency, p.enqueue_time)
            for p in machine.pipelines
        ]
        assert rows == [("loader", 1, 2, 1), ("multiplier", 2, 4, 2)]


class TestHeadlineClaims:
    """The abstract's quantitative claims, against our reproduction."""

    def test_truncation_below_two_percent(self):
        # "this truncation only rarely (in less than 2% of the cases
        # examined) sacrifices optimality" — our default-scale corpus
        # reproduces the regime (measured 0.4-1.2% truncated).
        from repro.experiments.runner import run_population

        records = run_population(200, curtail=50_000, master_seed=42)
        truncated = sum(not r.completed for r in records)
        assert truncated / len(records) < 0.02

    def test_lambda_of_one_thousand_suffices_for_most(self):
        # Section 2.3: "the vast majority of all blocks will terminate on
        # case [1] if lambda is on the order of 1,000."
        from repro.experiments.runner import run_population

        records = run_population(200, curtail=1_000, master_seed=42)
        complete = sum(r.completed for r in records)
        assert complete / len(records) > 0.90

    def test_fifty_for_small_blocks(self):
        # "for most blocks of fewer than 20 instructions, a lambda value
        # of about 50 would suffice" — with the full prune set the seed
        # pricing alone costs 3n, so allow the modern equivalent: most
        # sub-20 blocks finish within 3n + 50 omega calls.
        from repro.experiments.runner import run_population

        records = [
            r
            for r in run_population(200, curtail=50_000, master_seed=42)
            if r.size < 20
        ]
        assert records
        within = sum(r.omega_calls <= 3 * r.size + 50 for r in records)
        assert within / len(records) > 0.60
