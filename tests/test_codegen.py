"""Tests for assembly emission in the three delay disciplines."""

import pytest
from hypothesis import given, settings

from repro.codegen.assembly import (
    DelayDiscipline,
    explicit_stream,
    generate_assembly,
    padded_stream,
)
from repro.ir.dag import DependenceDAG
from repro.regalloc.allocator import allocate_registers
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import schedule_block
from repro.simulator.core import PipelineSimulator

from .strategies import blocks, machines, memories


def compile_figure3(figure3_block, sim_machine, discipline):
    dag = DependenceDAG(figure3_block)
    result = schedule_block(dag, sim_machine)
    allocation = allocate_registers(figure3_block, result.best.order)
    return result.best, allocation, generate_assembly(
        figure3_block, result.best, allocation, discipline
    )


class TestNopPadded:
    def test_figure3(self, figure3_block, sim_machine):
        timing, allocation, asm = compile_figure3(
            figure3_block, sim_machine, DelayDiscipline.NOP_PADDED
        )
        text = str(asm)
        assert text.count("NOP") == timing.total_nops == asm.nop_count
        assert "LD" in text and "MUL" in text and "LI" in text and "ST" in text
        assert asm.instruction_count == 5
        assert asm.num_registers_used == allocation.num_registers_used

    def test_operands_use_allocated_registers(self, figure3_block, sim_machine):
        timing, allocation, asm = compile_figure3(
            figure3_block, sim_machine, DelayDiscipline.NOP_PADDED
        )
        mul_reg_a = allocation.register_of(1)
        assert any(
            line.startswith("MUL") and f"R{mul_reg_a}" in line
            for line in asm.lines
        )


class TestExplicitInterlock:
    def test_wait_tags(self, figure3_block, sim_machine):
        timing, _, asm = compile_figure3(
            figure3_block, sim_machine, DelayDiscipline.EXPLICIT_INTERLOCK
        )
        tags = [line for line in asm.lines if line.startswith("[wait=")]
        assert len(tags) == 5
        assert asm.nop_count == 0
        total_wait = sum(
            int(line.split("=")[1].split("]")[0]) for line in tags
        )
        assert total_wait == timing.total_nops


class TestImplicitInterlock:
    def test_bare_instructions(self, figure3_block, sim_machine):
        _, _, asm = compile_figure3(
            figure3_block, sim_machine, DelayDiscipline.IMPLICIT_INTERLOCK
        )
        assert asm.nop_count == 0
        assert not any("wait" in line for line in asm.lines)


class TestStreams:
    def test_padded_stream_layout(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        stream = padded_stream(timing)
        assert stream == [1, 2, 3, None, 4, None, None, None, 5]

    def test_explicit_stream_layout(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        assert explicit_stream(timing) == [
            (1, 0), (2, 0), (3, 0), (4, 1), (5, 3)
        ]


class TestValidation:
    def test_mismatched_orders_rejected(self, figure3_block, sim_machine):
        dag = DependenceDAG(figure3_block)
        timing = compute_timing(dag, (1, 2, 3, 4, 5), sim_machine)
        allocation = allocate_registers(figure3_block, (3, 1, 4, 2, 5))
        with pytest.raises(ValueError, match="different orders"):
            generate_assembly(figure3_block, timing, allocation)

    def test_comment_timing(self, figure3_block, sim_machine):
        dag = DependenceDAG(figure3_block)
        timing = compute_timing(dag, (1, 2, 3, 4, 5), sim_machine)
        allocation = allocate_registers(figure3_block, timing.order)
        asm = generate_assembly(
            figure3_block, timing, allocation, comment_timing=True
        )
        assert any("; t=" in line for line in asm.lines)


@given(blocks(max_size=10), machines(), memories())
@settings(max_examples=60, deadline=None)
def test_emitted_padded_streams_replay_on_the_simulator(block, machine, memory):
    """The padded stream implied by the generated assembly executes
    hazard-free and computes what the interpreter computes."""
    from repro.ir.interp import run_block

    dag = DependenceDAG(block)
    result = schedule_block(dag, machine)
    allocation = allocate_registers(block, result.best.order)
    asm = generate_assembly(block, result.best, allocation)
    assert asm.nop_count == result.final_nops
    sim = PipelineSimulator(block, machine, dag)
    trace = sim.run_padded(padded_stream(result.best), memory)
    assert trace.memory == run_block(block, memory).memory
