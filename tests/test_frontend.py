"""Tests for the front end: lexer, parser, AST evaluation, lowering."""

from fractions import Fraction

import pytest

from repro.frontend.ast import Binary, Constant, Unary, evaluate_expr, run_program
from repro.frontend.lexer import LexError, TokenKind, tokenize
from repro.frontend.lowering import lower_program, lower_source
from repro.frontend.parser import ParseError, parse_expression, parse_program
from repro.ir.interp import run_block
from repro.ir.ops import Opcode
from repro.ir.textual import format_block


class TestLexer:
    def test_token_stream(self):
        tokens = tokenize("a = b * 15;")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.ASSIGN,
            TokenKind.IDENT,
            TokenKind.STAR,
            TokenKind.NUMBER,
            TokenKind.SEMI,
            TokenKind.EOF,
        ]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a = 1;\nbb = 2;")
        bb = [t for t in tokens if t.text == "bb"][0]
        assert (bb.line, bb.column) == (2, 1)

    def test_comments(self):
        tokens = tokenize("a = 1; // trailing\n/* block\ncomment */ b = 2;")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a = 1 $ 2;")


class TestParser:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("8 - 4 - 2")
        assert evaluate_expr(expr, {}) == 2

    def test_parentheses(self):
        assert evaluate_expr(parse_expression("(1 + 2) * 3"), {}) == 9

    def test_unary_minus(self):
        assert evaluate_expr(parse_expression("--5"), {}) == 5
        assert evaluate_expr(parse_expression("-(2 + 3)"), {}) == -5

    def test_braced_and_unbraced_programs(self):
        braced = parse_program("{ a = 1; }")
        plain = parse_program("a = 1;")
        assert braced.statements == plain.statements

    @pytest.mark.parametrize(
        "source",
        ["a = ;", "a 1;", "= 1;", "a = 1", "{ a = 1;", "a = (1;", "a = 1 +;"],
    )
    def test_errors(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_reports_location(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_program("a = ;")


class TestAstSemantics:
    def test_run_program(self):
        program = parse_program("b = 15; a = b * a;")
        env = run_program(program, {"a": 3})
        assert env == {"a": 45, "b": 15}

    def test_exact_division(self):
        env = run_program(parse_program("x = 1 / 3;"), {})
        assert env["x"] == Fraction(1, 3)

    def test_variables_read_and_written(self):
        program = parse_program("b = 15; a = b * a; c = d;")
        assert program.variables_read() == ("a", "d")
        assert program.variables_written() == ("b", "a", "c")

    def test_bad_operators_rejected(self):
        with pytest.raises(ValueError):
            Binary("%", Constant(1), Constant(2))
        with pytest.raises(ValueError):
            Unary("+", Constant(1))

    def test_program_rendering(self):
        program = parse_program("a = b + 1;")
        assert "a = (b + 1);" in str(program)


class TestLowering:
    def test_figure3_exactly(self):
        """The paper's Figure 3: source and tuple code, verbatim."""
        block = lower_source("{ b = 15; a = b * a; }")
        assert format_block(block) == (
            '1: Const "15"\n'
            "2: Store #b, 1\n"
            "3: Load #a\n"
            "4: Mul 1, 3\n"
            "5: Store #a, 4"
        )

    def test_load_on_first_reference_only(self):
        block = lower_source("a = b + b; c = b;")
        loads = [t for t in block if t.op is Opcode.LOAD]
        assert len(loads) == 1  # b loaded once, reused thereafter

    def test_naive_lowering_reloads_every_time(self):
        block = lower_source("a = b + b; c = b;", reuse_values=False)
        loads = [t for t in block if t.op is Opcode.LOAD]
        assert len(loads) == 3

    def test_assignment_forwards_value(self):
        # After a = expr, reads of a use the expression's tuple directly.
        block = lower_source("a = b + 1; c = a;")
        assert not any(
            t.op is Opcode.LOAD and t.variable == "a" for t in block
        )

    def test_unary_lowering(self):
        block = lower_source("a = -b;")
        assert any(t.op is Opcode.NEG for t in block)

    def test_lowering_preserves_semantics(self):
        source = "b = 15; a = b * a; c = (a - b) / 2; a = a + c;"
        program = parse_program(source)
        memory = {"a": 7, "c": 1}
        expected = run_program(program, memory)
        for reuse in (True, False):
            block = lower_program(program, reuse_values=reuse)
            got = run_block(block, memory).memory
            assert {k: Fraction(v) for k, v in got.items()} == {
                k: Fraction(v) for k, v in expected.items()
            }
