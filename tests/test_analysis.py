"""Tests for the schedule-analysis helpers (timeline, stall attribution,
utilization)."""

from hypothesis import given, settings

from repro.analysis import (
    explain_schedule,
    pipeline_utilization,
    render_timeline,
    stall_breakdown,
)
from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.sched.nop_insertion import InitialConditions, compute_timing
from repro.sched.search import schedule_block

from .strategies import blocks, machines


class TestRenderTimeline:
    def test_figure3_timeline(self, figure3_block, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        text = render_timeline(figure3_block, sim_machine, timing, dag=figure3_dag)
        lines = text.splitlines()
        assert "loader" in lines[0] and "multiplier" in lines[0]
        # One row per cycle through the drain of the last result.
        body = lines[2:]
        assert len(body) >= timing.issue_span_cycles
        assert any("(nop)" in line for line in body)
        assert any("#" in line for line in body)

    def test_enqueue_window_marked(self, sim_machine):
        # Mul enqueue time 2: the issue cycle is '#', the next '='.
        block = parse_block("1: Const 2\n2: Mul 1, 1\n3: Store #x, 2")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3), sim_machine)
        text = render_timeline(block, sim_machine, timing, dag=dag)
        mul_cycle = timing.issue_times[1]
        rows = text.splitlines()[2:]
        assert "#" in rows[mul_cycle]
        assert "=" in rows[mul_cycle + 1]
        assert "-" in rows[mul_cycle + 2]  # latency tail

    def test_carry_in_rendered(self, sim_machine):
        block = parse_block("1: Load #a")
        dag = DependenceDAG(block)
        conditions = InitialConditions(pipe_free={1: 2})
        timing = compute_timing(dag, (1,), sim_machine, initial=conditions)
        text = render_timeline(
            block, sim_machine, timing, initial=conditions, dag=dag
        )
        rows = text.splitlines()[2:]
        assert "=" in rows[0] and "=" in rows[1]  # carried busy window

    def test_empty_schedule(self, sim_machine):
        from repro.ir.block import BasicBlock

        block = BasicBlock([])
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (), sim_machine)
        text = render_timeline(block, sim_machine, timing, dag=dag)
        assert "cycle" in text


class TestExplainSchedule:
    def test_dependence_stall_attributed(self, figure3_dag, figure3_block, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        explanations = explain_schedule(
            figure3_block, sim_machine, timing, dag=figure3_dag
        )
        by_ident = {e.ident: e for e in explanations}
        assert by_ident[4].cause == "dependence"  # Mul waits on the Load
        assert "tuple 3" in by_ident[4].detail
        assert by_ident[5].cause == "dependence"  # Store waits on the Mul
        assert by_ident[1].cause == "none"

    def test_conflict_stall_attributed(self, sim_machine):
        block = parse_block(
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Mul 1, 2"
        )
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3, 4), sim_machine)
        explanations = explain_schedule(block, sim_machine, timing, dag=dag)
        last = explanations[-1]
        assert last.cause == "conflict"
        assert "pipeline 2" in last.detail

    def test_carry_in_attributed(self, sim_machine):
        block = parse_block("1: Load #a")
        dag = DependenceDAG(block)
        conditions = InitialConditions(pipe_free={1: 3})
        timing = compute_timing(dag, (1,), sim_machine, initial=conditions)
        explanations = explain_schedule(
            block, sim_machine, timing, initial=conditions, dag=dag
        )
        assert explanations[0].cause == "carry-in"
        assert explanations[0].eta == 3

    def test_variable_carry_in_attributed(self, sim_machine):
        block = parse_block("1: Load #pending")
        dag = DependenceDAG(block)
        conditions = InitialConditions(variable_ready={"pending": 4})
        timing = compute_timing(dag, (1,), sim_machine, initial=conditions)
        explanations = explain_schedule(
            block, sim_machine, timing, initial=conditions, dag=dag
        )
        assert explanations[0].cause == "carry-in"
        assert "pending" in explanations[0].detail

    def test_breakdown_sums_to_total(self, figure3_dag, figure3_block, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        explanations = explain_schedule(
            figure3_block, sim_machine, timing, dag=figure3_dag
        )
        breakdown = stall_breakdown(explanations)
        assert sum(breakdown.values()) == timing.total_nops

    def test_rendering(self, figure3_dag, figure3_block, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        explanations = explain_schedule(
            figure3_block, sim_machine, timing, dag=figure3_dag
        )
        texts = [str(e) for e in explanations]
        assert any("no stall" in t for t in texts)
        assert any("NOP" in t for t in texts)


class TestUtilization:
    def test_figure3(self, figure3_block, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        util = pipeline_utilization(
            figure3_block, sim_machine, timing, dag=figure3_dag
        )
        assert set(util) == {1, 2}
        assert 0.0 < util[1] <= 1.0  # one load
        assert 0.0 < util[2] <= 1.0  # one mul

    def test_unused_pipeline_is_zero(self, sim_machine):
        block = parse_block("1: Load #a")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1,), sim_machine)
        util = pipeline_utilization(block, sim_machine, timing, dag=dag)
        assert util[2] == 0.0


@given(blocks(min_size=1, max_size=10), machines())
@settings(max_examples=60, deadline=None)
def test_explanations_always_account_for_every_nop(block, machine):
    """Property: the per-cause breakdown partitions the schedule's NOPs,
    and every positive-eta instruction gets a non-'none' cause."""
    dag = DependenceDAG(block)
    result = schedule_block(dag, machine)
    explanations = explain_schedule(block, machine, result.best, dag=dag)
    assert sum(e.eta for e in explanations) == result.final_nops
    for e in explanations:
        if e.eta > 0:
            assert e.cause in ("dependence", "conflict", "carry-in")
            assert e.detail
    # The timeline must render without error for any schedule.
    render_timeline(block, machine, result.best, dag=dag)
