"""Tests for the independent schedule-certificate checker.

The checker (``repro.verify.certificate``) re-derives dependences, σ
and Ω timing from the raw tuples and machine tables without importing
anything from ``repro.sched``; these tests pin it to the paper's
worked Figure-3 numbers, show it *rejects* hand-mutated schedules, and
cross-check it against ``compute_timing`` on random inputs — the
differential property that makes the certificate an oracle.
"""

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.machine.pipeline import PipelineDesc
from repro.sched.list_scheduler import program_order
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import schedule_block
from repro.verify.certificate import (
    brute_force_optimum,
    check_schedule,
    derive_dependences,
)

from .strategies import blocks, machines

PROGRAM_ORDER = (1, 2, 3, 4, 5)
PROGRAM_ETAS = (0, 0, 0, 1, 3)  # Figure 3 program order: 4 NOPs
OPTIMAL_ORDER = (3, 1, 4, 2, 5)
OPTIMAL_ETAS = (0, 0, 0, 0, 2)  # Figure 3 optimal: 2 NOPs


class TestFigure3Certification:
    def test_program_order_certified(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, PROGRAM_ORDER, PROGRAM_ETAS
        )
        assert report.ok
        assert report.required_etas == PROGRAM_ETAS
        assert report.required_nops == 4

    def test_optimal_order_certified(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, OPTIMAL_ORDER, OPTIMAL_ETAS
        )
        assert report.ok
        assert report.required_nops == 2

    def test_illegal_order_rejected(self, figure3_block, sim_machine):
        # Mul (4) before the Load (3) it consumes.
        report = check_schedule(
            figure3_block, sim_machine, (4, 1, 3, 2, 5), (0,) * 5
        )
        assert not report.ok
        assert any(v.kind == "dependence" for v in report.violations)

    def test_dependences_rederived_not_imported(self, figure3_block):
        preds = derive_dependences(figure3_block)
        # Store #b after Const; Mul after Const and Load; Store #a after
        # Mul AND after the Load of #a (anti-dependence).
        assert preds[2] == frozenset({1})
        assert preds[4] == frozenset({1, 3})
        assert preds[5] == frozenset({3, 4})


class TestMutationRejection:
    """The acceptance-style property: hand-corrupt a certified schedule
    and the certificate must catch it."""

    def test_swapped_instructions_rejected(self, figure3_block, sim_machine):
        # Swap the last two instructions of the optimal order but keep
        # the old eta stream: the Store #b (2) slides into the Store #a
        # slot and vice versa.
        mutated = (3, 1, 4, 5, 2)
        report = check_schedule(figure3_block, sim_machine, mutated, OPTIMAL_ETAS)
        assert not report.ok
        assert any(v.kind == "under-padded" for v in report.violations)

    def test_shifted_issue_slot_rejected(self, figure3_block, sim_machine):
        # Steal one NOP from the final Store: the hardware would read
        # the multiplier's result a tick early.
        report = check_schedule(
            figure3_block, sim_machine, OPTIMAL_ORDER, (0, 0, 0, 0, 1)
        )
        assert not report.ok
        [violation] = report.violations
        assert violation.kind == "under-padded"
        assert violation.ident == 5

    def test_extra_padding_rejected_by_default(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, OPTIMAL_ORDER, (0, 1, 0, 0, 2)
        )
        assert not report.ok
        assert any(v.kind == "over-padded" for v in report.violations)

    def test_extra_padding_accepted_when_not_minimal(
        self, figure3_block, sim_machine
    ):
        # Over-padded streams execute correctly; require_minimal=False is
        # the executable-not-optimal notion of legality.
        report = check_schedule(
            figure3_block,
            sim_machine,
            OPTIMAL_ORDER,
            (0, 1, 0, 0, 2),
            require_minimal=False,
        )
        assert report.ok
        assert report.claimed_nops == 3
        assert report.required_nops == 2

    def test_padding_shifts_downstream_requirements(
        self, figure3_block, sim_machine
    ):
        # Over-padding early can *reduce* the NOPs needed later: the
        # certificate must judge each position against the stream as
        # written.  Two extra NOPs after the Mul absorb the final
        # Store's latency wait entirely, so nothing is required there.
        report = check_schedule(
            figure3_block,
            sim_machine,
            OPTIMAL_ORDER,
            (0, 0, 0, 2, 0),
            require_minimal=False,
        )
        assert report.ok
        assert report.required_etas == (0, 0, 0, 0, 0)

    def test_negative_eta_rejected(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, OPTIMAL_ORDER, (0, 0, 0, -1, 3)
        )
        assert not report.ok
        assert any(v.kind == "permutation" for v in report.violations)

    def test_non_permutation_rejected(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, (1, 2, 3, 4, 4), (0,) * 5
        )
        assert not report.ok

    def test_eta_length_mismatch_rejected(self, figure3_block, sim_machine):
        report = check_schedule(
            figure3_block, sim_machine, PROGRAM_ORDER, (0, 0, 0)
        )
        assert not report.ok


class TestSigmaViolations:
    """Assignment checking on the non-deterministic example machine
    (Loads may run on pipeline 1 or 2)."""

    def test_ambiguous_op_needs_assignment(self, figure3_block, example_machine):
        report = check_schedule(
            figure3_block, example_machine, PROGRAM_ORDER, PROGRAM_ETAS
        )
        assert not report.ok
        assert any(v.kind == "assignment" for v in report.violations)

    def test_explicit_assignment_accepted(self, figure3_block, example_machine):
        assignment = {1: None, 2: None, 3: 1, 4: 5, 5: None}
        timing = compute_timing(
            DependenceDAG(figure3_block),
            PROGRAM_ORDER,
            example_machine,
            assignment=assignment,
        )
        report = check_schedule(
            figure3_block,
            example_machine,
            timing.order,
            timing.etas,
            assignment=assignment,
        )
        assert report.ok

    def test_unknown_pipeline_rejected(self, figure3_block, example_machine):
        report = check_schedule(
            figure3_block, example_machine, PROGRAM_ORDER, PROGRAM_ETAS,
            assignment={1: None, 2: None, 3: 42, 4: 5, 5: None},
        )
        assert any("unknown pipeline" in v.detail for v in report.violations)

    def test_wrong_pipeline_class_rejected(self, figure3_block, example_machine):
        # Pipeline 1 is a loader; tuple 4 is a Mul.
        report = check_schedule(
            figure3_block, example_machine, PROGRAM_ORDER, PROGRAM_ETAS,
            assignment={1: None, 2: None, 3: 1, 4: 1, 5: None},
        )
        assert any("cannot execute" in v.detail for v in report.violations)


class TestCarryInConditions:
    def test_pipe_free_delays_first_issue(self, sim_machine):
        block = parse_block("1: Load #a")
        report = check_schedule(
            block, sim_machine, (1,), (3,), pipe_free={1: 3}
        )
        assert report.ok and report.required_etas == (3,)

    def test_variable_ready_delays_touch(self, sim_machine):
        block = parse_block("1: Load #a")
        report = check_schedule(
            block, sim_machine, (1,), (0,), variable_ready={"a": 2}
        )
        assert not report.ok
        assert report.required_etas == (2,)


class TestMachineModelValidation:
    """The ISSUE's 'zero-latency pipes' and 'enqueue > latency' shapes are
    invalid by construction; pin the constructor rejections so the
    adversarial gallery can safely stay inside the legal boundary."""

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            PipelineDesc("bad", 1, latency=0, enqueue_time=0)

    def test_zero_enqueue_rejected(self):
        with pytest.raises(ValueError):
            PipelineDesc("bad", 1, latency=2, enqueue_time=0)

    def test_enqueue_beyond_latency_rejected(self):
        with pytest.raises(ValueError):
            PipelineDesc("bad", 1, latency=2, enqueue_time=3)


class TestBruteForce:
    def test_figure3_optimum(self, figure3_block, sim_machine):
        result = brute_force_optimum(figure3_block, sim_machine)
        assert result.best_nops == 2
        assert result.exhausted
        assert result.orders_seen == 7  # the block's full legal-order count

    def test_matches_search(self, figure3_block, sim_machine):
        dag = DependenceDAG(figure3_block)
        search = schedule_block(dag, sim_machine)
        assert search.completed
        brute = brute_force_optimum(figure3_block, sim_machine)
        assert brute.best_nops == search.final_nops

    def test_limit_stops_enumeration(self, figure3_block, sim_machine):
        result = brute_force_optimum(figure3_block, sim_machine, limit=3)
        assert not result.exhausted
        assert result.orders_seen == 3


# ----------------------------------------------------------------------
# The differential property: on any (block, machine), the scheduler
# stack's Ω timing and the certificate's independent re-derivation agree.
# ----------------------------------------------------------------------
@given(blocks(max_size=10), machines())
@settings(max_examples=150, deadline=None)
def test_compute_timing_always_certifies(block, machine):
    dag = DependenceDAG(block)
    timing = compute_timing(dag, program_order(dag), machine)
    report = check_schedule(block, machine, timing.order, timing.etas)
    assert report.ok, report.summary()
    assert report.required_etas == timing.etas
    assert report.required_nops == timing.total_nops


@given(blocks(max_size=8), machines())
@settings(max_examples=60, deadline=None)
def test_stolen_nop_never_certifies(block, machine):
    """Removing one NOP from any stalled schedule must be caught."""
    dag = DependenceDAG(block)
    timing = compute_timing(dag, program_order(dag), machine)
    stalls = [k for k, eta in enumerate(timing.etas) if eta > 0]
    if not stalls:
        return
    etas = list(timing.etas)
    etas[stalls[-1]] -= 1
    report = check_schedule(block, machine, timing.order, etas)
    assert not report.ok
    assert any(v.kind == "under-padded" for v in report.violations)
