"""The scheduling service: result cache, daemon, and client.

The load-bearing invariant is *bit-for-bit transparency*: a cache-hit
``SearchResult`` equals the cold fast-engine result in every field
except ``elapsed_seconds``, passes the independent certificate checker,
and this holds across ident renamings, the disk tier, pickled workers,
and the HTTP daemon.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import threading

import pytest
from hypothesis import given, settings

from repro.driver import compile_source
from repro.ir.dag import DependenceDAG
from repro.ir.textual import format_block, parse_block
from repro.machine.presets import get_machine
from repro.sched.multi import first_pipeline_assignment
from repro.sched.search import SearchOptions, schedule_block
from repro.service import (
    CacheIntegrityError,
    ScheduleCache,
    SchedulingService,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    create_server,
)
from repro.service.server import SCHEMA
from repro.synth.kernels import KERNELS
from repro.telemetry import Telemetry
from repro.verify.certificate import check_schedule

from .strategies import blocks, machines, rename_block

OPTIONS = SearchOptions(curtail=10_000)


def _strip(result):
    """SearchResult minus the one field wall clock is allowed to vary."""
    return dataclasses.replace(result, elapsed_seconds=0.0)


def _certify(dag, machine, timing):
    cert = check_schedule(
        dag.block,
        machine,
        timing.order,
        timing.etas,
        assignment=first_pipeline_assignment(dag, machine),
    )
    assert cert.ok, cert.summary()
    assert cert.required_nops == timing.total_nops


def _kernel_dag(kernel, name=None):
    block = compile_source(
        kernel.source,
        get_machine("paper-simulation"),
        scheduler="none",
        name=name or kernel.name,
    ).block
    return DependenceDAG(block)


class TestCacheTransparency:
    @pytest.mark.parametrize("preset", ["paper-simulation", "deep-memory"])
    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_kernel_round_trip(self, kernel, preset):
        machine = get_machine(preset)
        dag = _kernel_dag(kernel)
        cold = schedule_block(dag, machine, OPTIONS)
        cache = ScheduleCache()
        telemetry = Telemetry()
        first, s1 = cache.schedule_with_status(
            dag, machine, OPTIONS, telemetry=telemetry
        )
        second, s2 = cache.schedule_with_status(
            dag, machine, OPTIONS, telemetry=telemetry
        )
        assert (s1, s2) == ("miss", "hit")
        assert _strip(first) == _strip(cold)
        assert _strip(second) == _strip(cold)
        _certify(dag, machine, second.best)
        assert telemetry.counters["service.cache.hits"] == 1
        assert telemetry.counters["service.cache.misses"] == 1

    @settings(max_examples=40, deadline=None)
    @given(blocks(max_size=7), machines(max_pipelines=3))
    def test_fuzzed_round_trip(self, block, machine):
        dag = DependenceDAG(block)
        cold = schedule_block(dag, machine, OPTIONS)
        cache = ScheduleCache()
        hit, status = (
            cache.schedule(dag, machine, OPTIONS),
            cache.schedule_with_status(dag, machine, OPTIONS)[1],
        )
        assert status == "hit"
        assert _strip(hit) == _strip(cold)
        _certify(dag, machine, hit.best)

    def test_renamed_block_is_served_translated(self):
        machine = get_machine("paper-simulation")
        block = parse_block(
            "1: Load #a\n2: Const 7\n3: Mul 1, 2\n4: Add 3, 1\n5: Store #a, 4"
        )
        mapping = {1: 11, 2: 7, 3: 9, 4: 3, 5: 5}
        renamed = rename_block(block, mapping)
        cache = ScheduleCache()
        cache.schedule(DependenceDAG(block), machine, OPTIONS)

        dag2 = DependenceDAG(renamed)
        served, status = cache.schedule_with_status(dag2, machine, OPTIONS)
        assert status == "hit"
        # The hit must be indistinguishable from solving the renamed
        # block cold: same orders in the *renamed* namespace, same
        # certificates, same search accounting.
        cold = schedule_block(dag2, machine, OPTIONS)
        assert _strip(served) == _strip(cold)
        assert set(served.best.order) == set(dag2.idents)
        _certify(dag2, machine, served.best)

    def test_fast_result_served_to_vector_request(self, figure3_dag):
        # The canonical key excludes the engine, so a result solved
        # under "fast" must be a hit for a "vector" request — and
        # indistinguishable from solving the block cold under vector.
        machine = get_machine("paper-simulation")
        fast_opts = dataclasses.replace(OPTIONS, engine="fast")
        vector_opts = dataclasses.replace(OPTIONS, engine="vector")
        cache = ScheduleCache()
        warm, s1 = cache.schedule_with_status(figure3_dag, machine, fast_opts)
        served, s2 = cache.schedule_with_status(
            figure3_dag, machine, vector_opts
        )
        assert (s1, s2) == ("miss", "hit")
        assert _strip(served) == _strip(warm)
        cold = schedule_block(figure3_dag, machine, vector_opts)
        assert _strip(served) == _strip(cold)
        _certify(figure3_dag, machine, served.best)


class TestCacheTiers:
    def test_disk_tier_survives_process_boundary(self, tmp_path, figure3_dag):
        machine = get_machine("paper-simulation")
        store = str(tmp_path / "store")
        warm = ScheduleCache(path=store)
        cold_result = warm.schedule(figure3_dag, machine, OPTIONS)

        fresh = ScheduleCache(path=store)  # simulates a new process
        served, status = fresh.schedule_with_status(figure3_dag, machine, OPTIONS)
        assert status == "hit"
        assert _strip(served) == _strip(cold_result)

    def test_pickled_cache_reopens_store(self, tmp_path, figure3_dag):
        machine = get_machine("paper-simulation")
        cache = ScheduleCache(path=str(tmp_path / "store"))
        cache.schedule(figure3_dag, machine, OPTIONS)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.path == cache.path
        _, status = clone.schedule_with_status(figure3_dag, machine, OPTIONS)
        assert status == "hit"

    def test_memory_lru_eviction(self, figure3_dag):
        machine = get_machine("paper-simulation")
        cache = ScheduleCache(memory_entries=1)
        cache.schedule(figure3_dag, machine, OPTIONS)
        # A second problem evicts the first from the (path-less) cache.
        other = DependenceDAG(parse_block("1: Load #a\n2: Store #b, 1"))
        cache.schedule(other, machine, OPTIONS)
        _, status = cache.schedule_with_status(figure3_dag, machine, OPTIONS)
        assert status == "miss"

    def test_tampered_disk_entry_degrades_to_miss(self, tmp_path, figure3_dag):
        machine = get_machine("paper-simulation")
        store = tmp_path / "store"
        cache = ScheduleCache(path=str(store))
        cache.schedule(figure3_dag, machine, OPTIONS)
        entries = list(store.rglob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{ torn json", encoding="utf-8")

        fresh = ScheduleCache(path=str(store))
        result, status = fresh.schedule_with_status(figure3_dag, machine, OPTIONS)
        assert status == "miss"  # re-solved, not crashed
        assert _strip(result) == _strip(schedule_block(figure3_dag, machine, OPTIONS))
        # ... and the store healed itself.
        assert json.loads(entries[0].read_text())["schema"] == "repro-cache/1"

    def test_wrong_schema_entry_degrades_to_miss(self, tmp_path, figure3_dag):
        machine = get_machine("paper-simulation")
        store = tmp_path / "store"
        cache = ScheduleCache(path=str(store))
        cache.schedule(figure3_dag, machine, OPTIONS)
        entry = next(iter(store.rglob("*.json")))
        data = json.loads(entry.read_text())
        data["schema"] = "repro-cache/999"
        entry.write_text(json.dumps(data), encoding="utf-8")
        _, status = ScheduleCache(path=str(store)).schedule_with_status(
            figure3_dag, machine, OPTIONS
        )
        assert status == "miss"


class TestCacheSafety:
    def test_time_limited_searches_bypass(self, figure3_dag):
        machine = get_machine("paper-simulation")
        cache = ScheduleCache()
        telemetry = Telemetry()
        limited = dataclasses.replace(OPTIONS, time_limit=60.0)
        for _ in range(2):
            _, status = cache.schedule_with_status(
                figure3_dag, machine, limited, telemetry=telemetry
            )
            assert status == "bypass"
        assert telemetry.counters["service.cache.bypass"] == 2
        assert "service.cache.hits" not in telemetry.counters

    def test_corrupt_result_refused_on_insert(self, figure3_dag, monkeypatch):
        machine = get_machine("paper-simulation")

        def corrupt(dag, machine, options, **kwargs):
            result = schedule_block(dag, machine, options, **kwargs)
            broken = dataclasses.replace(
                result.best, etas=tuple(e + 1 for e in result.best.etas)
            )
            return dataclasses.replace(result, best=broken)

        monkeypatch.setattr("repro.service.cache.schedule_block", corrupt)
        cache = ScheduleCache()
        with pytest.raises(CacheIntegrityError):
            cache.schedule(figure3_dag, machine, OPTIONS)
        # Nothing was poisoned: the (unpatched) next call is a miss.
        monkeypatch.undo()
        _, status = cache.schedule_with_status(figure3_dag, machine, OPTIONS)
        assert status == "miss"

    def test_rejects_empty_lru(self):
        with pytest.raises(ValueError):
            ScheduleCache(memory_entries=0)


class TestPopulationIntegration:
    def test_warm_store_serves_identical_records(self, tmp_path):
        from repro.experiments.runner import run_population

        store = str(tmp_path / "store")
        n, curtail, seed = 14, 2_000, 7
        options = SearchOptions(curtail=curtail)

        cold_telemetry = Telemetry()
        cold = run_population(
            n, curtail, seed, options=options,
            telemetry=cold_telemetry,
            cache=ScheduleCache(path=store),
        )
        assert cold_telemetry.counters["service.cache.misses"] > 0

        warm_telemetry = Telemetry()
        warm = run_population(
            n, curtail, seed, options=options,
            telemetry=warm_telemetry,
            cache=ScheduleCache(path=store),
        )
        assert warm == cold  # BlockRecord equality excludes elapsed time
        assert warm_telemetry.counters["service.cache.hits"] > 0
        assert "service.cache.misses" not in warm_telemetry.counters

    def test_cacheless_run_matches_cached_run(self, tmp_path):
        from repro.experiments.runner import run_population

        n, curtail, seed = 10, 2_000, 3
        options = SearchOptions(curtail=curtail)
        plain = run_population(n, curtail, seed, options=options)
        cached = run_population(
            n, curtail, seed, options=options,
            cache=ScheduleCache(path=str(tmp_path / "store")),
        )
        assert cached == plain


@pytest.fixture
def service_url():
    """An in-process daemon over ephemeral TCP; yields its URL."""
    service = SchedulingService(cache=ScheduleCache(), options=OPTIONS)
    server, url = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield url
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestDaemon:
    def test_health(self, service_url):
        reply = ServiceClient(service_url).health()
        assert reply["ok"] is True
        assert reply["schema"] == SCHEMA
        assert reply["cache"] is True

    def test_batch_round_trip_second_pass_all_hits(self, service_url, figure3_block):
        client = ServiceClient(service_url)
        machine = get_machine("paper-simulation")
        blocks_ = [_kernel_dag(k).block for k in KERNELS[:3]] + [figure3_block]

        first = client.schedule(blocks_, "paper-simulation")
        assert first["schema"] == SCHEMA
        assert [e["cache"] for e in first["entries"]] == ["miss"] * len(blocks_)
        for spec, entry in zip(blocks_, first["entries"]):
            # The daemon's answer must match a cold local search of the
            # same wire payload, certificates included.
            dag = DependenceDAG(parse_block(format_block(spec), name=spec.name))
            cold = schedule_block(dag, machine, OPTIONS)
            assert tuple(entry["order"]) == cold.best.order
            assert tuple(entry["etas"]) == cold.best.etas
            assert entry["total_nops"] == cold.best.total_nops
            assert entry["omega_calls"] == cold.omega_calls
            assert entry["completed"] == cold.completed
            assert entry["ladder"] == (
                "optimal-search" if cold.completed else "curtailed-search"
            )

        second = client.schedule(blocks_, "paper-simulation")
        assert [e["cache"] for e in second["entries"]] == ["hit"] * len(blocks_)
        assert second["stats"] == {
            "hits": len(blocks_), "misses": 0, "bypass": 0,
            "degraded": 0, "shed": 0,
        }
        for a, b in zip(first["entries"], second["entries"]):
            # Identical schedules and accounting; only the provenance
            # field may (must) differ.
            assert {k: v for k, v in a.items() if k != "cache"} == {
                k: v for k, v in b.items() if k != "cache"
            }

    def test_duplicates_within_one_batch_dedup(self, service_url, figure3_block):
        client = ServiceClient(service_url)
        reply = client.schedule(
            [figure3_block, figure3_block], "paper-simulation",
            names=["one", "two"],
        )
        assert [e["cache"] for e in reply["entries"]] == ["miss", "hit"]
        assert reply["entries"][0]["order"] == reply["entries"][1]["order"]

    def test_machine_payload_and_options(self, service_url, figure3_block):
        client = ServiceClient(service_url)
        reply = client.schedule(
            [figure3_block],
            get_machine("deep-memory"),
            options={"curtail": 5_000},
        )
        assert reply["machine"] == "deep-memory"
        assert reply["entries"][0]["completed"] is True

    def test_protocol_errors(self, service_url, figure3_block):
        client = ServiceClient(service_url)
        with pytest.raises(ServiceClientError) as exc:
            client.schedule([figure3_block], "no-such-machine")
        assert exc.value.status == 400
        with pytest.raises(ServiceClientError) as exc:
            client.schedule(["1: Bogus ???"], "paper-simulation")
        assert exc.value.status == 400
        with pytest.raises(ServiceClientError) as exc:
            client.schedule(
                [figure3_block], "paper-simulation", options={"time_limit": 5}
            )
        assert exc.value.status == 400
        with pytest.raises(ServiceClientError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404

    def test_unix_socket_transport(self, tmp_path, figure3_block):
        sock = str(tmp_path / "repro.sock")
        service = SchedulingService(cache=ScheduleCache(), options=OPTIONS)
        server, url = create_server(service, unix_path=sock)
        assert url == f"unix://{sock}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(url)
            assert client.health()["ok"] is True
            reply = client.schedule([figure3_block], "paper-simulation")
            assert reply["entries"][0]["completed"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_client_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://nope")


class TestServiceProtocol:
    """schedule_batch validation, exercised without HTTP."""

    def setup_method(self):
        self.service = SchedulingService(options=OPTIONS)

    def _batch(self, **overrides):
        payload = {
            "schema": SCHEMA,
            "machine": "paper-simulation",
            "blocks": [{"name": "f3", "tuples": "1: Load #a\n2: Store #b, 1"}],
        }
        payload.update(overrides)
        return payload

    def test_ok_without_cache_counts_bypass(self):
        reply = self.service.schedule_batch(self._batch())
        assert reply["entries"][0]["cache"] == "bypass"
        assert reply["stats"] == {
            "hits": 0, "misses": 0, "bypass": 1, "degraded": 0, "shed": 0,
        }

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "repro-service/999"},
            {"machine": 42},
            {"machine": "unknown-preset"},
            {"blocks": []},
            {"blocks": [{"name": "x"}]},
            {"blocks": [{"tuples": "1: Frobnicate"}]},
            {"options": {"workers": 4}},
            {"options": {"curtail": -1}},
            {"options": "fast"},
        ],
    )
    def test_malformed_requests(self, mutation):
        with pytest.raises(ServiceError):
            self.service.schedule_batch(self._batch(**mutation))

    def test_non_object_body(self):
        with pytest.raises(ServiceError):
            self.service.schedule_batch([1, 2, 3])

    def test_non_deterministic_machine_refused(self):
        from repro.machine.serialize import machine_to_dict
        from repro.verify.fuzz import adversarial_machines

        twins = next(
            m for m in adversarial_machines() if not m.is_deterministic
        )
        with pytest.raises(ServiceError):
            self.service.schedule_batch(
                self._batch(machine=machine_to_dict(twins))
            )


class TestServeSmoke:
    """End-to-end: the real ``repro serve`` process (the CI smoke job)."""

    def test_serve_cli_round_trip(self, tmp_path):
        import os
        import subprocess
        import sys
        import time

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_dir)
        ready = tmp_path / "ready.json"
        store = tmp_path / "store"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.console", "serve",
                "--port", "0", "--cache", str(store),
                "--curtail", "10000",
                "--ready-file", str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "daemon never became ready"
                time.sleep(0.05)
            url = json.loads(ready.read_text())["url"]

            client = ServiceClient(url, timeout=120.0)
            assert client.health()["ok"] is True
            kernel_blocks = [_kernel_dag(k).block for k in KERNELS]
            first = client.schedule(kernel_blocks, "paper-simulation")
            second = client.schedule(kernel_blocks, "paper-simulation")
            assert first["stats"]["hits"] == 0
            assert second["stats"] == {
                "hits": len(kernel_blocks), "misses": 0, "bypass": 0,
                "degraded": 0, "shed": 0,
            }
            for a, b in zip(first["entries"], second["entries"]):
                assert {k: v for k, v in a.items() if k != "cache"} == {
                    k: v for k, v in b.items() if k != "cache"
                }
            # The store is durable and shared: a *local* cache over the
            # same directory hits every kernel without searching.
            local = ScheduleCache(path=str(store))
            machine = get_machine("paper-simulation")
            for block in kernel_blocks:
                _, status = local.schedule_with_status(
                    DependenceDAG(block), machine, OPTIONS
                )
                assert status == "hit"
        finally:
            proc.terminate()
            proc.wait(timeout=10)
