"""The canonical fingerprint (repro.service.fingerprint).

Both directions of the cache-key contract:

* **Collision on isomorphism** — renaming tuple reference numbers,
  renaming pipeline identifiers, or swapping commutative operands
  yields the *same* key (hypothesis-fuzzed over random blocks and
  machines);
* **Separation on mutation** — any change to a latency, an enqueue
  time, the dependence structure, or a search option yields a
  *different* key.

The golden-key test pins the on-disk format: shared stores outlive
processes, so an unintentional payload change must fail loudly here
(an intentional one bumps ``CANON_VERSION`` and the constant below).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dag import DependenceDAG, DependenceEdge
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc
from repro.machine.presets import paper_simulation_machine
from repro.machine.serialize import machine_from_dict, machine_to_dict
from repro.sched.search import SearchOptions
from repro.service.fingerprint import CANON_VERSION, fingerprint_problem

from .strategies import blocks, ident_renamings, machines, rename_block

#: sha256 key of Figure 3 on the paper machine under default options.
#: Pinned because disk stores are shared across processes and versions:
#: any payload change must either keep this byte-for-byte or bump
#: CANON_VERSION (and this constant with it).
FIGURE3_KEY = "5ee4b0297fcf58792b842181dda2e43a55264847d1e292a645f82cf234e97c85"


def _key(dag, machine, options=SearchOptions()):
    return fingerprint_problem(dag, machine, options).key


def _renamed_machine(machine: MachineDescription) -> MachineDescription:
    """The same machine with every pipeline ident replaced."""
    data = machine_to_dict(machine)
    ids = [p["id"] for p in data["pipelines"]]
    fresh = {pid: 100 + i for i, pid in enumerate(reversed(ids))}
    for p in data["pipelines"]:
        p["id"] = fresh[p["id"]]
    data["op_map"] = {
        op: [fresh[pid] for pid in pids] for op, pids in data["op_map"].items()
    }
    return machine_from_dict(data)


class TestGolden:
    def test_version_tag(self):
        assert CANON_VERSION == "repro-canon/1"

    def test_figure3_key_is_stable(self, figure3_dag):
        form = fingerprint_problem(figure3_dag, paper_simulation_machine())
        assert form.key == FIGURE3_KEY
        assert form.n == 5
        assert form.idents == (1, 2, 3, 4, 5)

    def test_str(self, figure3_dag):
        form = fingerprint_problem(figure3_dag, paper_simulation_machine())
        assert form.key[:12] in str(form)


class TestIsomorphismCollides:
    @settings(max_examples=60, deadline=None)
    @given(st.data(), blocks(max_size=8), machines(max_pipelines=3))
    def test_ident_renaming(self, data, block, machine):
        mapping = data.draw(ident_renamings(block))
        renamed = rename_block(block, mapping)
        assert _key(DependenceDAG(block), machine) == _key(
            DependenceDAG(renamed), machine
        )

    @settings(max_examples=60, deadline=None)
    @given(blocks(max_size=8), machines(max_pipelines=3))
    def test_pipe_renaming(self, block, machine):
        dag = DependenceDAG(block)
        assert _key(dag, machine) == _key(dag, _renamed_machine(machine))

    def test_pipe_renaming_paper_machine(self, figure3_dag):
        machine = paper_simulation_machine()
        assert _key(figure3_dag, machine) == _key(
            figure3_dag, _renamed_machine(machine)
        )

    def test_commutative_operand_swap(self):
        from repro.ir.ops import Opcode
        from repro.ir.textual import parse_block

        a = parse_block("1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #c, 3")
        swapped = parse_block("1: Load #a\n2: Load #b\n3: Mul 2, 1\n4: Store #c, 3")
        assert a.tuples[2].op is Opcode.MUL
        machine = paper_simulation_machine()
        assert _key(DependenceDAG(a), machine) == _key(
            DependenceDAG(swapped), machine
        )

    def test_engine_is_excluded(self, figure3_dag):
        machine = paper_simulation_machine()
        assert _key(figure3_dag, machine, SearchOptions(engine="fast")) == _key(
            figure3_dag, machine, SearchOptions(engine="reference")
        )

    def test_vector_engine_shares_fast_keys(self, figure3_dag):
        # Regression for the canonical cache contract: a result computed
        # under "fast" must be a hit for a "vector" or "native" request
        # (and vice versa), so no engine may leak into the key.
        machine = paper_simulation_machine()
        keys = {
            _key(figure3_dag, machine, SearchOptions(engine=engine))
            for engine in ("fast", "vector", "native", "reference")
        }
        assert len(keys) == 1


class TestMutationSeparates:
    @settings(max_examples=40, deadline=None)
    @given(st.data(), blocks(max_size=8), machines(max_pipelines=3))
    def test_latency_mutation(self, data, block, machine):
        dag = DependenceDAG(block)
        victim = data.draw(st.sampled_from(sorted(p.ident for p in machine.pipelines)))
        pipes = [
            PipelineDesc(p.function, p.ident, p.latency + 1, p.enqueue_time)
            if p.ident == victim
            else p
            for p in machine.pipelines
        ]
        mutated = MachineDescription(machine.name, pipes, machine.op_map)
        assert _key(dag, machine) != _key(dag, mutated)

    @settings(max_examples=40, deadline=None)
    @given(st.data(), blocks(max_size=8), machines(max_pipelines=3))
    def test_enqueue_mutation(self, data, block, machine):
        from hypothesis import assume

        dag = DependenceDAG(block)
        widened = [p for p in machine.pipelines if p.latency >= 2]
        assume(widened)
        victim = data.draw(st.sampled_from(sorted(p.ident for p in widened)))
        pipes = []
        for p in machine.pipelines:
            if p.ident == victim:
                new_enq = p.enqueue_time % p.latency + 1  # different, still legal
                pipes.append(PipelineDesc(p.function, p.ident, p.latency, new_enq))
            else:
                pipes.append(p)
        mutated = MachineDescription(machine.name, pipes, machine.op_map)
        assert _key(dag, machine) != _key(dag, mutated)

    @settings(max_examples=40, deadline=None)
    @given(st.data(), blocks(min_size=2, max_size=8), machines(max_pipelines=3))
    def test_extra_dependence_edge(self, data, block, machine):
        from hypothesis import assume

        dag = DependenceDAG(block)
        idents = list(dag.idents)
        missing = [
            (idents[i], idents[j])
            for i in range(len(idents))
            for j in range(i + 1, len(idents))
            if idents[i] not in dag.rho(idents[j])
        ]
        assume(missing)
        producer, consumer = data.draw(st.sampled_from(missing))
        stricter = DependenceDAG(
            block, extra_edges=[DependenceEdge(producer, consumer, "flow")]
        )
        assert _key(dag, machine) != _key(stricter, machine)

    @pytest.mark.parametrize(
        "override",
        [
            {"curtail": 49_999},
            {"alpha_beta": False},
            {"dominance_prune": False},
            {"max_live": 3},
        ],
    )
    def test_option_mutation(self, figure3_dag, override):
        machine = paper_simulation_machine()
        mutated = dataclasses.replace(SearchOptions(), **override)
        assert _key(figure3_dag, machine) != _key(figure3_dag, machine, mutated)

    def test_unused_pipeline_still_counts(self, figure3_dag):
        # An unreferenced pipeline changes machine.max_latency, hence the
        # dominance window, hence (potentially) the prune counters: it
        # must separate keys even though no instruction maps to it.
        machine = paper_simulation_machine()
        extra = PipelineDesc("idle-unit", 99, machine.max_latency + 3, 1)
        widened = MachineDescription(
            machine.name, list(machine.pipelines) + [extra], machine.op_map
        )
        assert _key(figure3_dag, machine) != _key(figure3_dag, widened)
