"""Tests for the parallel population engine (process-pool fan-out).

The contract under test: ``run_population_parallel`` is a drop-in for
``run_population`` — same records, same order, byte-identical once the
wall-clock field is normalized — plus graceful degradation (per-block
timeouts fall back to the list-schedule seed, a broken pool falls back
to the serial runner).
"""

import json
from dataclasses import asdict, replace

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import default_workers, run_population_parallel
from repro.experiments.runner import run_population, schedule_generated_block
from repro.ir.textual import parse_block
from repro.machine.presets import paper_simulation_machine
from repro.sched.search import SearchOptions
from repro.synth.generator import GeneratedBlock
from repro.synth.population import sample_population_params
from repro.telemetry import Telemetry

N_BLOCKS = 100
CURTAIL = 20_000
SEED = 2024


def records_json(records):
    """Canonical JSON for a record list, wall-clock zeroed."""
    return json.dumps(
        [asdict(replace(r, elapsed_seconds=0.0)) for r in records],
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_records():
    """The serial reference run the parallel engine must reproduce."""
    return run_population(N_BLOCKS, curtail=CURTAIL, master_seed=SEED)


class TestEquivalence:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_identical_to_serial(self, serial_records, workers):
        par = run_population_parallel(
            N_BLOCKS, curtail=CURTAIL, master_seed=SEED, workers=workers
        )
        assert par == serial_records
        assert records_json(par) == records_json(serial_records)

    def test_workers_one_takes_serial_path(self, serial_records):
        assert (
            run_population_parallel(
                N_BLOCKS, curtail=CURTAIL, master_seed=SEED, workers=1
            )
            == serial_records
        )

    def test_records_arrive_in_index_order(self, serial_records):
        par = run_population_parallel(
            N_BLOCKS, curtail=CURTAIL, master_seed=SEED, workers=3
        )
        assert [r.index for r in par] == list(range(N_BLOCKS))

    def test_single_block_population(self):
        ser = run_population(1, curtail=CURTAIL, master_seed=SEED)
        par = run_population_parallel(
            1, curtail=CURTAIL, master_seed=SEED, workers=4
        )
        assert par == ser

    def test_telemetry_parity_with_serial(self, serial_records):
        t_ser, t_par = Telemetry(), Telemetry()
        run_population(
            N_BLOCKS, curtail=CURTAIL, master_seed=SEED, telemetry=t_ser
        )
        run_population_parallel(
            N_BLOCKS, curtail=CURTAIL, master_seed=SEED, workers=3,
            telemetry=t_par,
        )
        # Work-shape counters aggregate identically across the pool;
        # only the parallel.* bookkeeping and timers may differ.
        for name, value in t_ser.counters.items():
            if name.startswith(("prune.", "search.", "blocks.")):
                assert t_par.counters[name] == value, name


class TestTimeoutDegradation:
    def test_blocks_over_budget_degrade_to_seed(self):
        par = run_population_parallel(
            20,
            curtail=10**9,  # never curtailed: truncation is timeout-only
            master_seed=SEED,
            workers=2,
            block_timeout=1e-6,
        )
        degraded = [r for r in par if not r.completed]
        # A 1 microsecond budget expires before the first DFS expansion,
        # so every block the root bound cannot prove outright degrades.
        assert degraded
        for r in degraded:
            assert r.final_nops == r.seed_nops
        assert len(par) == 20

    def test_degradation_is_deterministic(self):
        kwargs = dict(
            curtail=10**9, master_seed=SEED, workers=2, block_timeout=1e-6
        )
        assert run_population_parallel(20, **kwargs) == run_population_parallel(
            20, **kwargs
        )

    def test_degraded_blocks_counted(self):
        telemetry = Telemetry()
        run_population_parallel(
            20,
            curtail=10**9,
            master_seed=SEED,
            workers=2,
            block_timeout=1e-6,
            telemetry=telemetry,
        )
        assert telemetry.counters["blocks.degraded"] > 0
        assert telemetry.counters["blocks.degraded"] == telemetry.counters[
            "search.timed_out"
        ]


class TestFallback:
    def test_broken_pool_falls_back_to_serial(
        self, serial_records, monkeypatch
    ):
        class ExplodingProcess:
            def __init__(self, *args, **kwargs):
                raise OSError("no process support in this sandbox")

        monkeypatch.setattr(parallel, "Process", ExplodingProcess)
        telemetry = Telemetry()
        par = run_population_parallel(
            N_BLOCKS, curtail=CURTAIL, master_seed=SEED, workers=4,
            telemetry=telemetry,
        )
        assert par == serial_records
        assert telemetry.counters["parallel.fallbacks"] == 1

    def test_default_workers_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert default_workers() == 7
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1


class TestChunking:
    def test_striping_covers_every_param_once(self):
        params = list(sample_population_params(50, master_seed=SEED))
        n_chunks = 12
        chunks = [params[i::n_chunks] for i in range(n_chunks)]
        flat = [p for chunk in chunks for p in chunk]
        assert sorted(p.index for p in flat) == list(range(50))


class TestEmptyBlocks:
    def test_empty_block_gets_zero_record(self):
        gb = GeneratedBlock(
            block=parse_block("", "empty"),
            program=None,
            statements=3,
            variables=2,
            constants=1,
            seed=0,
        )
        telemetry = Telemetry()
        record = schedule_generated_block(
            7, gb, paper_simulation_machine(), SearchOptions(), telemetry
        )
        assert record.index == 7
        assert record.size == 0
        assert record.completed
        assert record.final_nops == record.initial_nops == 0
        assert telemetry.counters["blocks.empty"] == 1

    def test_population_record_count_is_dense(self, serial_records):
        assert len(serial_records) == N_BLOCKS
        assert [r.index for r in serial_records] == list(range(N_BLOCKS))
