"""Documentation consistency guards.

Docs drift silently; these tests pin the load-bearing references —
module paths in DESIGN.md's inventory, experiment names in the CLI docs,
preset names in README — to the actual code.
"""

import importlib
import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignInventory:
    def test_every_inventoried_package_imports(self):
        text = read("DESIGN.md")
        modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
        assert len(modules) >= 15
        for module in sorted(modules):
            importlib.import_module(module)

    def test_experiment_index_matches_cli(self):
        from repro.experiments.cli import ALL_EXPERIMENTS

        text = read("DESIGN.md")
        # Every experiment module named in the index must exist.
        for name in re.findall(r"`experiments\.([a-z0-9_]+)`", text):
            importlib.import_module(f"repro.experiments.{name}")
        # Every paper artifact id appears in the index table.
        for artifact in ("T1", "T7", "F1", "F4", "F5", "F6", "F7"):
            assert f"| {artifact} " in text
        assert "ablation-a3" in ALL_EXPERIMENTS


class TestCliDocs:
    def test_file_formats_lists_real_experiments(self):
        from repro.experiments.cli import ALL_EXPERIMENTS

        text = read("docs/file-formats.md")
        for name in ("table1", "table7", "fig4", "kernels", "ablation-a3"):
            assert name in text
            assert name in ALL_EXPERIMENTS

    def test_file_formats_lists_real_show_choices(self):
        from repro.cli import SHOW_CHOICES

        text = read("docs/file-formats.md")
        for choice in SHOW_CHOICES:
            if choice != "all":
                assert choice in text

    def test_mnemonic_table_matches_parser(self):
        from repro.codegen.asmparser import MNEMONICS

        text = read("docs/file-formats.md")
        for mnemonic in MNEMONICS:
            assert mnemonic in text


class TestReadme:
    def test_mentions_real_presets(self):

        text = read("README.md")
        assert "paper_simulation_machine" in text

    def test_quickstart_snippet_runs(self):
        from repro import compile_source, paper_simulation_machine

        result = compile_source(
            "b = 15; a = b * a;", paper_simulation_machine(),
            verify_memory={"a": 3},
        )
        assert result.total_nops == 2  # the number README quotes
        assert result.search.completed

    def test_results_directory_references_exist(self):
        # README points at results/table1.txt; the bench suite creates it.
        text = read("README.md")
        assert "results/table1.txt" in text


class TestPaperMapping:
    def test_every_mapped_symbol_resolves(self):
        """Spot-check the paper-mapping doc's code references."""
        text = read("docs/paper-mapping.md")
        for dotted in (
            "repro.postpass",
            "repro.sched.heuristics.gross_schedule",
            "repro.sched.interblock",
            "repro.analysis.explain_schedule",
            "repro.machine.PipelineDesc",
        ):
            assert dotted in text
            module_path, _, attr = dotted.rpartition(".")
            try:
                module = importlib.import_module(dotted)
            except ModuleNotFoundError:
                module = importlib.import_module(module_path)
                assert hasattr(module, attr), dotted
