"""Unit and property tests for the reference interpreter."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.ir.block import BasicBlock
from repro.ir.dag import DependenceDAG
from repro.ir.interp import (
    UndefinedVariableError,
    blocks_equivalent,
    run_block,
)
from repro.ir.textual import parse_block
from repro.ir.tuples import const, div, store

from .strategies import blocks, memories


class TestBasics:
    def test_figure3_semantics(self, figure3_block):
        result = run_block(figure3_block, {"a": 3})
        assert result["b"] == 15
        assert result["a"] == 45
        assert result.value_of(4) == 45

    def test_undefined_variable(self):
        block = parse_block("1: Load #missing")
        with pytest.raises(UndefinedVariableError):
            run_block(block)

    def test_store_then_load_sees_new_value(self):
        block = parse_block(
            "1: Const 7\n2: Store #a, 1\n3: Load #a\n4: Store #b, 3"
        )
        result = run_block(block, {"a": 0})
        assert result["b"] == 7

    def test_division_is_exact(self):
        block = BasicBlock([const(1, 1), const(2, 3), div(3, 1, 2), store(4, "x", 3)])
        assert run_block(block)["x"] == Fraction(1, 3)

    def test_division_by_zero_raises(self):
        block = BasicBlock([const(1, 1), const(2, 0), div(3, 1, 2)])
        with pytest.raises(ZeroDivisionError):
            run_block(block)

    def test_initial_memory_is_not_mutated(self):
        block = parse_block("1: Const 9\n2: Store #a, 1")
        memory = {"a": 1}
        run_block(block, memory)
        assert memory == {"a": 1}

    def test_explicit_order(self, figure3_block):
        # Legal reorder: Load before Const.
        result = run_block(figure3_block, {"a": 3}, order=(3, 1, 4, 2, 5))
        assert result["a"] == 45 and result["b"] == 15

    def test_illegal_order_surfaces_as_keyerror(self, figure3_block):
        with pytest.raises(KeyError):
            run_block(figure3_block, {"a": 3}, order=(4, 1, 3, 2, 5))


class TestEquivalence:
    def test_equivalent_blocks(self):
        a = parse_block("1: Const 2\n2: Const 3\n3: Add 1, 2\n4: Store #x, 3")
        b = parse_block("1: Const 5\n2: Store #x, 1")
        assert blocks_equivalent(a, b, {})

    def test_inequivalent_blocks(self):
        a = parse_block("1: Const 5\n2: Store #x, 1")
        b = parse_block("1: Const 6\n2: Store #x, 1")
        assert not blocks_equivalent(a, b, {})

    def test_fraction_int_normalization(self):
        a = parse_block("1: Const 4\n2: Const 2\n3: Div 1, 2\n4: Store #x, 3")
        b = parse_block("1: Const 2\n2: Store #x, 1")
        assert blocks_equivalent(a, b, {})


@given(blocks(max_size=10), memories())
@settings(max_examples=80)
def test_any_legal_reorder_preserves_memory(block, memory):
    """The foundational scheduling-correctness property: executing a block
    in any dependence-legal order leaves identical memory."""
    dag = DependenceDAG(block)
    baseline = run_block(block, memory).memory
    for order in _some_orders(dag, 10):
        assert run_block(block, memory, order=order).memory == baseline


def _some_orders(dag, k):
    import itertools

    return itertools.islice(dag.iter_legal_orders(), k)
