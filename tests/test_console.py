"""The unified ``repro`` entry point and the legacy deprecation shims."""

from __future__ import annotations

import pytest

from repro import console

ALL_SUBCOMMANDS = ("compile", "experiments", "verify", "bench", "serve")


class TestDispatch:
    @pytest.mark.parametrize("sub", ALL_SUBCOMMANDS)
    def test_every_subcommand_has_help(self, sub, capsys):
        with pytest.raises(SystemExit) as exc:
            console.main([sub, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        # Help must advertise the *unified* prog, not the legacy script.
        assert f"repro {sub}" in out

    def test_no_arguments_prints_usage(self, capsys):
        assert console.main([]) == 0
        out = capsys.readouterr().out
        for sub in ALL_SUBCOMMANDS:
            assert sub in out

    def test_help_flag(self, capsys):
        assert console.main(["--help"]) == 0
        assert "subcommands" in capsys.readouterr().out

    def test_version(self, capsys):
        import repro

        assert console.main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        assert console.main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand" in err and "frobnicate" in err

    def test_registry_matches_dispatch_table(self):
        assert tuple(console.SUBCOMMANDS) == ALL_SUBCOMMANDS

    def test_compile_end_to_end(self, capsys):
        rc = console.main(
            ["compile", "-e", "b = 15; a = b * a;", "--show", "stats"]
        )
        assert rc == 0
        assert "omega calls" in capsys.readouterr().out


class TestShims:
    def test_compile_shim_warns_and_delegates(self, capsys):
        rc = console.compile_shim(["-e", "b = 15; a = b * a;", "--show", "stats"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "repro compile" in captured.err  # points at the replacement
        assert "omega calls" in captured.out

    def test_shim_keeps_legacy_prog_in_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            console.verify_shim(["--help"])
        assert exc.value.code == 0
        assert "repro-verify" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "shim", ["compile_shim", "experiments_shim", "verify_shim", "bench_shim"]
    )
    def test_every_legacy_script_has_a_shim(self, shim, capsys):
        with pytest.raises(SystemExit) as exc:
            getattr(console, shim)(["--help"])
        assert exc.value.code == 0
        assert "deprecated" in capsys.readouterr().err

    def test_experiments_shim_end_to_end(self, capsys):
        rc = console.experiments_shim(["table1"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "Table 1" in captured.out
