"""Tests for the search-telemetry registry and its ``--stats-json`` wiring.

The prune-counter tests are hand-checked: each case is small enough that
the expected counts follow from the search algorithm by inspection (the
derivations are in the comments), so a regression here means the
counters drifted from what the search actually does.
"""

import json

import pytest

from repro.cli import main as compile_main
from repro.experiments.cli import main as experiments_main
from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.sched.multi import schedule_block_multi
from repro.sched.search import SearchOptions, schedule_block
from repro.sched.splitting import schedule_block_split
from repro.telemetry import PRUNE_KINDS, SCHEMA, Telemetry, prune_counts

#: Disable every optional prune except alpha-beta + equivalence, and fix
#: candidate order, so the hand-derivations below are exact.
BARE = SearchOptions(
    heuristic_seeds=False,
    lower_bound_prune=False,
    dominance_prune=False,
    cheapest_first=False,
)


class TestPruneCounts:
    def test_fully_populated(self):
        counts = prune_counts(bounds=3)
        assert set(counts) == set(PRUNE_KINDS)
        assert counts["bounds"] == 3
        assert counts["legality"] == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            prune_counts(psychic=1)


class TestRegistry:
    def test_count_and_merge(self):
        a, b = Telemetry(), Telemetry()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        a.merge(b)
        assert a.counters == {"x": 5, "y": 1}

    def test_merge_accepts_payload_dict(self):
        a = Telemetry()
        a.count("x")
        a.add_time("t", 0.5)
        b = Telemetry()
        b.merge(a.as_dict())
        assert b.counters == {"x": 1}
        assert b.timers == {"t": 0.5}

    def test_phase_timer_is_additive(self):
        t = Telemetry()
        with t.phase("p"):
            pass
        with t.phase("p"):
            pass
        assert set(t.timers) == {"phase.p"}
        assert t.timers["phase.p"] >= 0.0

    def test_json_round_trip(self):
        t = Telemetry()
        t.count("prune.bounds", 4)
        t.add_time("phase.population", 1.25)
        payload = json.loads(t.dumps(meta={"workers": 2}))
        assert payload["schema"] == SCHEMA
        assert payload["meta"] == {"workers": 2}
        back = Telemetry.from_dict(payload)
        assert back.as_dict() == t.as_dict()

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            Telemetry.from_dict({"schema": "repro-telemetry/999"})

    def test_record_search_zero_fills_prune_keys(self):
        class FakeResult:
            omega_calls = 5
            completed = True
            elapsed_seconds = 0.1
            prune_counts = {"bounds": 2}

        t = Telemetry()
        t.record_search(FakeResult())
        for kind in PRUNE_KINDS:
            assert f"prune.{kind}" in t.counters
        assert t.counters["prune.bounds"] == 2
        assert t.counters["search.runs"] == 1
        assert t.counters["search.omega_calls"] == 5


class TestHandCheckedCounters:
    """Exact prune totals on blocks small enough to derive by hand."""

    def setup_method(self):
        from repro.machine.presets import paper_simulation_machine

        self.machine = paper_simulation_machine()

    def test_independent_constants(self):
        # k independent Const tuples, all interchangeable (no pipeline,
        # no predecessors, identical — empty — successor sets):
        #   * pricing the list-schedule seed costs k omega calls; the
        #     seed is already NOP-free, so best = 0.
        #   * at the root, step [5c] filters k-1 of the k equivalent
        #     candidates (equivalence = k-1) and one Const is pushed
        #     (omega call k+1).
        #   * the 1-tuple prefix already has mu = 0 >= best, so step [6]
        #     cuts it off (alpha_beta = 1) and the search is done.
        k = 5
        text = "\n".join(f"{i + 1}: Const {i + 1}" for i in range(k))
        dag = DependenceDAG(parse_block(text, "consts"))
        result = schedule_block(dag, self.machine, BARE)
        assert result.completed
        assert result.omega_calls == k + 1
        assert result.prune_counts == prune_counts(
            equivalence=k - 1, alpha_beta=1
        )

    def test_serial_chain(self):
        # A 3-tuple dependence chain has exactly one legal order:
        #   * seed pricing costs 3 omega calls (best = 0 NOPs: loads
        #     retire before their consumers need them here).
        #   * at the root, 2 of the 3 tuples are not yet ready
        #     (rho not contained in Phi), so legality = 2; the head is
        #     pushed (omega call 4).
        #   * the prefix's mu = 0 >= best means step [6] stops the
        #     search (alpha_beta = 1).
        text = "1: Const 5\n2: Add 1, 1\n3: Add 2, 2"
        dag = DependenceDAG(parse_block(text, "chain"))
        result = schedule_block(dag, self.machine, BARE)
        assert result.completed
        assert result.omega_calls == 4
        assert result.prune_counts == prune_counts(legality=2, alpha_beta=1)

    def test_curtail_truncation_counted_once(self, figure3_dag):
        result = schedule_block(
            figure3_dag, self.machine, SearchOptions(curtail=5)
        )
        assert not result.completed
        assert result.prune_counts["curtail"] == 1

    def test_timeout_truncation(self, figure3_dag):
        result = schedule_block(
            figure3_dag, self.machine, SearchOptions(time_limit=1e-9)
        )
        assert result.timed_out
        assert not result.completed
        assert result.prune_counts["timeout"] == 1

    def test_registry_accumulates_across_searches(self, figure3_dag):
        telemetry = Telemetry()
        schedule_block(figure3_dag, self.machine, telemetry=telemetry)
        schedule_block(figure3_dag, self.machine, telemetry=telemetry)
        assert telemetry.counters["search.runs"] == 2
        assert telemetry.counters["search.completed"] == 2
        single = schedule_block(figure3_dag, self.machine)
        assert (
            telemetry.counters["search.omega_calls"] == 2 * single.omega_calls
        )


class TestOtherSchedulers:
    def test_multi_pipeline_search_reports(self, figure3_dag, example_machine):
        telemetry = Telemetry()
        result = schedule_block_multi(
            figure3_dag, example_machine, telemetry=telemetry
        )
        assert telemetry.counters["search.runs"] == 1
        assert telemetry.counters["search.omega_calls"] == result.omega_calls
        assert set(result.prune_counts) == set(PRUNE_KINDS)

    def test_split_search_reports(self, figure3_dag, sim_machine):
        telemetry = Telemetry()
        result = schedule_block_split(
            figure3_dag, sim_machine, window=4, telemetry=telemetry
        )
        assert telemetry.counters["search.runs"] == 1
        assert set(result.prune_counts) == set(PRUNE_KINDS)


class TestStatsJson:
    def test_compile_cli_writes_stats(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        rc = compile_main(
            ["-e", "b = 15; a = b * a;", "--stats-json", str(path)]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        for kind in PRUNE_KINDS:
            assert f"prune.{kind}" in payload["counters"]
        assert payload["meta"]["machine"] == "paper-simulation"

    def test_experiments_cli_aggregates_across_workers(
        self, tmp_path, capsys
    ):
        path = tmp_path / "stats.json"
        rc = experiments_main(
            [
                "table7",
                "--blocks",
                "12",
                "--workers",
                "2",
                "--stats-json",
                str(path),
            ]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        counters = payload["counters"]
        # The five prune classes of the ISSUE contract, present even
        # when zero, aggregated over every worker process.
        for kind in ("legality", "bounds", "equivalence", "alpha_beta", "curtail"):
            assert f"prune.{kind}" in counters
        assert counters["search.runs"] == counters["blocks.scheduled"] == 12
        assert payload["meta"]["workers"] == 2
        assert "phase.population" in payload["timers"]
