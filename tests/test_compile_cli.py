"""Tests for the repro-compile command-line compiler."""

import pytest

from repro.cli import _parse_memory, main


class TestArguments:
    def test_requires_source(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_both_file_and_expr(self, capsys, tmp_path):
        src = tmp_path / "p.src"
        src.write_text("a = 1;")
        with pytest.raises(SystemExit):
            main([str(src), "-e", "a = 2;"])

    def test_list_machines(self, capsys):
        assert main(["--list-machines"]) == 0
        out = capsys.readouterr().out
        assert "paper-simulation" in out and "paper-example" in out

    def test_memory_parsing(self):
        assert _parse_memory("a=3, b=15") == {"a": 3, "b": 15}
        with pytest.raises(Exception):
            _parse_memory("a")
        with pytest.raises(Exception):
            _parse_memory("a=x")

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/path.src"]) == 2
        assert "repro-compile:" in capsys.readouterr().err

    def test_unknown_machine(self, capsys):
        assert main(["-e", "a = 1;", "--machine", "pdp-11"]) == 2


class TestCompilation:
    def test_expression_to_stdout(self, capsys):
        assert main(["-e", "b = 15; a = b * a;"]) == 0
        out = capsys.readouterr().out
        assert "MUL" in out and "NOP" in out

    def test_show_all(self, capsys):
        assert main(["-e", "b = 15; a = b * a;", "--show", "all"]) == 0
        out = capsys.readouterr().out
        assert "tuple code" in out
        assert "DAG" in out
        assert "schedule (ident@cycle)" in out
        assert "provably optimal" in out

    def test_verify_success(self, capsys):
        rc = main(
            ["-e", "b = 15; a = b * a;", "--verify", "a=3", "--show", "stats"]
        )
        assert rc == 0
        assert "verification" in capsys.readouterr().out

    def test_verify_failure_on_bad_memory(self, capsys):
        # Missing initial value for 'a': the source interpreter faults,
        # which must surface as exit code 1, not a traceback.
        rc = main(["-e", "b = a * 2;", "--verify", "c=1"])
        assert rc == 1
        assert "repro-compile:" in capsys.readouterr().err

    def test_file_and_output(self, tmp_path, capsys):
        src = tmp_path / "p.src"
        src.write_text("x = a + b;")
        out_path = tmp_path / "p.s"
        assert main([str(src), "-o", str(out_path)]) == 0
        assert "LD" in out_path.read_text()

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("x = 1 + 2;"))
        assert main(["-"]) == 0
        assert "LI" in capsys.readouterr().out

    def test_machine_file(self, tmp_path, capsys):
        machine_file = tmp_path / "m.txt"
        machine_file.write_text(
            "machine custom\npipeline loader 1 3 1\nop Load 1\n"
        )
        rc = main(
            ["-e", "x = a; y = x + b;", "--machine", f"@{machine_file}",
             "--show", "stats"]
        )
        assert rc == 0
        assert "NOPs" in capsys.readouterr().out

    @pytest.mark.parametrize("scheduler", ["optimal", "gross", "greedy", "list", "none"])
    def test_every_scheduler(self, scheduler, capsys):
        assert main(["-e", "a = b * c;", "--scheduler", scheduler]) == 0

    @pytest.mark.parametrize(
        "discipline", ["nop-padded", "explicit-interlock", "implicit-interlock"]
    )
    def test_every_discipline(self, discipline, capsys):
        assert main(["-e", "a = b * c;", "--discipline", discipline]) == 0
        out = capsys.readouterr().out
        if discipline == "explicit-interlock":
            assert "[wait=" in out

    def test_register_budget(self, capsys):
        rc = main(
            ["-e", "s = a + b; t = c + d; u = s + t; v = u + a;",
             "--registers", "4", "--show", "stats", "--verify",
             "a=1,b=2,c=3,d=4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "registers used" in out

    def test_no_optimize(self, capsys):
        assert main(["-e", "x = 2 + 3;", "--no-optimize", "--show", "tuples"]) == 0
        out = capsys.readouterr().out
        assert "Add" in out  # folding skipped

    def test_show_timeline_and_explain(self, capsys):
        rc = main(
            ["-e", "b = 15; a = b * a;", "--show", "timeline", "--show", "explain"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "loader" in out and "multiplier" in out
        assert "dependence: waits for tuple" in out

    def test_explain_no_stalls(self, capsys):
        rc = main(["-e", "a = b; c = d;", "--show", "explain"])
        assert rc == 0
        assert "no stalls anywhere" in capsys.readouterr().out


class TestTuplesMode:
    def test_tuple_input(self, tmp_path, capsys):
        src = tmp_path / "block.tup"
        src.write_text("1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #c, 3\n")
        rc = main([str(src), "--tuples", "--show", "stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "provably optimal" in out

    def test_tuples_never_optimized(self, capsys):
        # x = 2 + 3 as raw tuples must keep its Add (no folding).
        rc = main(
            ["-e", "1: Const 2\n2: Const 3\n3: Add 1, 2\n4: Store #x, 3",
             "--tuples", "--show", "tuples"]
        )
        assert rc == 0
        assert "Add" in capsys.readouterr().out

    def test_tuples_verify_runs_certificate_only(self, capsys):
        # Tuple input has no source semantics to simulate; --verify
        # degrades to the independent certificate check.
        rc = main(
            ["-e", "1: Load #a\n2: Neg 1\n3: Store #b, 2", "--tuples",
             "--verify", "a=1", "--show", "stats"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "certificate re-derived" in out
        assert "source semantics" not in out

    def test_bad_tuple_syntax_is_reported(self, capsys):
        rc = main(["-e", "1: Jump 2", "--tuples"])
        assert rc == 1
        assert "repro-compile:" in capsys.readouterr().err


class TestCompileBlockApi:
    def test_every_scheduler(self, capsys):
        from repro.driver import compile_block
        from repro.ir.textual import parse_block
        from repro.machine.presets import paper_simulation_machine

        block = parse_block("1: Load #a\n2: Mul 1, 1\n3: Store #b, 2")
        machine = paper_simulation_machine()
        spans = {}
        for scheduler in ("optimal", "gross", "greedy", "list", "none"):
            result = compile_block(block, machine, scheduler=scheduler)
            spans[scheduler] = result.issue_span_cycles
        assert spans["optimal"] <= min(spans.values())

    def test_register_budget(self):
        from repro.driver import compile_block
        from repro.frontend.lowering import lower_source
        from repro.machine.presets import paper_simulation_machine

        block = lower_source(
            "s = a + b; t = c + d; u = s + t; v = u + a;"
        )
        result = compile_block(
            block, paper_simulation_machine(), num_registers=4
        )
        assert result.allocation.num_registers_used <= 4

    def test_unknown_scheduler(self):
        from repro.driver import compile_block
        from repro.ir.textual import parse_block
        from repro.machine.presets import paper_simulation_machine

        with pytest.raises(ValueError, match="unknown scheduler"):
            compile_block(
                parse_block("1: Load #a"),
                paper_simulation_machine(),
                scheduler="magic",
            )
