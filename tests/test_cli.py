"""Tests for the repro-experiments command-line interface."""


import pytest

from repro.experiments.cli import ALL_EXPERIMENTS, main


class TestArguments:
    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "repro-experiments" in capsys.readouterr().out

    def test_experiment_registry(self):
        assert "table1" in ALL_EXPERIMENTS
        assert "table7" in ALL_EXPERIMENTS
        for fig in ("fig1", "fig4", "fig5", "fig6", "fig7"):
            assert fig in ALL_EXPERIMENTS


class TestExecution:
    def test_population_experiments_share_one_run(self, capsys):
        rc = main(["table7", "fig5", "--blocks", "25", "--curtail", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("[population] scheduling") == 1
        assert "Table 7" in out and "Figure 5" in out

    def test_csv_output(self, tmp_path, capsys):
        rc = main(
            ["fig5", "--blocks", "20", "--csv", str(tmp_path), "--seed", "3"]
        )
        assert rc == 0
        csv_path = tmp_path / "fig5.csv"
        assert csv_path.exists()
        assert "bucket_start" in csv_path.read_text()

    def test_non_population_experiment_skips_population(self, capsys):
        rc = main(["table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[population]" not in out
        assert "Table 1" in out
