"""repro.api is the compatibility contract — snapshot it.

A name leaving this list (or silently failing to import) is an API
break; additions are fine but must be made here deliberately, in the
same change that exports them.
"""

from __future__ import annotations

import pytest

import repro.api as api

EXPECTED_SURFACE = sorted(
    [
        # compiling
        "CompilationResult",
        "LoopCompilation",
        "ProgramCompilation",
        "VerificationError",
        "compile_block",
        "compile_loop",
        "compile_program",
        "compile_source",
        "verify_compilation",
        "verify_program",
        # IR
        "BasicBlock",
        "DependenceDAG",
        "IRTuple",
        "LoopBlock",
        "Opcode",
        "format_block",
        "lower_loop",
        "parse_block",
        "run_block",
        # machines
        "MachineDescription",
        "PipelineDesc",
        "PRESETS",
        "get_machine",
        "paper_example_machine",
        "paper_simulation_machine",
        "load_machine",
        "save_machine",
        "machine_from_dict",
        "machine_to_dict",
        # scheduling
        "IlpOptions",
        "IlpSearchResult",
        "InitialConditions",
        "ModuloScheduleResult",
        "ScheduleOutcome",
        "ScheduleRequest",
        "SearchOptions",
        "SearchResult",
        "compute_timing",
        "list_schedule",
        "min_initiation_interval",
        "schedule_block",
        "schedule_block_ilp",
        "schedule_loop",
        # verification
        "check_schedule",
        "check_steady_state",
        # service
        "CacheIntegrityError",
        "CanonicalForm",
        "ScheduleCache",
        "SchedulingService",
        "ServiceClient",
        "ServiceClientError",
        "ServiceError",
        "create_server",
        "fingerprint_problem",
        # telemetry
        "Telemetry",
        "__version__",
    ]
)


def test_surface_snapshot():
    assert sorted(api.__all__) == EXPECTED_SURFACE


def test_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


@pytest.mark.parametrize("name", EXPECTED_SURFACE)
def test_every_name_resolves(name):
    assert getattr(api, name) is not None


def test_facade_agrees_with_submodules():
    # Spot-check that the facade re-exports the real objects, not copies.
    from repro.sched.pipelining import ModuloScheduleResult, schedule_loop
    from repro.sched.search import ScheduleRequest, schedule_block
    from repro.service.cache import ScheduleCache

    assert api.schedule_block is schedule_block
    assert api.ScheduleCache is ScheduleCache
    assert api.schedule_loop is schedule_loop
    assert api.ScheduleRequest is ScheduleRequest
    assert api.ModuloScheduleResult is ModuloScheduleResult


def test_star_import_is_bounded():
    namespace: dict = {}
    exec("from repro.api import *", namespace)
    public = {k for k in namespace if not k.startswith("_")}
    assert public == set(EXPECTED_SURFACE) - {"__version__"}
