"""Tests for the Gross-style and plain-greedy heuristic baselines."""

from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.machine.presets import paper_simulation_machine
from repro.sched.heuristics import greedy_schedule, gross_schedule
from repro.sched.list_scheduler import program_order
from repro.sched.nop_insertion import compute_timing
from repro.synth.population import sample_population

from .strategies import blocks, machines


class TestBasics:
    def test_schedules_are_legal(self, figure3_dag, sim_machine):
        for scheduler in (gross_schedule, greedy_schedule):
            timing = scheduler(figure3_dag, sim_machine)
            assert figure3_dag.is_legal_order(timing.order)

    def test_gross_lands_between_optimum_and_naive(self, figure3_dag, sim_machine):
        # Figure 3: optimum is 2 NOPs, program order costs 4.  One-step
        # greed cannot see that the Load must go first (both roots look
        # free at t=0), which is exactly why the paper searches.
        nops = gross_schedule(figure3_dag, sim_machine).total_nops
        assert 2 <= nops < 4

    def test_single_instruction_block(self, sim_machine):
        dag = DependenceDAG(parse_block("1: Load #a"))
        assert gross_schedule(dag, sim_machine).etas == (0,)

    def test_deterministic(self, figure3_dag, sim_machine):
        a = gross_schedule(figure3_dag, sim_machine)
        b = gross_schedule(figure3_dag, sim_machine)
        assert a.order == b.order


class TestQuality:
    def test_heuristics_beat_program_order_on_average(self):
        machine = paper_simulation_machine()
        naive = gross = greedy = 0
        for gb in sample_population(100, master_seed=11):
            if len(gb.block) < 2:
                continue
            dag = DependenceDAG(gb.block)
            naive += compute_timing(dag, program_order(dag), machine).total_nops
            gross += gross_schedule(dag, machine).total_nops
            greedy += greedy_schedule(dag, machine).total_nops
        assert gross < naive
        assert greedy < naive
        # Height tie-breaking (Gross) should not lose to blind greed.
        assert gross <= greedy


@given(blocks(max_size=12), machines())
@settings(max_examples=80, deadline=None)
def test_heuristic_timings_are_self_consistent(block, machine):
    """The timing a heuristic returns equals Ω re-run over its order."""
    dag = DependenceDAG(block)
    for scheduler in (gross_schedule, greedy_schedule):
        timing = scheduler(dag, machine)
        assert dag.is_legal_order(timing.order)
        recomputed = compute_timing(dag, timing.order, machine)
        assert recomputed.etas == timing.etas
