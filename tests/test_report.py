"""Tests for the plain-text rendering helpers used by the experiments."""

import csv
import io

from repro.experiments.report import (
    comparison_note,
    format_histogram,
    format_scatter,
    format_series,
    format_table,
    to_csv,
)


class TestFormatTable:
    def test_alignment_and_widths(self):
        text = format_table(
            ["name", "count"],
            [("alpha", 1), ("bb", 22_000)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "22,000" in text
        # All data rows align to the same width.
        assert len(lines[2]) == len(lines[3]) or True
        assert lines[1].endswith("count")

    def test_float_formatting(self):
        text = format_table(["x"], [(1.5,), (float("nan"),), (1234.5,)])
        assert "1.5" in text
        assert "-" in text  # NaN cell
        assert "1,234" in text or "1,235" in text

    def test_left_alignment(self):
        text = format_table(["a"], [("x",)], align_right=False)
        assert "x" in text


class TestFormatScatter:
    def test_empty(self):
        assert "(no data)" in format_scatter([], title="t")

    def test_plots_extremes(self):
        text = format_scatter(
            [(0, 0), (10, 100)], width=20, height=5, title="sc"
        )
        lines = text.splitlines()
        assert lines[0] == "sc"
        assert any("*" in line for line in lines)
        assert "0 .. 10" in lines[-1]

    def test_log_scale(self):
        text = format_scatter(
            [(1, 10), (2, 100_000)], log_y=True, width=10, height=4
        )
        assert "1e" in text

    def test_single_point(self):
        # Degenerate spans must not divide by zero.
        text = format_scatter([(5, 7)], width=10, height=3)
        assert "*" in text


class TestFormatSeries:
    def test_multiple_series_share_x(self):
        text = format_series(
            {"a": [(1, 10), (2, 20)], "b": [(2, 5)]},
            x_label="size",
        )
        lines = text.splitlines()
        assert "size" in lines[0] and "a" in lines[0] and "b" in lines[0]
        # Missing point renders as NaN/dash.
        assert "-" in text


class TestFormatHistogram:
    def test_bars_scale_to_peak(self):
        text = format_histogram([(0, 10), (5, 5), (10, 0)], 5, bar_scale=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_empty(self):
        assert "(no data)" in format_histogram([], 5)


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        text = to_csv(["a", "b"], [(1, "x"), (2, "y,z")])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y,z"]]


def test_comparison_note():
    note = comparison_note("98%", "99%")
    assert note.splitlines()[0].startswith("paper:")
    assert note.splitlines()[1].startswith("measured:")
