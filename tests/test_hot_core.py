"""The flattened hot core (`repro.sched.core`) against the reference engine.

The fast engine's contract is *bit-for-bit* equality with the recursive
reference — every ``SearchResult`` field except wall time.  These tests
pin that contract:

* differential fuzzing (hypothesis blocks x random + adversarial
  machines), with every fast-engine schedule re-derived through the
  independent certificate checker;
* the degradation paths: dominance-memo eviction under a tiny
  ``max_memo_entries``, curtail, and wall-clock deadlines (including the
  ``BlockRecord.degraded`` path the experiments publish);
* the engine switch itself (options validation, per-call override, the
  split scheduler's engine parameter).
"""

import pytest
from hypothesis import given, settings

from repro.experiments.runner import schedule_generated_block
from repro.ir.dag import DependenceDAG
from repro.machine.presets import get_machine
from repro.sched.multi import first_pipeline_assignment
from repro.sched.search import SearchOptions, schedule_block
from repro.sched.splitting import schedule_block_split
from repro.synth.population import PopulationSpec, sample_population
from repro.telemetry import Telemetry
from repro.verify.certificate import check_schedule

from .strategies import any_machines, blocks


def _assignment_for(dag, machine):
    """Pin pipelines iff the machine is non-deterministic (matching how
    the experiments drive ``schedule_block``)."""
    if machine.is_deterministic:
        return None
    return first_pipeline_assignment(dag, machine)


def _fields(result):
    """Everything a ``SearchResult`` carries except wall time."""
    return (
        result.best,
        result.initial,
        result.omega_calls,
        result.completed,
        result.improvements,
        result.proved_by_bound,
        result.timed_out,
        result.memo_evicted,
        dict(result.prune_counts),
    )


def _run_both(dag, machine, options, assignment=None):
    fast = schedule_block(
        dag, machine, options, assignment=assignment, engine="fast"
    )
    ref = schedule_block(
        dag, machine, options, assignment=assignment, engine="reference"
    )
    assert _fields(fast) == _fields(ref)
    return fast


# ----------------------------------------------------------------------
# Differential fuzzing
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(block=blocks(max_size=9), machine=any_machines())
def test_fast_engine_matches_reference(block, machine):
    """Random blocks x (random + adversarial) machines: identical results
    and a valid certificate for the fast engine's schedule."""
    dag = DependenceDAG(block)
    assignment = _assignment_for(dag, machine)
    fast = _run_both(dag, machine, SearchOptions(), assignment=assignment)
    cert = check_schedule(
        block,
        machine,
        fast.best.order,
        fast.best.etas,
        assignment=assignment,
    )
    assert cert.ok, cert.summary()


@settings(max_examples=60, deadline=None)
@given(block=blocks(max_size=8), machine=any_machines())
def test_fast_engine_matches_reference_paper_prunes(block, machine):
    """The published prune set (no dominance/lower-bound prunes, no
    heuristic seeding) exercises different engine paths — same contract."""
    dag = DependenceDAG(block)
    _run_both(
        dag,
        machine,
        SearchOptions.paper(),
        assignment=_assignment_for(dag, machine),
    )


def _population(n_blocks, seed=7):
    machine = get_machine("paper-simulation")
    spec = PopulationSpec(statement_shape=2.0, statement_scale=2.0, max_statements=10)
    generated = sample_population(n_blocks, master_seed=seed, spec=spec)
    return machine, [gb for gb in generated if len(gb.block) > 1]


def test_split_engines_match():
    """Window-by-window scheduling: both engines agree on every field."""
    machine, members = _population(30)
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block_split(dag, machine, window=5, engine="fast")
        ref = schedule_block_split(dag, machine, window=5, engine="reference")
        assert fast.timing == ref.timing
        assert fast.omega_calls == ref.omega_calls
        assert fast.windows == ref.windows
        assert fast.all_windows_completed == ref.all_windows_completed


# ----------------------------------------------------------------------
# Memo eviction
# ----------------------------------------------------------------------
def test_memo_eviction_degrades_gracefully():
    """Overflowing ``max_memo_entries`` must cost only speed: both engines
    keep returning optimal schedules, evict identically, and report the
    evictions through ``search.memo_evicted``."""
    machine, members = _population(60, seed=11)
    options = SearchOptions(max_memo_entries=4)
    baseline = SearchOptions()
    telemetry = Telemetry()
    evicted_anywhere = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(
            dag, machine, options, telemetry=telemetry, engine="fast"
        )
        ref = schedule_block(dag, machine, options, engine="reference")
        assert _fields(fast) == _fields(ref)
        evicted_anywhere = evicted_anywhere or fast.memo_evicted > 0
        # A starved memo may only cost omega calls, never quality.
        full = schedule_block(dag, machine, baseline, engine="fast")
        assert fast.completed and full.completed
        assert fast.final_nops == full.final_nops
        assert fast.omega_calls >= full.omega_calls
    assert evicted_anywhere, "population never overflowed a 4-entry memo"
    assert telemetry.counters["search.memo_evicted"] > 0


def test_memo_disabled_entirely():
    """``max_memo_entries=0`` disables the memo without disabling the
    dominance prune logic's correctness."""
    machine, members = _population(20, seed=13)
    options = SearchOptions(max_memo_entries=0)
    for gb in members[:8]:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        assert fast.completed


# ----------------------------------------------------------------------
# Curtail and wall-clock deadlines
# ----------------------------------------------------------------------
def test_curtail_honored_by_fast_engine():
    """A tiny omega budget truncates both engines at the same call."""
    machine, members = _population(40, seed=3)
    options = SearchOptions(curtail=1)
    saw_truncation = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        assert fast.omega_calls <= len(dag) * 3 + 1
        saw_truncation = saw_truncation or not fast.completed
    assert saw_truncation, "curtail=1 never truncated a search"


def test_time_limit_honored_by_fast_engine():
    """A vanishing deadline stops the fast engine immediately and
    marks the result ``timed_out`` (never ``completed``)."""
    machine, members = _population(40, seed=5)
    options = SearchOptions(time_limit=1e-9)
    saw_timeout = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        if fast.timed_out:
            saw_timeout = True
            assert not fast.completed
    assert saw_timeout, "a 1ns time limit never expired a search"


def test_block_timeout_degrades_block_record():
    """Deadline-degraded blocks keep ``degraded=True, completed=False``
    through ``BlockRecord``, and publish the list-schedule seed."""
    machine, members = _population(40, seed=9)
    telemetry = Telemetry()
    degraded = []
    for index, gb in enumerate(members):
        record = schedule_generated_block(
            index,
            gb,
            machine,
            SearchOptions(engine="fast"),
            telemetry=telemetry,
            block_timeout=1e-9,
        )
        if record.degraded:
            degraded.append(record)
    assert degraded, "a 1ns block timeout never degraded a block"
    for record in degraded:
        assert not record.completed
        assert record.final_nops == record.seed_nops
    assert telemetry.counters["blocks.degraded"] == len(degraded)


# ----------------------------------------------------------------------
# The engine switch itself
# ----------------------------------------------------------------------
def test_engine_option_validation():
    with pytest.raises(ValueError, match="unknown search engine"):
        SearchOptions(engine="turbo")
    machine, members = _population(3, seed=1)
    dag = DependenceDAG(members[0].block)
    with pytest.raises(ValueError, match="unknown search engine"):
        schedule_block(dag, machine, SearchOptions(), engine="turbo")
    with pytest.raises(ValueError, match="unknown search engine"):
        schedule_block_split(dag, machine, engine="turbo")


def test_engine_override_beats_options():
    """The per-call ``engine=`` argument overrides ``options.engine``."""
    machine, members = _population(5, seed=2)
    dag = DependenceDAG(members[0].block)
    options = SearchOptions(engine="reference")
    fast = schedule_block(dag, machine, options, engine="fast")
    ref = schedule_block(dag, machine, options)
    assert _fields(fast) == _fields(ref)
