"""The flattened hot core (`repro.sched.core`) against the reference engine.

The fast, vector and native engines' contract is *bit-for-bit* equality
with the recursive reference — every ``SearchResult`` field except wall
time.  These tests pin that contract:

* differential fuzzing (hypothesis blocks x random + adversarial
  machines) over every engine pair, with each engine's schedule
  re-derived through the independent certificate checker;
* the degradation paths: dominance-memo eviction under a tiny
  ``max_memo_entries``, curtail, and wall-clock deadlines (including the
  ``BlockRecord.degraded`` path the experiments publish) — under all
  four engines;
* the vector engine's NumPy batch path (wide ready frontiers), its
  carry-in (non-packable memo key) path, and its graceful fallback to
  the fast engine when NumPy is missing;
* the engine switch itself (options validation, per-call override, the
  split scheduler's engine parameter).
"""

import pytest
from hypothesis import given, settings

import repro.sched.core as core
from repro.experiments.runner import schedule_generated_block
from repro.ir.block import BlockBuilder
from repro.ir.dag import DependenceDAG
from repro.machine.presets import get_machine
from repro.sched.multi import first_pipeline_assignment
from repro.sched.nop_insertion import InitialConditions
from repro.sched.search import SearchOptions, schedule_block
from repro.sched.splitting import schedule_block_split
from repro.synth.population import PopulationSpec, sample_population
from repro.telemetry import Telemetry
from repro.verify.certificate import check_schedule

from .strategies import any_machines, blocks

#: The full engine lattice: every member must agree with every other in
#: all ``SearchResult`` fields except ``elapsed_seconds``.  "vector" is
#: exercised even without NumPy installed, and "native" even without a C
#: compiler — each then runs its documented fallback to "fast", which
#: must preserve the same contract.
ENGINES = ("fast", "vector", "native", "reference")


def _assignment_for(dag, machine):
    """Pin pipelines iff the machine is non-deterministic (matching how
    the experiments drive ``schedule_block``)."""
    if machine.is_deterministic:
        return None
    return first_pipeline_assignment(dag, machine)


def _fields(result):
    """Everything a ``SearchResult`` carries except wall time."""
    return (
        result.best,
        result.initial,
        result.omega_calls,
        result.completed,
        result.improvements,
        result.proved_by_bound,
        result.timed_out,
        result.memo_evicted,
        dict(result.prune_counts),
    )


def _run_all(dag, machine, options, assignment=None, **kwargs):
    """Run every engine; assert pairwise bit-for-bit equality."""
    results = {
        name: schedule_block(
            dag, machine, options, assignment=assignment, engine=name,
            **kwargs,
        )
        for name in ENGINES
    }
    reference = _fields(results["reference"])
    for name in ("fast", "vector", "native"):
        assert _fields(results[name]) == reference, f"{name} != reference"
    return results["fast"]


# Backwards-compatible alias used throughout this module; now checks the
# whole lattice, not just fast-vs-reference.
_run_both = _run_all


# ----------------------------------------------------------------------
# Differential fuzzing
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(block=blocks(max_size=9), machine=any_machines())
def test_fast_engine_matches_reference(block, machine):
    """Random blocks x (random + adversarial) machines: identical results
    and a valid certificate for the fast engine's schedule."""
    dag = DependenceDAG(block)
    assignment = _assignment_for(dag, machine)
    fast = _run_both(dag, machine, SearchOptions(), assignment=assignment)
    cert = check_schedule(
        block,
        machine,
        fast.best.order,
        fast.best.etas,
        assignment=assignment,
    )
    assert cert.ok, cert.summary()


@settings(max_examples=60, deadline=None)
@given(block=blocks(max_size=8), machine=any_machines())
def test_fast_engine_matches_reference_paper_prunes(block, machine):
    """The published prune set (no dominance/lower-bound prunes, no
    heuristic seeding) exercises different engine paths — same contract."""
    dag = DependenceDAG(block)
    _run_both(
        dag,
        machine,
        SearchOptions.paper(),
        assignment=_assignment_for(dag, machine),
    )


def _population(n_blocks, seed=7):
    machine = get_machine("paper-simulation")
    spec = PopulationSpec(statement_shape=2.0, statement_scale=2.0, max_statements=10)
    generated = sample_population(n_blocks, master_seed=seed, spec=spec)
    return machine, [gb for gb in generated if len(gb.block) > 1]


def test_split_engines_match():
    """Window-by-window scheduling: all engines agree on every field."""
    machine, members = _population(30)
    for gb in members:
        dag = DependenceDAG(gb.block)
        ref = schedule_block_split(dag, machine, window=5, engine="reference")
        for name in ("fast", "vector", "native"):
            got = schedule_block_split(dag, machine, window=5, engine=name)
            assert got.timing == ref.timing
            assert got.omega_calls == ref.omega_calls
            assert got.windows == ref.windows
            assert got.all_windows_completed == ref.all_windows_completed
            assert dict(got.prune_counts) == dict(ref.prune_counts)


# ----------------------------------------------------------------------
# Memo eviction
# ----------------------------------------------------------------------
def test_memo_eviction_degrades_gracefully():
    """Overflowing ``max_memo_entries`` must cost only speed: both engines
    keep returning optimal schedules, evict identically, and report the
    evictions through ``search.memo_evicted``."""
    machine, members = _population(60, seed=11)
    options = SearchOptions(max_memo_entries=4)
    baseline = SearchOptions()
    telemetry = Telemetry()
    evicted_anywhere = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = schedule_block(
            dag, machine, options, telemetry=telemetry, engine="fast"
        )
        ref = schedule_block(dag, machine, options, engine="reference")
        vec = schedule_block(dag, machine, options, engine="vector")
        nat = schedule_block(dag, machine, options, engine="native")
        assert _fields(fast) == _fields(ref)
        assert _fields(vec) == _fields(ref)
        assert _fields(nat) == _fields(ref)
        evicted_anywhere = evicted_anywhere or fast.memo_evicted > 0
        # A starved memo may only cost omega calls, never quality.
        full = schedule_block(dag, machine, baseline, engine="fast")
        assert fast.completed and full.completed
        assert fast.final_nops == full.final_nops
        assert fast.omega_calls >= full.omega_calls
    assert evicted_anywhere, "population never overflowed a 4-entry memo"
    assert telemetry.counters["search.memo_evicted"] > 0


def test_memo_disabled_entirely():
    """``max_memo_entries=0`` disables the memo without disabling the
    dominance prune logic's correctness."""
    machine, members = _population(20, seed=13)
    options = SearchOptions(max_memo_entries=0)
    for gb in members[:8]:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        assert fast.completed


# ----------------------------------------------------------------------
# Curtail and wall-clock deadlines
# ----------------------------------------------------------------------
def test_curtail_honored_by_fast_engine():
    """A tiny omega budget truncates both engines at the same call."""
    machine, members = _population(40, seed=3)
    options = SearchOptions(curtail=1)
    saw_truncation = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        assert fast.omega_calls <= len(dag) * 3 + 1
        saw_truncation = saw_truncation or not fast.completed
    assert saw_truncation, "curtail=1 never truncated a search"


def test_time_limit_honored_by_fast_engine():
    """A vanishing deadline stops the fast engine immediately and
    marks the result ``timed_out`` (never ``completed``)."""
    machine, members = _population(40, seed=5)
    options = SearchOptions(time_limit=1e-9)
    saw_timeout = False
    for gb in members:
        dag = DependenceDAG(gb.block)
        fast = _run_both(dag, machine, options)
        if fast.timed_out:
            saw_timeout = True
            assert not fast.completed
    assert saw_timeout, "a 1ns time limit never expired a search"


def test_block_timeout_degrades_block_record():
    """Deadline-degraded blocks keep ``degraded=True, completed=False``
    through ``BlockRecord``, and publish the list-schedule seed."""
    machine, members = _population(40, seed=9)
    telemetry = Telemetry()
    degraded = []
    for index, gb in enumerate(members):
        record = schedule_generated_block(
            index,
            gb,
            machine,
            SearchOptions(engine="fast"),
            telemetry=telemetry,
            block_timeout=1e-9,
        )
        if record.degraded:
            degraded.append(record)
    assert degraded, "a 1ns block timeout never degraded a block"
    for record in degraded:
        assert not record.completed
        assert record.final_nops == record.seed_nops
    assert telemetry.counters["blocks.degraded"] == len(degraded)


# ----------------------------------------------------------------------
# The engine switch itself
# ----------------------------------------------------------------------
def test_engine_option_validation():
    with pytest.raises(ValueError, match="unknown search engine"):
        SearchOptions(engine="turbo")
    assert SearchOptions(engine="vector").engine == "vector"
    machine, members = _population(3, seed=1)
    dag = DependenceDAG(members[0].block)
    with pytest.raises(ValueError, match="unknown search engine"):
        schedule_block(dag, machine, SearchOptions(), engine="turbo")
    with pytest.raises(ValueError, match="unknown search engine"):
        schedule_block_split(dag, machine, engine="turbo")


def test_engine_override_beats_options():
    """The per-call ``engine=`` argument overrides ``options.engine``."""
    machine, members = _population(5, seed=2)
    dag = DependenceDAG(members[0].block)
    options = SearchOptions(engine="reference")
    fast = schedule_block(dag, machine, options, engine="fast")
    ref = schedule_block(dag, machine, options)
    assert _fields(fast) == _fields(ref)


# ----------------------------------------------------------------------
# Vector engine specifics
# ----------------------------------------------------------------------
def test_vector_batch_path_on_wide_frontier(monkeypatch):
    """A block whose root offers ~40 ready instructions drives the ready
    frontier past ``VECTOR_MIN_FRONTIER``, so the vector engine takes the
    fused NumPy scoring pass — and must still match both scalar engines
    bit for bit."""
    builder = BlockBuilder("wide")
    refs = [builder.emit_load("a") for _ in range(40)]
    builder.emit_store("a", refs[-1])
    dag = DependenceDAG(builder.build())
    machine = get_machine("paper-simulation")
    # No lower-bound prune: the homogeneous block would otherwise be
    # proven optimal at the root and never reach the DFS.
    options = SearchOptions(curtail=2_000, lower_bound_prune=False)
    if core.numpy_available():
        batch_calls = []
        real = core._mask_indices
        monkeypatch.setattr(
            core,
            "_mask_indices",
            lambda mask, n: (batch_calls.append(1), real(mask, n))[1],
        )
        _run_all(dag, machine, options)
        assert batch_calls, "wide frontier never hit the NumPy batch scorer"
    else:
        _run_all(dag, machine, options)


def test_vector_engine_with_carry_in_conditions():
    """Carry-in pipeline/variable state disables the packed memo keys
    (the ``packable`` fast path); the tuple-key fallback inside the
    vector engine must keep the lattice exact."""
    machine, members = _population(25, seed=17)
    pid = sorted(p.ident for p in machine.pipelines)[0]
    for gb in members[:10]:
        dag = DependenceDAG(gb.block)
        variables = sorted(
            {t.variable for t in gb.block if t.variable is not None}
        )
        init = InitialConditions(
            pipe_free={pid: 3},
            variable_ready={variables[0]: 5} if variables else {},
        )
        _run_all(dag, machine, SearchOptions(), initial_conditions=init)


def test_vector_split_matches_on_large_blocks():
    """Blocks well past the window size exercise the carry-across-window
    state under the vector splitter."""
    machine = get_machine("paper-simulation")
    spec = PopulationSpec(
        statement_shape=2.0, statement_scale=4.0, max_statements=25
    )
    for gb in sample_population(10, master_seed=23, spec=spec):
        if len(gb.block) < 8:
            continue
        dag = DependenceDAG(gb.block)
        ref = schedule_block_split(dag, machine, window=6, engine="reference")
        vec = schedule_block_split(dag, machine, window=6, engine="vector")
        assert vec.timing == ref.timing
        assert vec.omega_calls == ref.omega_calls
        assert dict(vec.prune_counts) == dict(ref.prune_counts)


def test_vector_engine_fallback_without_numpy(monkeypatch, capsys):
    """With NumPy unavailable the vector engine must degrade to the fast
    engine: one warning line per process, exit path identical, results
    byte-for-byte the fast engine's."""
    machine, members = _population(6, seed=21)
    dag = DependenceDAG(members[0].block)
    fast = schedule_block(dag, machine, SearchOptions(), engine="fast")
    split_fast = schedule_block_split(dag, machine, window=4, engine="fast")
    monkeypatch.setattr(core, "_np", None)
    monkeypatch.setattr(core, "_vector_fallback_warned", False)
    vec1 = schedule_block(dag, machine, SearchOptions(), engine="vector")
    vec2 = schedule_block(dag, machine, SearchOptions(), engine="vector")
    split_vec = schedule_block_split(dag, machine, window=4, engine="vector")
    err = capsys.readouterr().err
    assert err.count("falling back to 'fast'") == 1, err
    assert _fields(vec1) == _fields(fast)
    assert _fields(vec2) == _fields(fast)
    assert split_vec.timing == split_fast.timing
    assert split_vec.omega_calls == split_fast.omega_calls
    assert dict(split_vec.prune_counts) == dict(split_fast.prune_counts)
