"""End-to-end tests for the compiler driver (Figure 2's back end)."""

import pytest

from repro.codegen.assembly import DelayDiscipline
from repro.driver import (
    SCHEDULERS,
    VerificationError,
    compile_source,
    verify_compilation,
)
from repro.machine.presets import (
    deep_memory_machine,
    paper_simulation_machine,
    unpipelined_units_machine,
)

FIGURE3_SOURCE = "{ b = 15; a = b * a; }"


class TestCompileSource:
    def test_figure3_end_to_end(self, sim_machine):
        result = compile_source(
            FIGURE3_SOURCE, sim_machine, verify_memory={"a": 3}
        )
        assert result.search.completed
        assert result.total_nops == 2
        assert result.issue_span_cycles == 7
        assert "MUL" in str(result.assembly)

    def test_every_scheduler_choice(self, sim_machine):
        nops = {}
        for scheduler in SCHEDULERS:
            result = compile_source(
                FIGURE3_SOURCE,
                sim_machine,
                scheduler=scheduler,
                verify_memory={"a": 4},
            )
            nops[scheduler] = result.total_nops
            if scheduler in ("optimal", "ilp"):
                assert result.search is not None
            else:
                assert result.search is None
        assert nops["optimal"] <= min(nops.values())
        assert nops["none"] == max(nops.values())

    def test_unknown_scheduler(self, sim_machine):
        with pytest.raises(ValueError, match="unknown scheduler"):
            compile_source("a = 1;", sim_machine, scheduler="magic")

    def test_optimization_toggle(self, sim_machine):
        source = "x = 2 + 3;"
        optimized = compile_source(source, sim_machine)
        raw = compile_source(source, sim_machine, optimize=False)
        assert len(optimized.block) < len(raw.block)
        assert len(optimized.raw_block) == len(raw.raw_block)

    def test_register_budget_inserts_spills(self, sim_machine):
        source = (
            "s = a + b; t = c + d; u = e + f; "
            "x = s + t; y = x + u; z = y + a;"
        )
        memory = {v: i + 1 for i, v in enumerate("abcdef")}
        result = compile_source(
            source, sim_machine, num_registers=4, verify_memory=memory
        )
        assert result.allocation.num_registers_used <= 4

    def test_disciplines(self, sim_machine):
        for discipline in DelayDiscipline:
            result = compile_source(
                FIGURE3_SOURCE, sim_machine, discipline=discipline
            )
            assert result.assembly.discipline is discipline

    def test_on_every_preset_machine(self):
        source = "p = a * b + c; q = p * p - a; r = q / 2;"
        memory = {"a": 2, "b": 3, "c": 4}
        for machine in (
            paper_simulation_machine(),
            deep_memory_machine(),
            unpipelined_units_machine(),
        ):
            result = compile_source(
                source, machine, verify_memory=memory
            )
            assert result.search.completed

    def test_empty_program(self, sim_machine):
        result = compile_source("", sim_machine)
        assert result.total_nops == 0
        assert len(result.block) == 0


class TestVerification:
    def test_verify_compilation_passes(self, sim_machine):
        result = compile_source(FIGURE3_SOURCE, sim_machine)
        verify_compilation(result, {"a": 3})

    def test_verify_detects_wrong_code(self, sim_machine):
        """Corrupt the compiled block and watch verification catch it."""
        import dataclasses

        result = compile_source("x = a + 1;", sim_machine)
        # Swap the optimized block for one computing something else.
        from repro.frontend.lowering import lower_source
        from repro.ir.dag import DependenceDAG

        wrong_block = lower_source("x = a + 2;")
        broken = dataclasses.replace(
            result,
            block=wrong_block,
            dag=DependenceDAG(wrong_block),
        )
        with pytest.raises(VerificationError, match="variable 'x'"):
            verify_compilation(broken, {"a": 1})

    def test_compile_verify_battery(self, sim_machine):
        """A battery of real little programs, verified end to end."""
        programs = [
            ("a = b; b = a;", {"a": 1, "b": 2}),
            ("x = -y * -y;", {"y": 5}),
            ("m = (a + b) * (a - b);", {"a": 9, "b": 4}),
            ("a = a + 1; a = a + 1; a = a + 1;", {"a": 0}),
            ("h = (x * x + y * y) / 2;", {"x": 3, "y": 4}),
            ("q = a / b; r = q * b;", {"a": 84, "b": 6}),
        ]
        for source, memory in programs:
            result = compile_source(source, sim_machine, verify_memory=memory)
            assert result.search.completed, source


class TestMultiScheduler:
    def test_multi_on_example_machine(self, example_machine):
        """The Tables 2+3 machine is non-deterministic: only the 'multi'
        scheduler accepts it, and verification passes end to end."""
        result = compile_source(
            "x = a + b; y = c + d; z = x + y; w = z * z;",
            example_machine,
            scheduler="multi",
            verify_memory={"a": 1, "b": 2, "c": 3, "d": 4},
        )
        assert result.pipeline_assignment is not None
        # Every assigned pipeline must be viable for its tuple's opcode.
        for ident, pid in result.pipeline_assignment.items():
            op = result.block.by_ident(ident).op
            viable = example_machine.pipelines_for(op)
            assert (pid in viable) if viable else (pid is None)

    def test_optimal_rejects_non_deterministic_machines(self, example_machine):
        with pytest.raises(Exception, match="deterministic"):
            compile_source("x = a + b;", example_machine, scheduler="optimal")

    def test_multi_never_beats_nothing(self, sim_machine):
        """On a deterministic machine, multi degenerates to the core
        search (one choice per op) and matches its optimum."""
        source = "p = a * a; q = b * b; r = p + q;"
        multi = compile_source(source, sim_machine, scheduler="multi")
        optimal = compile_source(source, sim_machine, scheduler="optimal")
        assert multi.total_nops == optimal.total_nops
