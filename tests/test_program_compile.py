"""Tests for multi-block programs: barrier parsing, splitting, and the
compile_program driver (footnote 1 made user-facing)."""

import pytest

from repro.driver import compile_program, compile_source
from repro.frontend.ast import run_program
from repro.frontend.lowering import lower_program
from repro.frontend.parser import ParseError, parse_program
from repro.ir.ops import Opcode
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc


class TestBarrierParsing:
    def test_barrier_statement(self):
        program = parse_program("a = 1; barrier; b = 2;")
        kinds = [type(s).__name__ for s in program]
        assert kinds == ["Assignment", "Barrier", "Assignment"]
        assert program.has_barriers

    def test_barrier_is_reserved(self):
        with pytest.raises(ParseError, match="reserved"):
            parse_program("x = barrier + 1;")

    def test_barrier_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("a = 1; barrier b = 2;")

    def test_rendering(self):
        assert "barrier;" in str(parse_program("a = 1; barrier; b = 2;"))


class TestSplitBlocks:
    def test_three_way_split(self):
        program = parse_program("a = 1; barrier; b = 2; c = 3; barrier; d = 4;")
        blocks = program.split_blocks()
        assert [len(b) for b in blocks] == [1, 2, 1]
        assert not any(b.has_barriers for b in blocks)

    def test_degenerate_barriers_dropped(self):
        program = parse_program("barrier; a = 1; barrier; barrier; b = 2; barrier;")
        blocks = program.split_blocks()
        assert [len(b) for b in blocks] == [1, 1]

    def test_barrier_free_program_is_one_block(self):
        assert len(parse_program("a = 1; b = 2;").split_blocks()) == 1

    def test_semantics_ignore_barriers(self):
        with_b = parse_program("a = 1; barrier; b = a + 1;")
        without = parse_program("a = 1; b = a + 1;")
        assert run_program(with_b, {}) == run_program(without, {})

    def test_variables_skip_barriers(self):
        program = parse_program("a = x; barrier; b = a;")
        assert program.variables_read() == ("x",)
        assert program.variables_written() == ("a", "b")

    def test_lowering_rejects_barriers(self):
        with pytest.raises(ValueError, match="split_blocks"):
            lower_program(parse_program("a = 1; barrier; b = 2;"))


class TestCompileProgram:
    SOURCE = "a = x * y; barrier; b = a * a; barrier; c = b + a;"
    MEMORY = {"x": 2, "y": 3}

    def test_blocks_and_verification(self, sim_machine):
        compiled = compile_program(
            self.SOURCE, sim_machine, verify_memory=self.MEMORY
        )
        assert len(compiled) == 3
        assert compiled.all_optimal
        assert compiled.total_nops == sum(b.total_nops for b in compiled.blocks)
        assert "; block program.1" in compiled.assembly_text

    def test_matches_source_semantics(self, sim_machine):
        # verify_memory raising nothing IS the assertion; also sanity-check
        # the expected values by hand: a=6, b=36, c=42.
        compiled = compile_program(
            self.SOURCE, sim_machine, verify_memory=self.MEMORY
        )
        expected = run_program(compiled.program, self.MEMORY)
        assert expected["c"] == 42

    def test_barrier_free_source_is_single_block(self, sim_machine):
        compiled = compile_program("a = x * y;", sim_machine)
        assert len(compiled) == 1

    def test_empty_program(self, sim_machine):
        compiled = compile_program("", sim_machine)
        assert len(compiled) == 1 and compiled.total_nops == 0

    def test_unknown_scheduler(self, sim_machine):
        with pytest.raises(ValueError, match="unknown scheduler"):
            compile_program("a = 1;", sim_machine, scheduler="magic")

    @pytest.mark.parametrize("scheduler", ["optimal", "gross", "greedy", "list", "none"])
    def test_every_scheduler_verifies(self, scheduler, sim_machine):
        compile_program(
            self.SOURCE,
            sim_machine,
            scheduler=scheduler,
            verify_memory=self.MEMORY,
        )

    def test_register_budget(self, sim_machine):
        source = (
            "s = a + b; t = c + d; u = s + t; barrier; "
            "v = u * u; w = v + s; barrier; r = w - t;"
        )
        memory = {"a": 1, "b": 2, "c": 3, "d": 4}
        compiled = compile_program(
            source, sim_machine, num_registers=4, verify_memory=memory
        )
        for block in compiled.blocks:
            assert block.allocation.num_registers_used <= 4

    def test_carry_out_threads_between_blocks(self):
        """A slow unpipelined memory unit (shared by Load and Store)
        straddling a barrier: block 0's final Store keeps the unit busy
        into block 1, whose leading Load must absorb the carried
        occupancy — more NOPs than on an idle machine."""
        machine = MachineDescription(
            "slow-memory",
            [PipelineDesc("memory", 1, latency=6, enqueue_time=6)],
            {Opcode.LOAD: {1}, Opcode.STORE: {1}},
        )
        compiled = compile_program(
            "a = x * x; barrier; b = y * y;", machine,
            verify_memory={"x": 2, "y": 3},
        )
        isolated = compile_source("b = y * y;", machine)
        assert compiled.blocks[1].total_nops > isolated.total_nops

    def test_barriers_cost_scheduling_freedom(self, sim_machine):
        """The same statements with and without barriers: the partitioned
        program can never need fewer cycles (reordering across the
        boundary is forbidden)."""
        joined = "a = x * y; b = p * q; c = a + b;"
        split = "a = x * y; barrier; b = p * q; barrier; c = a + b;"
        memory = {"x": 2, "y": 3, "p": 4, "q": 5}
        free = compile_program(joined, sim_machine, verify_memory=memory)
        fenced = compile_program(split, sim_machine, verify_memory=memory)
        assert fenced.total_cycles >= free.total_cycles


class TestCliBarrierPath:
    def test_cli_compiles_multi_block(self, capsys):
        from repro.cli import main

        rc = main(
            ["-e", "a = x * y; barrier; b = a * a;",
             "--show", "all", "--verify", "x=2,y=3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "blocks: 2" in out
        assert "block program.0" in out and "block program.1" in out
        assert "verification" in out

    def test_cli_multi_block_verification_failure(self, capsys):
        from repro.cli import main

        rc = main(["-e", "a = x * y; barrier; b = a;", "--verify", "y=1"])
        assert rc == 1
        assert "repro-compile:" in capsys.readouterr().err


def test_compile_program_rejects_multi(sim_machine):
    with pytest.raises(ValueError, match="multi-pipeline"):
        compile_program("a = 1; barrier; b = 2;", sim_machine, scheduler="multi")


def test_compile_block_supports_multi():
    from repro.driver import compile_block
    from repro.ir.textual import parse_block
    from repro.machine.presets import paper_example_machine

    block = parse_block("1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Store #c, 3")
    result = compile_block(block, paper_example_machine(), scheduler="multi")
    assert result.pipeline_assignment is not None
