"""Tests for the multi-pipeline selection extension (footnote 3)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.ops import Opcode
from repro.ir.textual import parse_block
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc
from repro.machine.presets import asymmetric_units_machine
from repro.sched.multi import (
    first_pipeline_assignment,
    round_robin_assignment,
    schedule_block_multi,
)
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import SearchOptions, schedule_block

from .strategies import blocks


class TestStaticAssignments:
    def test_first_pipeline(self, figure3_dag, example_machine):
        assignment = first_pipeline_assignment(figure3_dag, example_machine)
        assert assignment[3] == 1  # Load -> lowest loader
        assert assignment[4] == 5  # Mul -> multiplier
        assert assignment[1] is None  # Const uses no pipeline

    def test_round_robin_alternates(self, example_machine):
        block = parse_block("1: Load #a\n2: Load #b\n3: Load #c")
        dag = DependenceDAG(block)
        assignment = round_robin_assignment(dag, example_machine)
        assert [assignment[i] for i in (1, 2, 3)] == [1, 2, 1]


class TestJointSearch:
    def test_figure3_on_example_machine(self, figure3_dag, example_machine):
        result = schedule_block_multi(figure3_dag, example_machine)
        assert result.completed
        assert figure3_dag.is_legal_order(result.order)
        # The assignment must be viable for every instruction.
        for ident, pid in result.assignment.items():
            op = figure3_dag.block.by_ident(ident).op
            viable = example_machine.pipelines_for(op)
            assert (pid in viable) if viable else (pid is None)

    def test_never_loses_to_pinned_policies(self, example_machine):
        options = SearchOptions(curtail=200_000)
        texts = [
            "1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Store #c, 3",
            "1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Add 1, 2\n"
            "5: Add 3, 4\n6: Store #c, 5",
            "1: Load #a\n2: Mul 1, 1\n3: Mul 2, 2\n4: Store #a, 3",
        ]
        for text in texts:
            dag = DependenceDAG(parse_block(text))
            joint = schedule_block_multi(dag, example_machine, options)
            for policy in (first_pipeline_assignment, round_robin_assignment):
                pinned = schedule_block(
                    dag, example_machine, options,
                    assignment=policy(dag, example_machine),
                )
                assert joint.total_nops <= pinned.final_nops

    def test_two_loaders_beat_one(self, example_machine):
        """Two adjacent dependent loader users: with one loader pinned and
        enqueue time 1 there is no conflict, but pin both Adds to adder 3
        (enqueue 3!) and the second must stall; the joint search uses the
        second adder instead."""
        text = (
            "1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Add 1, 2\n"
            "5: Store #x, 3\n6: Store #y, 4"
        )
        dag = DependenceDAG(parse_block(text))
        pinned = schedule_block(
            dag,
            example_machine,
            assignment=first_pipeline_assignment(dag, example_machine),
        )
        joint = schedule_block_multi(dag, example_machine)
        assert joint.total_nops < pinned.final_nops

    def test_timing_is_consistent_with_its_assignment(self, example_machine):
        text = "1: Load #a\n2: Load #b\n3: Add 1, 2\n4: Store #c, 3"
        dag = DependenceDAG(parse_block(text))
        result = schedule_block_multi(dag, example_machine)
        recomputed = compute_timing(
            dag, result.order, example_machine, assignment=result.assignment
        )
        assert recomputed.etas == result.etas
        assert recomputed.total_nops == result.total_nops

    def test_single_instruction(self, example_machine):
        dag = DependenceDAG(parse_block("1: Load #a"))
        result = schedule_block_multi(dag, example_machine)
        assert result.completed and result.total_nops == 0

    def test_seed_validation(self, figure3_dag, example_machine):
        with pytest.raises(ValueError, match="permutation"):
            schedule_block_multi(figure3_dag, example_machine, seed=(1, 2))


def _brute_force_multi(dag, machine):
    """Ground truth: minimum NOPs over every (legal order, assignment)."""
    per_tuple_choices = []
    idents = dag.idents
    for ident in idents:
        op = dag.block.by_ident(ident).op
        pids = sorted(machine.pipelines_for(op))
        per_tuple_choices.append(pids if pids else [None])
    best = None
    for order in dag.iter_legal_orders():
        for combo in itertools.product(*per_tuple_choices):
            assignment = dict(zip(idents, combo))
            nops = compute_timing(
                dag, order, machine, assignment=assignment
            ).total_nops
            if best is None or nops < best:
                best = nops
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "text",
        [
            "1: Load #a\n2: Load #b\n3: Add 1, 2",
            "1: Load #a\n2: Add 1, 1\n3: Add 2, 2\n4: Store #x, 3",
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Add 1, 2\n5: Store #x, 4",
        ],
    )
    def test_example_machine(self, text, example_machine):
        dag = DependenceDAG(parse_block(text))
        truth = _brute_force_multi(dag, example_machine)
        result = schedule_block_multi(
            dag, example_machine, SearchOptions(curtail=10_000_000)
        )
        assert result.completed
        assert result.total_nops == truth

    @pytest.mark.parametrize(
        "text",
        [
            "1: Load #a\n2: Mul 1, 1\n3: Mul 2, 2\n4: Store #x, 3",
            "1: Load #a\n2: Mul 1, 1\n3: Mul 1, 1\n4: Add 2, 3\n5: Store #x, 4",
        ],
    )
    def test_asymmetric_machine(self, text):
        machine = asymmetric_units_machine()
        dag = DependenceDAG(parse_block(text))
        truth = _brute_force_multi(dag, machine)
        result = schedule_block_multi(
            dag, machine, SearchOptions(curtail=10_000_000)
        )
        assert result.completed
        assert result.total_nops == truth


@given(blocks(min_size=2, max_size=5))
@settings(max_examples=40, deadline=None)
def test_joint_matches_brute_force_on_random_blocks(block):
    machine = MachineDescription(
        "two-units",
        [
            PipelineDesc("u-fast", 1, latency=2, enqueue_time=2),
            PipelineDesc("u-slow", 2, latency=4, enqueue_time=1),
        ],
        {
            Opcode.LOAD: {1, 2},
            Opcode.MUL: {1, 2},
            Opcode.ADD: {2},
            Opcode.SUB: {2},
        },
    )
    dag = DependenceDAG(block)
    truth = _brute_force_multi(dag, machine)
    result = schedule_block_multi(
        dag, machine, SearchOptions(curtail=10_000_000)
    )
    assert result.completed
    assert result.total_nops == truth
