"""Differential fuzzing of the scheduler stack through the verify layer.

Three layers of cross-checking:

* the **oracle** (``repro.verify.oracle``) on random blocks × machines —
  list scheduler, branch-and-bound, splitting and multi-pipeline search
  all certified and compared against independent exhaustive enumeration;
* the **mutation smoke tests** — a deliberately injected Ω-accounting
  bug (latency under-counted by one) must be caught by the certificate
  checker, not by the code under test agreeing with itself;
* the **kernel sweep** — every built-in kernel against every machine of
  the design-space sweep, pinning search/exhaustive Ω-equality.
"""

import functools
import json

import pytest
from hypothesis import given, settings

from repro.driver import compile_source
from repro.experiments.machines import sweep_machines
from repro.experiments.runner import (
    VerificationError,
    run_population,
    schedule_generated_block,
)
from repro.ilp import IlpOptions
from repro.ir.dag import COUNT_CAPPED, DependenceDAG
from repro.machine.presets import get_machine, paper_simulation_machine
from repro.sched.exhaustive import legal_only_search
from repro.sched.multi import first_pipeline_assignment
from repro.sched.nop_insertion import SigmaResolver
from repro.sched.search import SearchOptions, root_lower_bound, schedule_block
from repro.synth.kernels import KERNELS
from repro.synth.population import PopulationSpec, sample_population
from repro.verify import cli as verify_cli
from repro.verify.certificate import check_schedule
from repro.verify.fuzz import adversarial_machines, run_fuzz
from repro.verify.oracle import check_block, replay_report

from .strategies import any_machines, blocks

#: Cap under which the oracle's exhaustive ground truth runs in tests.
TEST_BRUTE_CAP = 2_000


@functools.lru_cache(maxsize=1)
def kernel_blocks():
    """Each built-in kernel lowered to tuples (machine-independent)."""
    reference = get_machine("paper-simulation")
    return tuple(
        (
            k.name,
            compile_source(
                k.source, reference, scheduler="none", name=k.name
            ).block,
        )
        for k in KERNELS
    )


def _buggy_latency(monkeypatch_target):
    """Install an Ω-accounting bug: every latency under-counted by one.

    The whole scheduler stack (Ω, search, splitting, multi) resolves
    latencies through ``SigmaResolver.latency``, so the bug propagates
    everywhere *except* the verify layer, which re-reads the machine
    tables itself.
    """
    real = SigmaResolver.latency
    monkeypatch_target.setattr(
        SigmaResolver,
        "latency",
        lambda self, ident: max(1, real(self, ident) - 1),
    )


# ----------------------------------------------------------------------
# Oracle fuzzing (hypothesis + the seeded CLI fuzzer)
# ----------------------------------------------------------------------
@given(blocks(max_size=7), any_machines())
@settings(max_examples=30, deadline=None)
def test_oracle_consistent_on_random_inputs(block, machine):
    report = check_block(block, machine, brute_cap=TEST_BRUTE_CAP)
    assert report.ok, report.summary()


def test_seeded_fuzz_is_deterministic_and_clean():
    first = run_fuzz(12, seed=1990, brute_cap=TEST_BRUTE_CAP)
    second = run_fuzz(12, seed=1990, brute_cap=TEST_BRUTE_CAP)
    assert first.ok and second.ok
    assert first.checks_run == second.checks_run
    assert first.blocks_checked == 12


def test_adversarial_gallery_is_wellformed():
    gallery = adversarial_machines()
    names = [m.name for m in gallery]
    assert len(set(names)) == len(names)
    assert any(not m.is_deterministic for m in gallery)
    assert any(
        all(p.enqueue_time == p.latency for p in m.pipelines) for m in gallery
    )


# ----------------------------------------------------------------------
# Mutation smoke tests: the injected bug is caught by the certificate,
# not by the code under test.
# ----------------------------------------------------------------------
def test_injected_omega_bug_caught_by_certificate(
    figure3_block, sim_machine, monkeypatch
):
    _buggy_latency(monkeypatch)
    dag = DependenceDAG(figure3_block)
    result = schedule_block(dag, sim_machine)
    # The buggy stack is self-consistent — the search still "succeeds" —
    # which is exactly why only an independent checker can object.
    assert result.completed
    report = check_schedule(
        figure3_block, sim_machine, result.best.order, result.best.etas
    )
    assert not report.ok
    assert any(v.kind == "under-padded" for v in report.violations)


def test_injected_omega_bug_caught_by_oracle(
    figure3_block, sim_machine, monkeypatch
):
    _buggy_latency(monkeypatch)
    report = check_block(figure3_block, sim_machine, brute_cap=TEST_BRUTE_CAP)
    assert not report.ok
    assert any(
        d.invariant.startswith("certificate[") for d in report.discrepancies
    )


def test_population_verify_catches_injected_bug(monkeypatch):
    _buggy_latency(monkeypatch)
    with pytest.raises(VerificationError):
        run_population(20, verify=True)


def test_population_verify_clean_without_bug():
    records = run_population(20, verify=True)
    assert len(records) == 20


# ----------------------------------------------------------------------
# Timeout degradation (the run_population regression)
# ----------------------------------------------------------------------
def _largest_population_block(n=8, seed=1990):
    gen = sample_population(n, seed, PopulationSpec())
    return max((next(gen) for _ in range(n)), key=len)


def test_timed_out_block_degrades_to_seed_and_never_counts_optimal():
    gb = _largest_population_block()
    assert len(gb) >= 4
    # Root lower bounds can prove a seed optimal before any deadline
    # check runs; disable them so the search must actually descend.
    options = SearchOptions(
        lower_bound_prune=False, heuristic_seeds=False, dominance_prune=False
    )
    record = schedule_generated_block(
        0,
        gb,
        paper_simulation_machine(),
        options,
        block_timeout=1e-9,
        verify=True,  # the published (seed) schedule must still certify
    )
    assert record.degraded
    assert not record.completed
    assert record.final_nops == record.seed_nops


def test_untimed_block_is_not_degraded():
    gb = _largest_population_block()
    record = schedule_generated_block(
        0, gb, paper_simulation_machine(), SearchOptions(), verify=True
    )
    assert not record.degraded
    assert record.completed


# ----------------------------------------------------------------------
# Kernel × machine-sweep Ω-equality
# ----------------------------------------------------------------------
@pytest.mark.parametrize("machine", sweep_machines(), ids=lambda m: m.name)
def test_kernels_across_machine_sweep(machine):
    """Every built-in kernel on every sweep machine: the full prune set
    and the paper's prune set agree whenever both complete; where the
    block is small enough, independent exhaustive enumeration must match
    the search's proven optimum; and the winning schedule certifies."""
    options = SearchOptions(curtail=20_000)
    paper_options = SearchOptions.paper(curtail=20_000)
    for name, block in kernel_blocks():
        dag = DependenceDAG(block)
        assignment = first_pipeline_assignment(dag, machine)
        full = schedule_block(dag, machine, options, assignment=assignment)
        paper = schedule_block(
            dag, machine, paper_options, assignment=assignment
        )
        if full.completed and paper.completed:
            assert full.final_nops == paper.final_nops, name
        n_orders = dag.count_legal_orders(cap=TEST_BRUTE_CAP)
        if n_orders != COUNT_CAPPED:
            exhaustive = legal_only_search(dag, machine, assignment=assignment)
            assert exhaustive.exhausted, name
            if full.completed:
                assert exhaustive.optimal_nops == full.final_nops, name
            else:
                assert exhaustive.optimal_nops <= full.final_nops, name
        else:
            # Too many legal orders for ground truth: a capped sample
            # still bounds the (proven) optimum from above.
            sample = legal_only_search(
                dag, machine, assignment=assignment, limit=200
            )
            if full.completed:
                assert sample.optimal_nops >= full.final_nops, name
        cert = check_schedule(
            block, machine, full.best.order, full.best.etas,
            assignment=assignment,
        )
        assert cert.ok, f"{name}: {cert.summary()}"
        assert cert.required_nops == full.final_nops, name


# ----------------------------------------------------------------------
# Replayable discrepancy reports + the CLI
# ----------------------------------------------------------------------
def test_discrepancy_report_roundtrip(tmp_path, figure3_block, sim_machine):
    with pytest.MonkeyPatch.context() as mp:
        _buggy_latency(mp)
        report = check_block(
            figure3_block,
            sim_machine,
            brute_cap=TEST_BRUTE_CAP,
            emit_dir=str(tmp_path),
        )
        assert not report.ok
        assert report.report_dir is not None
        data = json.loads(
            (tmp_path / "figure3-paper-simulation" / "report.json").read_text()
        )
        assert data["schema"] == "repro-discrepancy/1"
        assert data["discrepancies"]
    # The bug "fixed" (patch undone): replaying the same report comes
    # back clean — the replay loop an investigator would actually run.
    replayed = replay_report(report.report_dir, brute_cap=TEST_BRUTE_CAP)
    assert replayed.ok, replayed.summary()


def test_verify_cli_kernels_exit_zero(tmp_path, capsys):
    status = verify_cli.main(
        [
            "--kernels",
            "--machines",
            "paper-simulation",
            "--brute-cap",
            str(TEST_BRUTE_CAP),
            "--out",
            str(tmp_path / "discrepancies"),
            "--stats-json",
            str(tmp_path / "stats.json"),
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "all consistent" in out
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["counters"]["verify.blocks"] == len(KERNELS)


def test_verify_cli_fuzz_exit_zero(tmp_path):
    status = verify_cli.main(
        [
            "--blocks",
            "8",
            "--seed",
            "7",
            "--brute-cap",
            str(TEST_BRUTE_CAP),
            "--out",
            str(tmp_path / "discrepancies"),
        ]
    )
    assert status == 0


# ----------------------------------------------------------------------
# The cross-solver ILP witness (--optimality)
# ----------------------------------------------------------------------
#: Small witness budgets: in tests a hard block should degrade to a
#: certified gap quickly, not chew through the full 400-node default.
_ILP_TEST_OPTIONS = IlpOptions(max_nodes=60, time_limit=5.0)


@given(blocks(max_size=6), any_machines())
@settings(max_examples=15, deadline=None)
def test_oracle_optimality_consistent_on_random_inputs(block, machine):
    report = check_block(
        block,
        machine,
        brute_cap=TEST_BRUTE_CAP,
        optimality=True,
        ilp_options=_ILP_TEST_OPTIONS,
    )
    assert report.ok, report.summary()
    assert "ilp" in report.schedules
    assert "lower_bound" in report.schedules["ilp"]


def test_ilp_bound_lattice_on_kernels():
    """The sound bound lattice, on every built-in kernel:

        lp_relaxation <= ilp.lower_bound <= optimum <= ilp.Ω <= search.Ω

    with the search's combinatorial root bound also below ``ilp.Ω``.
    (The LP and combinatorial bounds themselves are incomparable —
    either may win — so no ordering between them is asserted.)"""
    machine = get_machine("paper-simulation")
    for name, block in kernel_blocks():
        dag = DependenceDAG(block)
        assignment = first_pipeline_assignment(dag, machine)
        search = schedule_block(dag, machine, assignment=assignment)
        ilp = schedule_block(
            dag,
            machine,
            assignment=assignment,
            seed=search.best.order,
            backend="ilp",
            ilp_options=_ILP_TEST_OPTIONS,
        )
        root = root_lower_bound(dag, machine, assignment)
        assert ilp.lp_relaxation <= ilp.lower_bound + 1e-9, name
        assert ilp.lower_bound <= ilp.final_nops, name
        assert root <= ilp.final_nops, name
        assert ilp.final_nops <= search.final_nops, name
        if search.completed:
            assert ilp.lower_bound <= search.final_nops, name
            if ilp.completed:
                assert ilp.final_nops == search.final_nops, name


def test_injected_encoder_bug_caught_by_certificate(
    figure3_block, sim_machine, monkeypatch
):
    """Mutation smoke test for the ILP tier: an off-by-one latency
    injected into the *encoder's* table seam flows through the model,
    the repricing and the published η stream, and is caught by the
    independent certificate checker — while every schedule produced by
    the uninfected stack still certifies cleanly."""
    import repro.ilp.encoder as encoder

    monkeypatch.setattr(
        encoder,
        "latency_table",
        lambda flat: [max(0, v - 1) for v in flat.lat],
    )
    report = check_block(
        figure3_block,
        sim_machine,
        brute_cap=TEST_BRUTE_CAP,
        optimality=True,
        ilp_options=_ILP_TEST_OPTIONS,
    )
    assert not report.ok
    kinds = {d.invariant for d in report.discrepancies}
    assert "certificate[ilp]" in kinds
    for label in ("list", "search", "split", "multi"):
        assert f"certificate[{label}]" not in kinds


@pytest.mark.parametrize("kernel", ["fir3", "lerp4", "determinant3"])
def test_deep_memory_witness_on_curtailed_kernels(kernel):
    """Regression for the blocks the search curtails on deep-memory:
    the witness, seeded with the curtailed incumbent, must match or
    beat it, certify, and leave either a proof of optimality or a
    replayable certified gap."""
    machine = get_machine("deep-memory")
    block = dict(kernel_blocks())[kernel]
    dag = DependenceDAG(block)
    assignment = first_pipeline_assignment(dag, machine)
    search = schedule_block(
        dag, machine, SearchOptions(curtail=5_000), assignment=assignment
    )
    ilp = schedule_block(
        dag,
        machine,
        assignment=assignment,
        seed=search.best.order,
        backend="ilp",
        ilp_options=IlpOptions(max_nodes=40, time_limit=5.0),
    )
    assert ilp.final_nops <= search.final_nops, kernel
    assert ilp.lower_bound <= ilp.final_nops, kernel
    assert ilp.optimality_gap >= 0, kernel
    cert = check_schedule(
        block, machine, ilp.best.order, ilp.best.etas, assignment=assignment
    )
    assert cert.ok, f"{kernel}: {cert.summary()}"
    assert cert.required_nops == ilp.final_nops, kernel
    if ilp.completed:
        assert ilp.lower_bound == ilp.final_nops, kernel


def test_curtailed_search_records_replayable_bound():
    """Satellite fix pin: when the search curtails, report entries must
    carry the lower bound active at curtailment, so the optimality gap
    in report.json is replayable rather than an unexplained number."""
    machine = get_machine("deep-memory")
    block = dict(kernel_blocks())["fir3"]
    report = check_block(
        block,
        machine,
        options=SearchOptions(curtail=200),
        brute_cap=TEST_BRUTE_CAP,
        optimality=True,
        ilp_options=IlpOptions(max_nodes=20, time_limit=5.0),
    )
    assert report.ok, report.summary()
    assert "search" in report.curtailed
    entry = report.schedules["search"]
    assert entry["lower_bound"] >= 0
    assert entry["optimality_gap"] == entry["nops"] - entry["lower_bound"]
    # The recorded bound is at least as strong as the combinatorial
    # root bound (the witness can only tighten it).
    dag = DependenceDAG(block)
    assignment = first_pipeline_assignment(dag, machine)
    assert entry["lower_bound"] >= root_lower_bound(dag, machine, assignment)


def test_optimality_report_roundtrip(tmp_path, figure3_block, sim_machine):
    """A discrepancy report emitted by an --optimality run replays with
    the witness on: the flag round-trips through report.json."""
    with pytest.MonkeyPatch.context() as mp:
        import repro.ilp.encoder as encoder

        mp.setattr(
            encoder,
            "latency_table",
            lambda flat: [max(0, v - 1) for v in flat.lat],
        )
        report = check_block(
            figure3_block,
            sim_machine,
            brute_cap=TEST_BRUTE_CAP,
            optimality=True,
            ilp_options=_ILP_TEST_OPTIONS,
            emit_dir=str(tmp_path),
        )
        assert not report.ok
        data = json.loads(
            (tmp_path / "figure3-paper-simulation" / "report.json").read_text()
        )
        assert data["optimality"] is True
        assert "ilp" in data["schedules"]
        assert "lower_bound" in data["schedules"]["ilp"]
    # Bug gone: the replay re-runs the witness (the flag came back from
    # disk, not from this call's arguments) and comes back clean.
    replayed = replay_report(report.report_dir, brute_cap=TEST_BRUTE_CAP)
    assert replayed.ok, replayed.summary()
    assert "ilp" in replayed.schedules
