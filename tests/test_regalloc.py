"""Tests for liveness, linear-scan allocation, and the spill pre-pass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.ast import run_program
from repro.frontend.lowering import lower_program, lower_source
from repro.ir.dag import DependenceDAG
from repro.ir.interp import run_block
from repro.ir.textual import parse_block
from repro.regalloc.allocator import AllocationError, allocate_registers
from repro.regalloc.liveness import live_ranges, max_live, pressure_profile
from repro.regalloc.spill import SPILL_PREFIX, insert_spill_code
from repro.sched.search import schedule_block
from repro.synth.generator import generate_program
from repro.synth.stats import GeneratorProfile

from .strategies import blocks


class TestLiveness:
    def test_figure3_ranges(self, figure3_block):
        ranges = live_ranges(figure3_block)
        assert ranges[1].start == 0 and ranges[1].end == 3  # Const used by Mul
        assert ranges[4].start == 3 and ranges[4].end == 4
        assert 2 not in ranges  # Store produces no value

    def test_unused_value_is_dead(self):
        block = parse_block("1: Load #a\n2: Load #b\n3: Store #x, 1")
        ranges = live_ranges(block)
        assert ranges[2].is_dead
        assert not ranges[2].overlaps(ranges[1])

    def test_pressure_profile(self, figure3_block):
        profile = pressure_profile(figure3_block)
        assert len(profile) == 5
        assert max(profile) == max_live(figure3_block)

    def test_max_live_figure3(self, figure3_block):
        # Const(1) and Load(3) are simultaneously live before the Mul.
        assert max_live(figure3_block) == 2

    def test_ranges_respect_custom_order(self, figure3_block):
        order = (3, 1, 4, 2, 5)
        ranges = live_ranges(figure3_block, order)
        assert ranges[3].start == 0  # Load now first

    def test_empty_block(self):
        from repro.ir.block import BasicBlock

        assert max_live(BasicBlock([])) == 0


class TestAllocator:
    def test_figure3_uses_two_registers(self, figure3_block):
        allocation = allocate_registers(figure3_block)
        assert allocation.num_registers_used == 2

    def test_destination_may_reuse_operand_register(self):
        # Mul's operands die at the Mul: its result can take one of them.
        block = parse_block(
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #x, 3"
        )
        allocation = allocate_registers(block)
        assert allocation.num_registers_used == 2
        assert allocation.register_of(3) in {
            allocation.register_of(1),
            allocation.register_of(2),
        }

    def test_live_values_get_distinct_registers(self, figure3_block):
        allocation = allocate_registers(figure3_block)
        ranges = live_ranges(figure3_block)
        values = list(allocation.registers)
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                if ranges[a].overlaps(ranges[b]):
                    assert allocation.register_of(a) != allocation.register_of(b)

    def test_register_limit_enforced(self):
        # Three simultaneously live loads cannot fit two registers.
        block = parse_block(
            "1: Load #a\n2: Load #b\n3: Load #c\n"
            "4: Add 1, 2\n5: Add 4, 3\n6: Store #x, 5"
        )
        with pytest.raises(AllocationError, match="spill pre-pass"):
            allocate_registers(block, num_registers=2)
        allocate_registers(block, num_registers=3)  # fits exactly

    def test_unused_result_frees_immediately(self):
        block = parse_block("1: Load #a\n2: Load #b\n3: Store #x, 2")
        allocation = allocate_registers(block, num_registers=1)
        assert allocation.num_registers_used == 1


class TestSpillPrePass:
    def _pressure_block(self):
        # With value reuse, s/t/u/a stay live across the later sums:
        # program-order pressure is 5 unspilled.
        source = (
            "s = a + b; t = c + d; u = e + f; "
            "x = s + t; y = x + u; z = y + a;"
        )
        block = lower_source(source, reuse_values=True)
        assert max_live(block) == 5
        return block

    def test_reduces_pressure_to_budget(self):
        block = self._pressure_block()
        for k in (3, 4, 5):
            report = insert_spill_code(block, k)
            assert max_live(report.block) <= k

    def test_preserves_semantics(self):
        block = self._pressure_block()
        memory = {v: i + 2 for i, v in enumerate("abcdef")}
        expected = run_block(block, memory).memory
        report = insert_spill_code(block, 3)
        got = run_block(report.block, memory).memory
        for var in "stuxyz":
            assert got[var] == expected[var]

    def test_spill_report_counts(self):
        report = insert_spill_code(self._pressure_block(), 3)
        assert report.spilled
        assert report.reloads > 0

    def test_no_spills_when_registers_suffice(self, figure3_block):
        report = insert_spill_code(figure3_block, 8)
        assert not report.spilled
        assert report.block.renumbered().tuples == figure3_block.renumbered().tuples

    def test_clean_loads_need_no_store(self):
        # All pressure comes from Loads of never-restored variables:
        # eviction is free, only reloads appear.
        source = "x = (a + b) + (c + d); y = (a + c) + (b + d);"
        block = lower_source(source, reuse_values=False)
        report = insert_spill_code(block, 3)
        assert max_live(report.block) <= 3
        assert report.spill_stores == 0

    def test_rejects_tiny_register_files(self, figure3_block):
        with pytest.raises(ValueError, match="at least 3"):
            insert_spill_code(figure3_block, 2)

    def test_spill_temporaries_cannot_collide_with_source_names(self):
        assert SPILL_PREFIX.startswith(".")

    def test_spilled_block_allocates_within_budget_in_program_order(self):
        block = self._pressure_block()
        report = insert_spill_code(block, 4)
        allocation = allocate_registers(report.block, num_registers=4)
        assert allocation.num_registers_used <= 4


@given(
    statements=st.integers(3, 14),
    seed=st.integers(0, 5_000),
    k=st.integers(3, 5),
)
@settings(max_examples=80, deadline=None)
def test_spill_pass_property(statements, seed, k):
    """For random programs: pressure <= k and semantics intact."""
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, 6, 3, seed, profile)
    block = lower_program(program, reuse_values=True)
    report = insert_spill_code(block, k)
    assert max_live(report.block) <= k
    memory = {f"v{i}": 3 * i + 1 for i in range(6)}
    expected = run_program(program, memory)
    got = run_block(report.block, memory).memory
    for var in program.variables_written():
        assert got[var] == expected[var]


@given(blocks(max_size=12))
@settings(max_examples=80, deadline=None)
def test_allocation_over_scheduled_order_is_conflict_free(block):
    """Allocate over an arbitrary optimal schedule and verify no two
    overlapping values share a register."""
    from repro.machine.presets import paper_simulation_machine

    dag = DependenceDAG(block)
    result = schedule_block(dag, paper_simulation_machine())
    order = result.best.order
    allocation = allocate_registers(block, order)
    ranges = live_ranges(block, order)
    values = list(allocation.registers)
    for i, a in enumerate(values):
        for b in values[i + 1 :]:
            if ranges[a].overlaps(ranges[b]):
                assert allocation.register_of(a) != allocation.register_of(b)
