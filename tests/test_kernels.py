"""Tests for the realistic-kernel suite and its experiment."""

import pytest

from repro.driver import compile_source
from repro.experiments import kernels as kernels_experiment
from repro.machine.presets import PRESETS, get_machine
from repro.synth.kernels import KERNELS, KERNELS_BY_NAME, get_kernel

DETERMINISTIC = [n for n in PRESETS if get_machine(n).is_deterministic]


class TestSuiteIntegrity:
    def test_names_unique(self):
        assert len(KERNELS_BY_NAME) == len(KERNELS)

    def test_get_kernel(self):
        assert get_kernel("dot4").name == "dot4"
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("fft")

    def test_every_kernel_has_complete_memory(self, sim_machine):
        """The provided memory must cover every read variable, so the
        kernels are verifiable out of the box."""
        for kernel in KERNELS:
            result = compile_source(
                kernel.source, sim_machine, verify_memory=kernel.memory
            )
            assert result.search.completed, kernel.name


@pytest.mark.parametrize("machine_name", DETERMINISTIC)
def test_kernels_verify_on_every_machine(machine_name):
    machine = get_machine(machine_name)
    for kernel in KERNELS:
        compile_source(kernel.source, machine, verify_memory=kernel.memory)


class TestKernelExperiment:
    def test_run_and_render(self):
        result = kernels_experiment.run()
        assert len(result.rows) == len(KERNELS)
        text = result.render()
        assert "dot4" in text and "horner5" in text
        assert "speedup" in result.csv()

    def test_all_provably_optimal(self):
        result = kernels_experiment.run()
        assert all(r.optimal_proved for r in result.rows)

    def test_optimal_never_slower_than_any_scheduler(self):
        result = kernels_experiment.run()
        for row in result.rows:
            assert row.cycles["optimal"] == min(row.cycles.values()), row.kernel

    def test_serial_chain_gains_nothing(self):
        """Horner's rule is one dependence chain: no schedule can hide
        its multiplier latency — the paper's limiting case."""
        result = kernels_experiment.run()
        horner = next(r for r in result.rows if r.kernel == "horner5")
        assert horner.speedup == 1.0

    def test_parallel_kernels_gain_substantially(self):
        result = kernels_experiment.run()
        fir = next(r for r in result.rows if r.kernel == "fir3")
        assert fir.speedup > 1.5
