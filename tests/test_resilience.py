"""Tests for the fault-tolerance layer: budgets, journal, supervision.

The chaos suite (worker crash/hang/corrupt under the live parallel
engine, kill-and-resume) lives in ``tests/test_chaos.py``; this file
covers the resilience building blocks themselves plus the degradation
ladder's per-rung record contract.
"""

import dataclasses
import json
import os
import pickle

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text
from repro.machine.presets import paper_simulation_machine
from repro.experiments.runner import (
    BlockRecord,
    list_seed_record,
    run_population,
    schedule_generated_block,
)
from repro.resilience import (
    LADDER,
    STEP_CURTAILED,
    STEP_LIST_SEED,
    STEP_OPTIMAL,
    STEP_SPLIT,
    BlockBudget,
    BudgetManager,
    ChunkSupervisor,
    FaultPlan,
    Journal,
    JournalError,
    SupervisorConfig,
    load_journal,
    validate_records,
)
from repro.sched.search import SearchOptions
from repro.synth.population import generate_from_params, sample_population_params
from repro.telemetry import Telemetry

SEED = 7
MACHINE = paper_simulation_machine()


def _block(index: int):
    params = list(sample_population_params(index + 1, master_seed=SEED))[index]
    return generate_from_params(params)


def _record(index: int, **kwargs) -> BlockRecord:
    return schedule_generated_block(
        index, _block(index), MACHINE, kwargs.pop("options", SearchOptions()),
        verify=True, **kwargs
    )


# ----------------------------------------------------------------------
# ioutil
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_and_replace(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "first\n")
        assert path.read_text() == "first\n"
        atomic_write_text(str(path), "second\n")
        assert path.read_text() == "second\n"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_text(str(tmp_path / "a.txt"), "x")
        atomic_write_json(str(tmp_path / "b.json"), {"k": 1})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.txt", "b.json"]

    def test_json_payload_round_trips(self, tmp_path):
        path = tmp_path / "payload.json"
        atomic_write_json(str(path), {"nested": {"a": [1, 2]}, "b": None})
        assert json.loads(path.read_text()) == {"nested": {"a": [1, 2]}, "b": None}

    def test_failed_write_leaves_original(self, tmp_path):
        path = tmp_path / "keep.json"
        atomic_write_json(str(path), {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert json.loads(path.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["keep.json"]


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
CONFIG = {"blocks": 4, "curtail": 100, "master_seed": SEED}


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.journal")
        records = [_record(0), _record(1)]
        with Journal.create(path, CONFIG) as journal:
            journal.append(records)
            assert journal.appended == 2
        header, loaded, _ = load_journal(path, expect_config=CONFIG)
        assert header["config"] == CONFIG
        assert loaded == {0: records[0], 1: records[1]}
        # elapsed_seconds round-trips too (it is excluded from equality).
        assert loaded[0].elapsed_seconds == records[0].elapsed_seconds

    def test_resume_returns_finished_records(self, tmp_path):
        path = str(tmp_path / "run.journal")
        records = [_record(0), _record(1)]
        with Journal.create(path, CONFIG) as journal:
            journal.append(records)
        journal, done = Journal.resume(path, CONFIG)
        with journal:
            assert done == {0: records[0], 1: records[1]}
            journal.append([_record(2)])
        _, final, _ = load_journal(path)
        assert sorted(final) == [0, 1, 2]

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.journal")
        journal, done = Journal.resume(path, CONFIG)
        journal.close()
        assert done == {}
        assert os.path.exists(path)

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with Journal.create(path, CONFIG) as journal:
            journal.append([_record(0)])
        with open(path, "a") as fh:
            fh.write('{"index": 1, "size"')  # crash mid-append
        _, loaded, valid = load_journal(path)
        assert sorted(loaded) == [0]
        journal, done = Journal.resume(path, CONFIG)
        journal.close()
        assert sorted(done) == [0]
        assert os.path.getsize(path) == valid  # tail physically gone

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with Journal.create(path, CONFIG) as journal:
            journal.append([_record(0)])
        blob = open(path).read()
        with open(path, "w") as fh:
            fh.write(blob.replace('"schema"', '"sch', 1))
        with pytest.raises(JournalError, match="corrupt|schema"):
            load_journal(path)

    def test_config_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.journal")
        Journal.create(path, CONFIG).close()
        other = dict(CONFIG, master_seed=1990)
        with pytest.raises(JournalError, match="different run"):
            Journal.resume(path, other)
        with pytest.raises(JournalError, match="master_seed"):
            load_journal(path, expect_config=other)

    def test_unknown_record_field_rejected(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with Journal.create(path, CONFIG) as journal:
            journal.append([_record(0)])
            payload = dataclasses.asdict(_record(1))
            payload["bogus"] = 1
            journal._fh.write(json.dumps(payload) + "\n")
            # An interior unknown-field line (not a torn tail) must raise.
            journal.append([_record(2)])
        with pytest.raises(JournalError, match="bogus"):
            load_journal(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            load_journal(str(path))


# ----------------------------------------------------------------------
# Budget manager
# ----------------------------------------------------------------------
class TestBudgetManager:
    def test_block_clamps(self):
        budget = BudgetManager(
            block=BlockBudget(wall_clock=2.0, omega_cap=500, memo_cap=100)
        )
        options = budget.options_for_block(SearchOptions(curtail=50_000))
        assert options.curtail == 500
        assert options.time_limit == 2.0
        assert options.max_memo_entries == 100

    def test_no_budget_returns_same_options(self):
        options = SearchOptions()
        assert BudgetManager().options_for_block(options) is options

    def test_caller_tighter_limits_win(self):
        budget = BudgetManager(block=BlockBudget(wall_clock=10.0, omega_cap=5000))
        options = budget.options_for_block(
            SearchOptions(curtail=100, time_limit=0.5)
        )
        assert options.curtail == 100
        assert options.time_limit == 0.5

    def test_run_omega_cap_exhaustion(self):
        budget = BudgetManager(run_omega_cap=100).start()
        assert budget.run_exhausted() is None
        budget.charge(40)
        assert budget.run_exhausted() is None
        budget.charge(60)
        assert budget.run_exhausted() == "omega"

    def test_run_wall_clock_exhaustion(self):
        budget = BudgetManager(run_wall_clock=1e-9).start()
        assert budget.run_exhausted() == "wall-clock"
        # Remaining run time also clamps the next block's deadline
        # (floored at a tiny positive value — never an invalid limit).
        options = budget.options_for_block(SearchOptions())
        assert options.time_limit == pytest.approx(1e-9)

    def test_unarmed_budget_never_exhausts(self):
        budget = BudgetManager(run_wall_clock=1e-9)  # start() never called
        assert budget.remaining_run_seconds() is None
        assert budget.run_exhausted() is None

    def test_pickle_resets_omega_but_keeps_deadline(self):
        budget = BudgetManager(run_wall_clock=3600.0, run_omega_cap=100).start()
        budget.charge(99)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.omega_spent == 0  # accounting stays with the parent
        assert clone._deadline == budget._deadline  # deadline crosses
        assert budget.omega_spent == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockBudget(wall_clock=0)
        with pytest.raises(ValueError):
            BlockBudget(omega_cap=0)
        with pytest.raises(ValueError):
            BudgetManager(run_wall_clock=-1)
        with pytest.raises(ValueError):
            BudgetManager(split_window=0)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=3, crash_rate=0.3, hang_rate=0.2, corrupt_rate=0.1)
        first = [plan.decide(cid, a) for cid in range(50) for a in range(2)]
        again = [plan.decide(cid, a) for cid in range(50) for a in range(2)]
        assert first == again
        assert any(f == "crash" for f in first)
        assert any(f == "hang" for f in first)
        assert any(f == "corrupt" for f in first)
        assert any(f is None for f in first)

    def test_fault_allowance_bounds_attempts(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults_per_chunk=2)
        assert plan.decide(5, 0) == "crash"
        assert plan.decide(5, 1) == "crash"
        assert plan.decide(5, 2) is None  # retries converge to fault-free

    def test_parse(self):
        plan = FaultPlan.parse("crash=0.1,hang=0.05,seed=9,max-faults=3")
        assert plan == FaultPlan(
            seed=9, crash_rate=0.1, hang_rate=0.05, max_faults_per_chunk=3
        )

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="bad --chaos entry"):
            FaultPlan.parse("explode=1")
        with pytest.raises(ValueError, match="bad --chaos value"):
            FaultPlan.parse("crash=lots")
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan.parse("crash=0.9,hang=0.9")
        with pytest.raises(ValueError, match="within"):
            FaultPlan(crash_rate=1.5)


# ----------------------------------------------------------------------
# Supervision policy
# ----------------------------------------------------------------------
class TestSupervisorPolicy:
    def test_backoff_is_capped_exponential(self):
        config = SupervisorConfig(backoff_base=0.25, backoff_cap=1.0)
        assert [config.backoff_delay(a) for a in range(1, 5)] == [
            0.25, 0.5, 1.0, 1.0,
        ]

    def test_retry_then_poison(self):
        sup = ChunkSupervisor(2, SupervisorConfig(max_retries=2, backoff_base=0.0))
        assert sup.next_ready(0.0) == 0
        assert sup.note_failure(0, "crash", 0.0) == "retry"
        assert sup.note_failure(0, "crash", 0.0) == "retry"
        assert sup.note_failure(0, "crash", 0.0) == "poison"
        assert sup.poisoned == {0}
        assert not sup.finished()
        sup.note_success(1)
        assert sup.finished()
        assert len(sup.failures) == 3

    def test_backoff_gates_requeue(self):
        sup = ChunkSupervisor(1, SupervisorConfig(backoff_base=10.0))
        sup.next_ready(0.0)
        sup.note_failure(0, "hang", now=100.0)
        assert sup.next_ready(100.0) is None  # still backing off
        assert sup.sleep_hint(100.0) == pytest.approx(8.0)  # capped
        assert sup.next_ready(110.0) == 0

    def test_drain_pending(self):
        sup = ChunkSupervisor(3, SupervisorConfig())
        assert sup.next_ready(0.0) == 0
        assert sorted(sup.drain_pending()) == [1, 2]
        assert sup.next_ready(0.0) is None

    def test_validate_records(self):
        good = [_record(0), _record(1)]
        assert validate_records(good, [0, 1]) is None
        assert "not a record list" in validate_records("junk", [0])
        assert "assigned blocks" in validate_records(good, [0, 2])
        bad_nops = [dataclasses.replace(good[0], final_nops=good[0].seed_nops + 1)]
        assert "worse" in validate_records(bad_nops, [0])
        negative = [dataclasses.replace(good[0], omega_calls=-1)]
        assert "negative" in validate_records(negative, [0])
        conflicted = [dataclasses.replace(good[0], completed=True, degraded=True)]
        assert "exclusive" in validate_records(conflicted, [0])
        unladdered = [dataclasses.replace(good[0], ladder="rocket")]
        assert "ladder" in validate_records(unladdered, [0])


# ----------------------------------------------------------------------
# Degradation-ladder rung regressions (both engines, all certified)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "reference"])
class TestLadderRungs:
    """One pinned regression per rung.

    Block indexes are population members of master seed 7 chosen so each
    rung engages deterministically: the wall-clock rungs use a 1ns block
    deadline, which is always blown by the first in-search check on any
    host, so the outcome does not depend on machine speed.  Every record
    passes ``verify=True`` — the published schedule is certified by the
    independent checker regardless of which rung produced it.
    """

    def test_optimal_search(self, engine):
        record = _record(5, options=SearchOptions(engine=engine))
        assert record.ladder == STEP_OPTIMAL
        assert record.completed and not record.degraded
        assert record.final_nops == 0 and record.seed_nops == 1
        assert record.omega_calls == 30

    def test_curtailed_search(self, engine):
        record = _record(11, options=SearchOptions(curtail=120, engine=engine))
        assert record.ladder == STEP_CURTAILED
        assert not record.completed and not record.degraded
        assert record.omega_calls == 120  # stopped exactly at lambda
        assert record.final_nops == 2 and record.seed_nops == 8
        assert record.final_nops <= record.seed_nops

    def test_split_windows(self, engine):
        budget = BudgetManager(block=BlockBudget(wall_clock=1e-9)).start()
        record = _record(
            1, options=SearchOptions(engine=engine), budget=budget
        )
        assert record.ladder == STEP_SPLIT
        assert record.degraded and not record.completed
        assert record.seed_nops == 5 and record.final_nops == 3
        assert record.omega_calls > 0  # split windows were searched

    def test_list_seed(self, engine):
        budget = BudgetManager(
            block=BlockBudget(wall_clock=1e-9), split_fallback=False
        ).start()
        record = _record(
            1, options=SearchOptions(engine=engine), budget=budget
        )
        assert record.ladder == STEP_LIST_SEED
        assert record.degraded and not record.completed
        assert record.final_nops == record.seed_nops == 5

    def test_engines_agree_per_rung(self, engine):
        # The rung records above are engine-independent bit for bit
        # (elapsed_seconds excluded); spot-check against the fast engine.
        if engine == "fast":
            pytest.skip("comparison target")
        for build in (
            lambda e: _record(5, options=SearchOptions(engine=e)),
            lambda e: _record(11, options=SearchOptions(curtail=120, engine=e)),
            lambda e: _record(
                1,
                options=SearchOptions(engine=e),
                budget=BudgetManager(block=BlockBudget(wall_clock=1e-9)).start(),
            ),
        ):
            assert build("reference") == build("fast")


class TestLadderIntegration:
    def test_every_rung_value_is_in_ladder(self):
        assert set(LADDER) == {
            STEP_OPTIMAL, STEP_CURTAILED, STEP_SPLIT, STEP_LIST_SEED,
        }

    def test_list_seed_record_matches_exhausted_budget(self):
        gb = _block(1)
        direct = list_seed_record(1, gb, MACHINE)
        budget = BudgetManager(run_omega_cap=1).start()
        budget.charge(1)
        via_budget = schedule_generated_block(
            1, gb, MACHINE, SearchOptions(), budget=budget
        )
        assert direct == via_budget
        assert via_budget.omega_calls == 0  # honestly: no search ran

    def test_run_budget_exhaustion_mid_population(self):
        telemetry = Telemetry()
        budget = BudgetManager(run_omega_cap=1).start()
        records = run_population(
            6, master_seed=SEED, telemetry=telemetry, budget=budget
        )
        assert len(records) == 6
        # First block runs (cap not yet hit), the rest drop to seeds.
        assert records[0].ladder == STEP_OPTIMAL
        assert all(r.ladder == STEP_LIST_SEED for r in records[1:])
        assert telemetry.counters["resilience.run_budget_exhausted"] == 5
        assert telemetry.counters[f"resilience.ladder.{STEP_LIST_SEED}"] == 5

    def test_ladder_counts_cover_population(self):
        telemetry = Telemetry()
        records = run_population(10, master_seed=SEED, telemetry=telemetry)
        laddered = sum(
            n for name, n in telemetry.counters.items()
            if name.startswith("resilience.ladder.")
        )
        assert laddered == len(records) == 10
        assert all(r.ladder in LADDER for r in records)

    def test_journal_skip_counts(self):
        telemetry = Telemetry()
        full = run_population(6, master_seed=SEED)
        done = {r.index: r for r in full[:4]}
        fresh = []
        resumed = run_population(
            6,
            master_seed=SEED,
            telemetry=telemetry,
            done=done,
            on_record=fresh.append,
        )
        assert resumed == full
        assert [r.index for r in fresh] == [4, 5]
        assert telemetry.counters["resilience.journal_blocks_skipped"] == 4
        assert telemetry.counters["blocks.scheduled"] == 2
