"""Unit tests for pipeline and machine descriptions."""

import pytest

from repro.ir.ops import Opcode
from repro.machine.machine import (
    UNPIPELINED_LATENCY,
    MachineDescription,
    MachineValidationError,
)
from repro.machine.pipeline import PipelineDesc
from repro.machine.presets import PRESETS, get_machine, paper_example_machine


class TestPipelineDesc:
    def test_valid(self):
        p = PipelineDesc("loader", 1, latency=2, enqueue_time=1)
        assert p.is_pipelined

    def test_unpipelined_unit(self):
        p = PipelineDesc("mult", 1, latency=5, enqueue_time=5)
        assert not p.is_pipelined

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(ident=0, latency=1, enqueue_time=1),
            dict(ident=1, latency=0, enqueue_time=1),
            dict(ident=1, latency=2, enqueue_time=0),
            dict(ident=1, latency=2, enqueue_time=3),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PipelineDesc("u", kwargs["ident"], kwargs["latency"], kwargs["enqueue_time"])


class TestMachineDescription:
    def test_paper_tables_4_and_5(self, sim_machine):
        loader = sim_machine.pipeline(1)
        assert (loader.latency, loader.enqueue_time) == (2, 1)
        multiplier = sim_machine.pipeline(2)
        assert (multiplier.latency, multiplier.enqueue_time) == (4, 2)
        assert sim_machine.sigma(Opcode.LOAD) == 1
        assert sim_machine.sigma(Opcode.MUL) == 2
        assert sim_machine.sigma(Opcode.ADD) is None
        assert sim_machine.is_deterministic

    def test_paper_tables_2_and_3(self, example_machine):
        assert example_machine.pipelines_for(Opcode.LOAD) == {1, 2}
        assert example_machine.pipelines_for(Opcode.ADD) == {3, 4}
        assert example_machine.pipelines_for(Opcode.MUL) == {5}
        assert not example_machine.is_deterministic

    def test_sigma_rejects_multi_pipeline_ops(self, example_machine):
        with pytest.raises(MachineValidationError, match="fixed_assignment"):
            example_machine.sigma(Opcode.ADD)

    def test_fixed_assignment_pins_lowest(self, example_machine):
        pinned = example_machine.fixed_assignment()
        assert pinned.is_deterministic
        assert pinned.sigma(Opcode.ADD) == 3
        assert pinned.sigma(Opcode.LOAD) == 1
        # Already-deterministic machines pass through unchanged.
        assert pinned.fixed_assignment() is pinned

    def test_latency_of_unpipelined_op(self, sim_machine):
        assert sim_machine.latency_of(Opcode.ADD) == UNPIPELINED_LATENCY
        assert sim_machine.latency_of(Opcode.MUL) == 4
        assert sim_machine.enqueue_time_of(Opcode.ADD) == 0
        assert sim_machine.enqueue_time_of(Opcode.MUL) == 2

    def test_duplicate_pipeline_ids_rejected(self):
        with pytest.raises(MachineValidationError, match="duplicate"):
            MachineDescription(
                "bad",
                [PipelineDesc("a", 1, 2, 1), PipelineDesc("b", 1, 2, 1)],
                {},
            )

    def test_unknown_pipeline_in_mapping_rejected(self):
        with pytest.raises(MachineValidationError, match="unknown pipeline"):
            MachineDescription(
                "bad", [PipelineDesc("a", 1, 2, 1)], {Opcode.LOAD: {9}}
            )

    def test_unknown_pipeline_lookup(self, sim_machine):
        with pytest.raises(KeyError):
            sim_machine.pipeline(99)

    def test_max_latency_and_enqueue(self, sim_machine):
        assert sim_machine.max_latency == 4
        assert sim_machine.max_enqueue_time == 2

    def test_describe_renders_both_tables(self, sim_machine):
        text = sim_machine.describe()
        assert "Pipeline description table" in text
        assert "loader" in text and "multiplier" in text
        assert "Load" in text and "{1}" in text


class TestPresets:
    def test_registry_is_complete(self):
        for name in PRESETS:
            machine = get_machine(name)
            assert machine.pipelines or name == "empty"

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("pdp-11")

    def test_presets_are_fresh_instances(self):
        assert paper_example_machine() is not paper_example_machine()
