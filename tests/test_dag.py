"""Unit and property tests for the dependence DAG."""

import itertools

from hypothesis import given, settings

from repro.ir.block import BasicBlock
from repro.ir.dag import COUNT_CAPPED, DependenceDAG
from repro.ir.textual import parse_block
from repro.ir.tuples import add, const, load

from .strategies import blocks


class TestEdgeKinds:
    def test_flow_through_refs(self, figure3_dag):
        assert 1 in figure3_dag.rho(4)
        assert 3 in figure3_dag.rho(4)
        assert 4 in figure3_dag.rho(5)

    def test_load_after_store_is_flow(self):
        dag = DependenceDAG(
            parse_block("1: Const 1\n2: Store #a, 1\n3: Load #a")
        )
        kinds = {(e.producer, e.consumer): e.kind for e in dag.edges}
        assert kinds[(2, 3)] == "flow"

    def test_store_after_load_is_anti(self, figure3_dag):
        kinds = {(e.producer, e.consumer): e.kind for e in figure3_dag.edges}
        assert kinds[(3, 5)] == "anti"

    def test_store_after_store_is_output(self):
        dag = DependenceDAG(
            parse_block("1: Const 1\n2: Store #a, 1\n3: Const 2\n4: Store #a, 3")
        )
        kinds = {(e.producer, e.consumer): e.kind for e in dag.edges}
        assert kinds[(2, 4)] == "output"

    def test_independent_loads_share_no_edge(self):
        dag = DependenceDAG(parse_block("1: Load #a\n2: Load #a\n3: Load #b"))
        assert not dag.edges

    def test_no_duplicate_edges(self):
        # Tuple 3 uses tuple 1 twice: one edge, not two.
        dag = DependenceDAG(BasicBlock([const(1, 2), add(2, 1, 1)]))
        assert len(dag.edges) == 1


class TestBoundsAndStructure:
    def test_earliest_counts_ancestors(self, figure3_dag):
        # Figure 3: Store #a (5) needs Mul (4), which needs Const (1) and
        # Load (3); the anti edge 3->5 adds nothing new.
        assert figure3_dag.earliest(1) == 0
        assert figure3_dag.earliest(4) == 2
        assert figure3_dag.earliest(5) == 3

    def test_latest_counts_descendants(self, figure3_dag):
        n = len(figure3_dag)
        assert figure3_dag.latest(5) == n - 1  # a sink
        assert figure3_dag.latest(1) == n - 1 - len(figure3_dag.descendants[1])

    def test_roots_and_sinks(self, figure3_dag):
        assert figure3_dag.roots == (1, 3)
        assert figure3_dag.sinks == (2, 5)

    def test_heights_and_depths(self, figure3_dag):
        assert figure3_dag.heights[5] == 0
        assert figure3_dag.heights[1] == 2  # 1 -> 4 -> 5
        assert figure3_dag.depths[1] == 0
        assert figure3_dag.depths[5] == 2

    def test_critical_path(self, figure3_dag):
        assert figure3_dag.critical_path_length == 3  # 1/3 -> 4 -> 5

    def test_empty_block(self):
        dag = DependenceDAG(BasicBlock([]))
        assert len(dag) == 0
        assert dag.count_legal_orders() == 1
        assert dag.critical_path_length == 0


class TestLegalOrders:
    def test_program_order_is_always_legal(self, figure3_dag):
        assert figure3_dag.is_legal_order(figure3_dag.idents)

    def test_illegal_order_detected(self, figure3_dag):
        assert not figure3_dag.is_legal_order((4, 1, 3, 2, 5))

    def test_non_permutation_is_illegal(self, figure3_dag):
        assert not figure3_dag.is_legal_order((1, 2, 3))
        assert not figure3_dag.is_legal_order((1, 1, 2, 3, 4))

    def test_enumeration_matches_brute_force(self, figure3_dag):
        brute = {
            perm
            for perm in itertools.permutations(figure3_dag.idents)
            if figure3_dag.is_legal_order(perm)
        }
        enumerated = set(figure3_dag.iter_legal_orders())
        assert enumerated == brute
        assert figure3_dag.count_legal_orders() == len(brute)

    def test_enumeration_limit(self, figure3_dag):
        some = list(figure3_dag.iter_legal_orders(limit=3))
        assert len(some) == 3

    def test_count_cap(self):
        # 12 independent loads: 12! orders, far beyond a cap of 1000.
        block = BasicBlock([load(i, f"v{i}") for i in range(1, 13)])
        dag = DependenceDAG(block)
        assert dag.count_legal_orders(cap=1000) == COUNT_CAPPED

    def test_chain_has_single_order(self):
        text = "1: Load #a\n2: Neg 1\n3: Neg 2\n4: Store #a, 3"
        dag = DependenceDAG(parse_block(text))
        assert dag.count_legal_orders() == 1
        assert list(dag.iter_legal_orders()) == [(1, 2, 3, 4)]


class TestNetworkxExport:
    def test_roundtrip(self, figure3_dag):
        g = figure3_dag.to_networkx()
        assert set(g.nodes) == set(figure3_dag.idents)
        assert g.number_of_edges() == len(figure3_dag.edges)
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)


@given(blocks(max_size=7))
@settings(max_examples=60)
def test_count_matches_enumeration(block):
    dag = DependenceDAG(block)
    count = dag.count_legal_orders()
    enumerated = sum(1 for _ in dag.iter_legal_orders())
    assert count == enumerated


@given(blocks(max_size=10))
@settings(max_examples=60)
def test_bounds_bracket_every_legal_order(block):
    """earliest/latest are valid position bounds in every legal order."""
    dag = DependenceDAG(block)
    for order in itertools.islice(dag.iter_legal_orders(), 20):
        position = {ident: pos for pos, ident in enumerate(order)}
        for ident in dag.idents:
            assert dag.earliest(ident) <= position[ident] <= dag.latest(ident)


@given(blocks(max_size=10))
@settings(max_examples=60)
def test_transitive_sets_are_consistent(block):
    dag = DependenceDAG(block)
    for ident in dag.idents:
        for anc in dag.ancestors[ident]:
            assert ident in dag.descendants[anc]
        for p in dag.rho(ident):
            assert p in dag.ancestors[ident]


class TestDotExport:
    def test_dot_structure(self, figure3_dag):
        dot = figure3_dag.to_dot()
        assert dot.startswith("digraph")
        assert dot.count("shape=box") == 5
        assert "n1 -> n4" in dot
        assert "style=dashed" in dot  # the anti edge 3 -> 5
        assert dot.rstrip().endswith("}")

    def test_dot_escapes_labels(self):
        dot = DependenceDAG(parse_block('1: Const "15"')).to_dot()
        assert '\\"15\\"' in dot
