"""The production-hardened service: worker pool, chaos, admission, drain.

The service-level invariant under test mirrors the chunk-level one in
``test_resilience.py``, lifted one layer up: **every HTTP response is
either certified-identical to a fault-free run or explicitly degraded/
shed** — a worker crash, hang, or corrupted reply may cost latency and
provenance (``worker_retries``), never correctness, and never a 500.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.machine.presets import get_machine
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisorConfig
from repro.sched.multi import first_pipeline_assignment
from repro.sched.search import SearchOptions
from repro.service import (
    PoolSaturated,
    ScheduleCache,
    SchedulingService,
    ServiceClient,
    ServiceClientError,
    WorkerPool,
    create_server,
)
from repro.service.pool import PoolJob
from repro.service.server import SCHEMA
from repro.telemetry import Telemetry
from repro.verify.certificate import check_schedule

OPTIONS = SearchOptions(curtail=10_000)

BLOCKS = [
    "1: Load #a\n2: Const 7\n3: Mul 1, 2\n4: Add 3, 1\n5: Store #a, 4",
    "1: Load #x\n2: Load #y\n3: Add 1, 2\n4: Store #z, 3",
    "1: Const 1\n2: Const 2\n3: Add 1, 2\n4: Mul 3, 3\n5: Store #o, 4",
]


def _entry_core(entry):
    """An entry minus the provenance fields faults may legitimately vary."""
    return {
        k: v for k, v in entry.items() if k not in ("cache", "worker_retries")
    }


def _certify_entry(tuples, machine, entry):
    dag = DependenceDAG(parse_block(tuples))
    cert = check_schedule(
        dag.block,
        machine,
        tuple(entry["order"]),
        tuple(entry["etas"]),
        assignment=first_pipeline_assignment(dag, machine),
    )
    assert cert.ok, cert.summary()
    assert cert.required_nops == entry["total_nops"]


def _pooled_service(
    workers=2,
    fault_plan=None,
    cache=None,
    hang_timeout=60.0,
    max_retries=2,
    queue_limit=32,
    pool_queue_limit=256,
):
    pool = WorkerPool(
        workers,
        cache=cache,
        config=SupervisorConfig(
            hang_timeout=hang_timeout,
            max_retries=max_retries,
            backoff_base=0.05,
            backoff_cap=0.2,
        ),
        fault_plan=fault_plan,
        queue_limit=pool_queue_limit,
        hang_timeout=hang_timeout,
    ).start()
    return SchedulingService(
        cache=cache, options=OPTIONS, pool=pool, queue_limit=queue_limit
    )


@pytest.fixture
def baseline_reply():
    """The fault-free inline answer every chaos variant must reproduce."""
    service = SchedulingService(cache=None, options=OPTIONS)
    return service.schedule_batch(
        {"schema": SCHEMA, "machine": "paper-simulation",
         "blocks": [{"tuples": t} for t in BLOCKS]}
    )


def _run_batch(service, **overrides):
    payload = {
        "schema": SCHEMA,
        "machine": "paper-simulation",
        "blocks": [{"tuples": t} for t in BLOCKS],
    }
    payload.update(overrides)
    try:
        return service.schedule_batch(payload)
    finally:
        if service.pool is not None:
            service.pool.stop(drain_timeout=5.0)


class TestWorkerPool:
    def test_pooled_round_trip_matches_inline(self, baseline_reply):
        reply = _run_batch(_pooled_service(workers=2))
        assert reply["schema"] == SCHEMA
        assert [_entry_core(e) for e in reply["entries"]] == [
            _entry_core(e) for e in baseline_reply["entries"]
        ]
        assert all(e["worker_retries"] == 0 for e in reply["entries"])

    def test_worker_crash_recovery_bit_identical(self, baseline_reply):
        # Satellite 4: a seeded FaultPlan kills a worker mid-request;
        # the reply must be bit-identical to the fault-free run, with
        # the retries visible only in provenance and telemetry.
        plan = FaultPlan(seed=7, crash_rate=1.0, max_faults_per_chunk=1)
        service = _pooled_service(workers=2, fault_plan=plan)
        reply = _run_batch(service)
        assert [_entry_core(e) for e in reply["entries"]] == [
            _entry_core(e) for e in baseline_reply["entries"]
        ]
        assert all(e["worker_retries"] == 1 for e in reply["entries"])
        assert service.telemetry.counters["service.pool.crashes"] == len(BLOCKS)
        assert service.telemetry.counters["service.pool.retries"] == len(BLOCKS)
        assert "service.pool.degraded" not in service.telemetry.counters

    def test_corrupt_reply_detected_and_retried(self, baseline_reply):
        plan = FaultPlan(seed=11, corrupt_rate=1.0, max_faults_per_chunk=1)
        service = _pooled_service(workers=2, fault_plan=plan)
        reply = _run_batch(service)
        assert [_entry_core(e) for e in reply["entries"]] == [
            _entry_core(e) for e in baseline_reply["entries"]
        ]
        assert (
            service.telemetry.counters["service.pool.corrupt_replies"]
            == len(BLOCKS)
        )

    def test_hung_worker_killed_and_retried(self, baseline_reply):
        plan = FaultPlan(
            seed=3, hang_rate=1.0, hang_seconds=30.0, max_faults_per_chunk=1
        )
        service = _pooled_service(workers=2, fault_plan=plan, hang_timeout=1.0)
        reply = _run_batch(service)
        assert [_entry_core(e) for e in reply["entries"]] == [
            _entry_core(e) for e in baseline_reply["entries"]
        ]
        assert service.telemetry.counters["service.pool.hangs"] == len(BLOCKS)

    def test_persistent_crash_degrades_to_list_seed(self):
        # Every attempt crashes: past max_retries the entry degrades to
        # the list-schedule seed with explicit provenance — never a 500,
        # never a silent wrong answer (the seed still certifies).
        plan = FaultPlan(seed=5, crash_rate=1.0, max_faults_per_chunk=99)
        service = _pooled_service(workers=2, fault_plan=plan, max_retries=1)
        reply = _run_batch(service)
        machine = get_machine("paper-simulation")
        for tuples, entry in zip(BLOCKS, reply["entries"]):
            assert entry["degraded"] is True
            assert entry["completed"] is False
            assert entry["ladder"] == "list-seed"
            assert entry["worker_retries"] == 2  # max_retries + 1 attempts
            _certify_entry(tuples, machine, entry)
        assert reply["stats"]["degraded"] == len(BLOCKS)

    def test_only_workers_write_the_cache(self, tmp_path):
        cache = ScheduleCache(path=str(tmp_path / "store"))
        service = _pooled_service(workers=2, cache=cache)
        reply = _run_batch(service)
        assert [e["cache"] for e in reply["entries"]] == ["miss"] * len(BLOCKS)
        # The workers wrote through the shared store: a fresh cache over
        # the same directory serves every block without searching.
        local = ScheduleCache(path=str(tmp_path / "store"))
        machine = get_machine("paper-simulation")
        for tuples in BLOCKS:
            _, status = local.schedule_with_status(
                DependenceDAG(parse_block(tuples)), machine, OPTIONS
            )
            assert status == "hit"

    def test_pool_rejects_oversized_batch(self):
        pool = WorkerPool(1, queue_limit=2)
        jobs = [
            PoolJob("b", BLOCKS[0], "paper-simulation", OPTIONS, None,
                    (1, 2, 3, 4, 5), hang_timeout=60.0)
            for _ in range(3)
        ]
        with pytest.raises(PoolSaturated) as exc:
            pool.submit(jobs)
        assert exc.value.retry_after >= 1.0


class TestAdmissionControl:
    def test_429_with_retry_after(self):
        # A batch larger than the pool queue saturates admission
        # atomically — the whole request is shed with a structured 429.
        service = _pooled_service(workers=1, pool_queue_limit=2)
        server, url = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(url, max_retries=0)
            with pytest.raises(ServiceClientError) as exc:
                client.schedule([BLOCKS[0]] * 3, "paper-simulation")
            assert exc.value.status == 429
            assert exc.value.retry_after is not None
            assert exc.value.retry_after >= 1.0
            assert (
                service.telemetry.counters["service.shed_requests"] == 1
            )
            # The daemon is still healthy and serves the next request.
            reply = client.schedule([BLOCKS[0]], "paper-simulation")
            assert reply["entries"][0]["completed"] is True
        finally:
            server.shutdown()
            server.server_close()
            service.pool.stop(drain_timeout=5.0)
            thread.join(timeout=5)


class TestDeadlines:
    def test_exhausted_deadline_sheds_with_provenance(self):
        service = SchedulingService(cache=None, options=OPTIONS)
        reply = service.schedule_batch(
            {"schema": SCHEMA, "machine": "paper-simulation",
             "blocks": [{"tuples": t} for t in BLOCKS],
             "deadline": 1e-6}
        )
        machine = get_machine("paper-simulation")
        shed = [e for e in reply["entries"] if e["shed"]]
        # The first block may sneak under the deadline; the rest shed.
        assert len(shed) >= len(BLOCKS) - 1
        for entry in shed:
            assert entry["degraded"] is True
            assert entry["ladder"] == "list-seed"
        for tuples, entry in zip(BLOCKS, reply["entries"]):
            _certify_entry(tuples, machine, entry)
        assert reply["stats"]["shed"] == len(shed)

    def test_generous_deadline_is_invisible(self, baseline_reply):
        service = SchedulingService(cache=None, options=OPTIONS)
        reply = service.schedule_batch(
            {"schema": SCHEMA, "machine": "paper-simulation",
             "blocks": [{"tuples": t} for t in BLOCKS],
             "deadline": 300.0}
        )
        assert [_entry_core(e) for e in reply["entries"]] == [
            _entry_core(e) for e in baseline_reply["entries"]
        ]
        assert all(not e["shed"] for e in reply["entries"])

    @pytest.mark.parametrize("bad", [0, -1, "soon", float("inf"), True])
    def test_invalid_deadline_is_a_400(self, bad):
        from repro.service import ServiceError

        service = SchedulingService(options=OPTIONS)
        with pytest.raises(ServiceError):
            service.schedule_batch(
                {"schema": SCHEMA, "machine": "paper-simulation",
                 "blocks": [{"tuples": BLOCKS[0]}], "deadline": bad}
            )


@pytest.fixture
def raw_service():
    """An in-process daemon plus a raw-socket sender for malformed HTTP."""
    service = SchedulingService(cache=None, options=OPTIONS)
    server, url = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = url[len("http://"):].rsplit(":", 1)

    def send(raw, read_reply=True):
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(raw)
            if not read_reply:
                return b""
            sock.settimeout(10)
            chunks = []
            try:
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except socket.timeout:
                pass
            return b"".join(chunks)

    try:
        yield service, url, send
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestRequestBodyEdgeCases:
    """Malformed bodies get clean 4xx answers, never a traceback."""

    def test_missing_content_length(self, raw_service):
        _, _, send = raw_service
        reply = send(
            b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"Traceback" not in reply

    def test_invalid_content_length(self, raw_service):
        _, _, send = raw_service
        reply = send(
            b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: banana\r\n\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 400")

    def test_negative_content_length(self, raw_service):
        _, _, send = raw_service
        reply = send(
            b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: -5\r\n\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 400")

    def test_oversized_body_is_413_without_reading_it(self, raw_service):
        _, _, send = raw_service
        reply = send(
            b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 999999999\r\n\r\n" + b"x" * 1024
        )
        assert reply.startswith(b"HTTP/1.1 413")

    def test_disconnect_mid_body(self, raw_service):
        service, url, send = raw_service
        # Promise 1 MiB, send 10 bytes, hang up.  The daemon must log a
        # clean 400 path internally and keep serving.
        send(
            b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 1048576\r\n\r\n" + b"x" * 10,
            read_reply=False,
        )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if service.telemetry.counters.get("service.http.bad_bodies"):
                break
            time.sleep(0.02)
        assert service.telemetry.counters.get("service.http.bad_bodies", 0) >= 1
        client = ServiceClient(url)
        assert client.health()["ok"] is True
        reply = client.schedule([BLOCKS[0]], "paper-simulation")
        assert reply["entries"][0]["completed"] is True


class TestHealthEndpoints:
    def test_liveness_and_readiness_split(self):
        service = _pooled_service(workers=1)
        server, url = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(url, max_retries=0)
            assert client.live()["ok"] is True
            ready = client.ready()
            assert ready["ok"] is True
            assert ready["checks"]["workers"] is True
            assert ready["checks"]["engine"] is True
            # Draining: still alive, no longer ready (503).
            service.begin_drain()
            assert client.live()["ok"] is True
            with pytest.raises(ServiceClientError) as exc:
                client.ready()
            assert exc.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            service.pool.stop(drain_timeout=5.0)
            thread.join(timeout=5)


class TestCacheQuarantine:
    def _prime(self, tmp_path):
        store = str(tmp_path / "store")
        cache = ScheduleCache(path=store)
        dag = DependenceDAG(parse_block(BLOCKS[0]))
        machine = get_machine("paper-simulation")
        cache.schedule(dag, machine, OPTIONS)
        # Entries live in two-character shard directories.
        (path,) = [
            os.path.join(root, f)
            for root, _, files in os.walk(store)
            for f in files
            if f.endswith(".json")
        ]
        return store, path, dag, machine

    def test_torn_entry_is_quarantined_not_fatal(self, tmp_path, capsys):
        store, path, dag, machine = self._prime(tmp_path)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro-schedule-cache/1", "key"')  # torn
        telemetry = Telemetry()
        fresh = ScheduleCache(path=store)
        result, status = fresh.schedule_with_status(
            dag, machine, OPTIONS, telemetry=telemetry
        )
        assert status == "miss"  # recomputed, no crash
        assert result.completed
        assert telemetry.counters["service.cache.quarantined"] == 1
        key = os.path.basename(path)[: -len(".json")]
        qdir = os.path.join(store, "quarantine")
        assert os.path.exists(os.path.join(qdir, key + ".json"))
        reason = open(os.path.join(qdir, key + ".json.reason")).read()
        assert "torn" in reason
        assert "quarantined corrupt entry" in capsys.readouterr().err

    def test_key_mismatch_is_quarantined(self, tmp_path):
        store, path, dag, machine = self._prime(tmp_path)
        entry = json.loads(open(path).read())
        entry["key"] = "0" * 64
        with open(path, "w") as fh:
            fh.write(json.dumps(entry))
        telemetry = Telemetry()
        fresh = ScheduleCache(path=store)
        _, status = fresh.schedule_with_status(
            dag, machine, OPTIONS, telemetry=telemetry
        )
        assert status == "miss"
        assert telemetry.counters["service.cache.quarantined"] == 1

    def test_schema_skew_is_a_plain_miss(self, tmp_path):
        # A future/old schema version is not corruption: silently miss.
        store, path, dag, machine = self._prime(tmp_path)
        entry = json.loads(open(path).read())
        entry["schema"] = "repro-schedule-cache/99"
        with open(path, "w") as fh:
            fh.write(json.dumps(entry))
        telemetry = Telemetry()
        fresh = ScheduleCache(path=store)
        _, status = fresh.schedule_with_status(
            dag, machine, OPTIONS, telemetry=telemetry
        )
        assert status == "miss"
        assert "service.cache.quarantined" not in telemetry.counters
        assert not os.path.exists(os.path.join(store, "quarantine"))


class TestClientRetries:
    def _flaky_server(self, failures, status=500, retry_after=None):
        from http.server import BaseHTTPRequestHandler, HTTPServer

        state = {"left": failures, "hits": 0}

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib naming
                state["hits"] += 1
                if state["left"] > 0:
                    state["left"] -= 1
                    self.send_response(status)
                    if retry_after is not None:
                        self.send_header("Retry-After", str(retry_after))
                    body = b'{"error": "flaky"}'
                else:
                    self.send_response(200)
                    body = b'{"ok": true, "schema": "%s"}' % SCHEMA.encode()
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence
                pass

        server = HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        return server, thread, url, state

    def test_retries_5xx_then_succeeds(self):
        server, thread, url, state = self._flaky_server(failures=2)
        try:
            telemetry = Telemetry()
            client = ServiceClient(
                url, max_retries=3, backoff=0.01, telemetry=telemetry
            )
            assert client.health()["ok"] is True
            assert state["hits"] == 3
            assert telemetry.counters["service.client.retries"] == 2
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_respects_retry_after_on_429(self):
        server, thread, url, state = self._flaky_server(
            failures=1, status=429, retry_after=0.05
        )
        try:
            client = ServiceClient(url, max_retries=1, backoff=0.001)
            start = time.monotonic()
            assert client.health()["ok"] is True
            assert time.monotonic() - start >= 0.05
            assert state["hits"] == 2
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_400_is_not_retried(self):
        server, thread, url, state = self._flaky_server(failures=99, status=400)
        try:
            client = ServiceClient(url, max_retries=3, backoff=0.01)
            with pytest.raises(ServiceClientError) as exc:
                client.health()
            assert exc.value.status == 400
            assert state["hits"] == 1
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_exhausted_retries_raise_last_error(self):
        server, thread, url, state = self._flaky_server(failures=99)
        try:
            client = ServiceClient(url, max_retries=2, backoff=0.01)
            with pytest.raises(ServiceClientError) as exc:
                client.health()
            assert exc.value.status == 500
            assert state["hits"] == 3
        finally:
            server.shutdown()
            thread.join(timeout=5)

    @pytest.mark.parametrize(
        "kwargs", [{"max_retries": -1}, {"backoff": -0.5}, {"timeout": 0}]
    )
    def test_ctor_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceClient("http://localhost:1", **kwargs)


class TestGracefulDrain:
    """SIGTERM under load: finish in-flight work, flush, exit 0."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_dir)
        ready = tmp_path / "ready.json"
        stats = tmp_path / "stats.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.console", "serve",
                "--port", "0", "--no-cache", "--workers", "2",
                "--curtail", "10000",
                "--ready-file", str(ready),
                "--stats-json", str(stats),
                "--drain-timeout", "20",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 60
            while not ready.exists():
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "daemon never became ready"
                time.sleep(0.05)
            url = json.loads(ready.read_text())["url"]
            client = ServiceClient(url, timeout=120.0)

            replies = []

            def fire():
                replies.append(client.schedule(BLOCKS, "paper-simulation"))

            worker = threading.Thread(target=fire)
            worker.start()
            time.sleep(0.1)  # let the request reach the pool
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=60)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out.decode()
            assert b"drained on SIGTERM" in out
            # In-flight work resolved (finished or degraded — never lost)
            # and telemetry was flushed on the way out.
            assert len(replies) == 1
            for entry in replies[0]["entries"]:
                assert entry["completed"] or entry["degraded"]
            flushed = json.loads(stats.read_text())
            assert flushed["counters"]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
