"""Tests for the exhaustive baselines (section 2.3)."""

import itertools
import math

from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.sched.exhaustive import (
    count_legal_schedules,
    exhaustive_search_size,
    legal_only_search,
)
from repro.sched.nop_insertion import compute_timing

from .strategies import blocks, machines


class TestExhaustiveSize:
    def test_factorials(self):
        assert exhaustive_search_size(8) == 40_320
        assert exhaustive_search_size(11) == 39_916_800
        assert exhaustive_search_size(15) == 1_307_674_368_000  # "5 years"

    def test_matches_math(self):
        for n in range(10):
            assert exhaustive_search_size(n) == math.factorial(n)


class TestLegalOnlySearch:
    def test_figure3_optimum(self, figure3_dag, sim_machine):
        result = legal_only_search(figure3_dag, sim_machine)
        assert result.optimal_nops == 2
        assert result.exhausted
        assert result.omega_calls == figure3_dag.count_legal_orders()

    def test_matches_brute_force_over_permutations(self, sim_machine):
        block = parse_block(
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Store #c, 3"
        )
        dag = DependenceDAG(block)
        best = min(
            compute_timing(dag, perm, sim_machine).total_nops
            for perm in itertools.permutations(dag.idents)
            if dag.is_legal_order(perm)
        )
        assert legal_only_search(dag, sim_machine).optimal_nops == best

    def test_limit_truncates(self, figure3_dag, sim_machine):
        result = legal_only_search(figure3_dag, sim_machine, limit=2)
        assert not result.exhausted
        assert result.omega_calls == 2

    def test_single_instruction(self, sim_machine):
        dag = DependenceDAG(parse_block("1: Load #a"))
        result = legal_only_search(dag, sim_machine)
        assert result.optimal_nops == 0
        assert result.omega_calls == 1

    def test_count_helper(self, figure3_dag):
        assert count_legal_schedules(figure3_dag) == figure3_dag.count_legal_orders()


@given(blocks(min_size=2, max_size=6), machines())
@settings(max_examples=60, deadline=None)
def test_legal_search_is_truly_optimal(block, machine):
    """Cross-validation against raw permutation enumeration."""
    dag = DependenceDAG(block)
    result = legal_only_search(dag, machine)
    brute = min(
        compute_timing(dag, perm, machine, check_legality=False).total_nops
        for perm in itertools.permutations(dag.idents)
        if dag.is_legal_order(perm)
    )
    assert result.optimal_nops == brute
