"""Tests for the postpass-scheduling comparison (sections 1 / 3.4)."""

import pytest
from hypothesis import given, settings

from repro.frontend.lowering import lower_source
from repro.ir.dag import DependenceDAG, DependenceEdge
from repro.ir.textual import parse_block
from repro.machine.presets import paper_simulation_machine
from repro.postpass.registers import (
    compare_prepass_postpass,
    postpass_dag,
    register_reuse_edges,
)
from repro.regalloc.allocator import allocate_registers
from repro.sched.search import SearchOptions

from .strategies import blocks


class TestExtraEdges:
    def test_extra_edges_constrain_the_dag(self, figure3_block):
        plain = DependenceDAG(figure3_block)
        constrained = DependenceDAG(
            figure3_block, extra_edges=[DependenceEdge(2, 3, "anti")]
        )
        assert 2 in constrained.rho(3)
        assert 2 not in plain.rho(3)
        assert constrained.count_legal_orders() < plain.count_legal_orders()

    def test_backward_extra_edge_rejected(self, figure3_block):
        with pytest.raises(ValueError, match="backward"):
            DependenceDAG(
                figure3_block, extra_edges=[DependenceEdge(4, 1, "anti")]
            )

    def test_unknown_tuple_rejected(self, figure3_block):
        with pytest.raises(ValueError, match="outside the block"):
            DependenceDAG(
                figure3_block, extra_edges=[DependenceEdge(1, 99, "anti")]
            )

    def test_duplicate_of_true_edge_is_deduplicated(self, figure3_block):
        plain = DependenceDAG(figure3_block)
        doubled = DependenceDAG(
            figure3_block, extra_edges=[DependenceEdge(1, 4, "flow")]
        )
        assert len(doubled.edges) == len(plain.edges)


class TestReuseEdges:
    def test_register_reuse_serializes_independent_work(self):
        # Two independent load-mul-store chains; with 2 registers the
        # allocator reuses them across the chains, serializing them.
        block = lower_source("p = a * a; q = b * b;")
        allocation = allocate_registers(block)  # program order
        edges = register_reuse_edges(block, allocation)
        assert edges  # reuse must occur
        kinds = {e.kind for e in edges}
        assert kinds <= {"anti", "output"}

    def test_no_reuse_no_edges(self):
        # A single tiny chain never reuses a register.
        block = parse_block("1: Load #a\n2: Neg 1\n3: Store #b, 2")
        allocation = allocate_registers(block)
        # Neg's result may reuse Load's register (operand dies); that is
        # real reuse and yields edges parallel to the true dependence.
        dag, _ = postpass_dag(block)
        plain = DependenceDAG(block)
        assert dag.count_legal_orders() <= plain.count_legal_orders()

    def test_postpass_dag_is_always_consistent(self):
        block = lower_source("x = a * b; y = c * d; z = x + y;")
        dag, allocation = postpass_dag(block)
        assert dag.is_legal_order(block.idents)  # program order survives


class TestComparison:
    def test_penalty_on_independent_chains(self, sim_machine):
        """The paper's canonical scenario: two independent multiplies that
        a tight register file forces into sequence."""
        block = lower_source("p = a * a; q = b * b;")
        comparison = compare_prepass_postpass(block, sim_machine)
        assert comparison.prepass.completed and comparison.postpass.completed
        assert comparison.delay_penalty > 0

    def test_penalty_never_negative(self, sim_machine):
        """Postpass-legal schedules are a subset of prepass-legal ones
        (the fixed allocation witnesses the register budget), so postpass
        can never win."""
        from repro.synth.generator import generate_block

        for seed in range(15):
            gb = generate_block(10, 5, 3, seed=seed)
            if len(gb.block) < 2:
                continue
            comparison = compare_prepass_postpass(gb.block, sim_machine)
            assert comparison.delay_penalty >= 0, gb.block.name

    def test_generous_registers_shrink_the_penalty(self, sim_machine):
        """With a huge register file the program-order allocator still
        reuses (it recycles the lowest free register), but a fair
        comparison point: more registers => no more artificial pressure
        from spill-constrained budgets."""
        block = lower_source(
            "p = a * a; q = b * b; r = c * c; s = p + q; t = s + r;"
        )
        tight = compare_prepass_postpass(block, sim_machine, 4)
        loose = compare_prepass_postpass(block, sim_machine, 16)
        assert loose.postpass.final_nops <= tight.postpass.final_nops


class TestExperimentA3:
    def test_small_run(self):
        from repro.experiments.prepass import run_a3

        result = run_a3(n_blocks=15, register_files=(None, 4), curtail=10_000)
        assert result.penalty_never_negative
        assert len(result.rows) == 2
        text = result.render()
        assert "A3" in text and "penalty" in text
        assert "registers" in result.csv()


@given(blocks(min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_postpass_never_beats_prepass(block):
    machine = paper_simulation_machine()
    comparison = compare_prepass_postpass(
        block, machine, options=SearchOptions(curtail=200_000)
    )
    if comparison.prepass.completed and comparison.postpass.completed:
        assert comparison.delay_penalty >= 0
