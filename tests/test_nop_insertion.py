"""Tests for the NOP-insertion (Ω) procedure — the timing heart of the
reproduction.  Includes the paper's two worked examples from section 2.1
and the property pinning the closed form to the paper's sequential
formulation."""

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.ops import Opcode
from repro.ir.textual import parse_block
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc
from repro.sched.nop_insertion import (
    IncrementalTimingState,
    SigmaResolver,
    compute_timing,
    sequential_etas,
    total_nops,
)

from .strategies import blocks, machines


class TestSection21Examples:
    """The two worked examples of section 2.1, on its 4-tick loader whose
    MAR is busy for the first 2 ticks (enqueue time 2)."""

    def test_dependence_delay(self, section21_machine):
        # Load R1,X ; Add R0,R1  ->  "a delay of 3 clock ticks between
        # the Load and Add instructions."
        block = parse_block("1: Load #x\n2: Load #r0\n3: Add 1, 2\n")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3), section21_machine)
        # The Add depends on the second Load: issued at t=?  Check the
        # simplest pair directly instead:
        pair = parse_block("1: Load #x\n2: Neg 1")
        pair_dag = DependenceDAG(pair)
        pair_timing = compute_timing(pair_dag, (1, 2), section21_machine)
        assert pair_timing.etas == (0, 3)  # latency 4 => 3 NOPs

    def test_conflict_delay(self, section21_machine):
        # Load R1,X ; Load R2,Y -> "a delay of 1 clock tick ... between
        # the two Load operations" (MAR busy 2 ticks).
        block = parse_block("1: Load #x\n2: Load #y")
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2), section21_machine)
        assert timing.etas == (0, 1)


class TestFigure3OnSimulationMachine:
    def test_program_order(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        # Mul waits for the Load (latency 2, one instruction between);
        # Store #a waits for the Mul (latency 4).
        assert timing.etas == (0, 0, 0, 1, 3)
        assert timing.total_nops == 4
        assert timing.issue_span_cycles == 9

    def test_optimal_order(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (3, 1, 4, 2, 5), sim_machine)
        assert timing.etas == (0, 0, 0, 0, 2)
        assert timing.total_nops == 2

    def test_illegal_order_rejected(self, figure3_dag, sim_machine):
        with pytest.raises(ValueError, match="not a legal"):
            compute_timing(figure3_dag, (4, 1, 3, 2, 5), sim_machine)

    def test_total_nops_helper(self, figure3_dag, sim_machine):
        assert total_nops(figure3_dag, (1, 2, 3, 4, 5), sim_machine) == 4


class TestEnqueueConflicts:
    def test_same_pipeline_spacing(self, sim_machine):
        # Two Muls back to back: multiplier enqueue time is 2.
        block = parse_block(
            "1: Load #a\n2: Load #b\n3: Mul 1, 2\n4: Mul 1, 2"
        )
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3, 4), sim_machine)
        # Mul(3): Load #b issued at 1, +2 latency => issue at 3 (eta 1).
        # Mul(4): enqueue 2 after Mul(3) at t=3 => t>=5, base t=4, eta 1.
        assert timing.etas == (0, 0, 1, 1)

    def test_loader_enqueue_one_never_conflicts(self, sim_machine):
        block = parse_block("1: Load #a\n2: Load #b\n3: Load #c")
        dag = DependenceDAG(block)
        assert compute_timing(dag, (1, 2, 3), sim_machine).total_nops == 0

    def test_unpipelined_unit_is_exclusive(self):
        machine = MachineDescription(
            "serial-mult",
            [PipelineDesc("mult", 1, latency=3, enqueue_time=3)],
            {Opcode.MUL: {1}},
        )
        block = parse_block(
            "1: Const 2\n2: Const 3\n3: Mul 1, 2\n4: Mul 1, 2\n5: Mul 1, 2"
        )
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (1, 2, 3, 4, 5), machine)
        # Each Mul must wait the full 3 ticks of its predecessor.
        assert timing.etas == (0, 0, 0, 2, 2)


class TestIncrementalState:
    def test_push_pop_is_exact_inverse(self, figure3_dag, sim_machine):
        resolver = SigmaResolver(figure3_dag, sim_machine)
        state = IncrementalTimingState(figure3_dag, resolver)
        state.push(1)
        state.push(3)
        snapshot = (state.order, state.etas, state.total_nops)
        state.push(4)
        state.pop()
        assert (state.order, state.etas, state.total_nops) == snapshot

    def test_snapshot_matches_compute_timing(self, figure3_dag, sim_machine):
        resolver = SigmaResolver(figure3_dag, sim_machine)
        state = IncrementalTimingState(figure3_dag, resolver)
        for ident in (3, 1, 4, 2, 5):
            state.push(ident)
        direct = compute_timing(figure3_dag, (3, 1, 4, 2, 5), sim_machine)
        assert state.snapshot() == direct

    def test_peek_does_not_mutate(self, figure3_dag, sim_machine):
        resolver = SigmaResolver(figure3_dag, sim_machine)
        state = IncrementalTimingState(figure3_dag, resolver)
        state.push(1)
        before = (state.order, state.total_nops)
        state.peek_eta(3)  # a root
        state.peek_eta(2)  # ready: its only predecessor (1) is scheduled
        assert (state.order, state.total_nops) == before

    def test_first_instruction_needs_no_nops(self, figure3_dag, sim_machine):
        resolver = SigmaResolver(figure3_dag, sim_machine)
        state = IncrementalTimingState(figure3_dag, resolver)
        assert state.peek_eta(1) == 0
        assert state.push(1) == 0
        assert state.issue_time_of(1) == 0


class TestSigmaResolver:
    def test_assignment_overrides(self, figure3_dag, example_machine):
        resolver = SigmaResolver(
            figure3_dag, example_machine, assignment={3: 2, 4: 5, 1: None, 2: None, 5: None}
        )
        assert resolver.sigma(3) == 2
        assert resolver.latency(3) == 2

    def test_assignment_rejects_unknown_pipeline(self, figure3_dag, example_machine):
        with pytest.raises(ValueError, match="unknown pipeline"):
            SigmaResolver(figure3_dag, example_machine, assignment={3: 42})

    def test_assignment_rejects_wrong_pipeline_class(
        self, figure3_dag, example_machine
    ):
        # Tuple 4 is a Mul; pipeline 1 is a loader.
        with pytest.raises(ValueError, match="cannot execute"):
            SigmaResolver(
                figure3_dag,
                example_machine,
                assignment={1: None, 2: None, 3: 1, 4: 1, 5: None},
            )


# ----------------------------------------------------------------------
# The key property: the paper's sequential algorithm and the closed form
# agree on every (block, order, machine).
# ----------------------------------------------------------------------
@given(blocks(max_size=9), machines())
@settings(max_examples=150, deadline=None)
def test_sequential_equals_closed_form(block, machine):
    dag = DependenceDAG(block)
    import itertools

    for order in itertools.islice(dag.iter_legal_orders(), 8):
        closed = compute_timing(dag, order, machine).etas
        sequential = sequential_etas(dag, order, machine)
        assert closed == sequential


@given(blocks(max_size=9), machines())
@settings(max_examples=100, deadline=None)
def test_etas_are_minimal_pointwise(block, machine):
    """Removing any single NOP from an Ω schedule violates a constraint:
    re-running Ω over the stream with one eta reduced must restore it."""
    dag = DependenceDAG(block)
    order = dag.idents
    timing = compute_timing(dag, order, machine)
    resolver = SigmaResolver(dag, machine)
    # Rebuild incrementally and check every eta is exactly the peek value
    # (i.e. the minimum the constraints allow at that point).
    state = IncrementalTimingState(dag, resolver)
    for ident, eta in zip(order, timing.etas):
        assert state.peek_eta(ident) == eta
        state.push(ident)
