"""Tests pinning the block-population calibration to Figure 5's shape."""

import statistics

from repro.synth.population import (
    PopulationSpec,
    sample_population,
    size_histogram,
)


class TestReproducibility:
    def test_same_seed_same_population(self):
        a = [len(gb.block) for gb in sample_population(50, master_seed=7)]
        b = [len(gb.block) for gb in sample_population(50, master_seed=7)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [len(gb.block) for gb in sample_population(50, master_seed=7)]
        b = [len(gb.block) for gb in sample_population(50, master_seed=8)]
        assert a != b

    def test_population_is_lazy(self):
        stream = sample_population(10_000, master_seed=1)
        first = next(stream)
        assert first.block.name == "pop-0"


class TestFigure5Calibration:
    """Pins the defaults to the paper's population profile: mean ~20.6,
    right-skewed, with a rare tail past 40 instructions."""

    def setup_method(self):
        self.sizes = [
            len(gb.block) for gb in sample_population(800, master_seed=1990)
        ]

    def test_mean_matches_paper(self):
        mean = statistics.mean(self.sizes)
        assert 18.0 <= mean <= 23.5, mean

    def test_right_skewed(self):
        assert statistics.median(self.sizes) < statistics.mean(self.sizes) + 2
        assert max(self.sizes) > 40

    def test_blocks_over_forty_are_rare(self):
        over = sum(s > 40 for s in self.sizes) / len(self.sizes)
        assert 0.0 < over < 0.08

    def test_histogram_buckets(self):
        blocks = list(sample_population(100, master_seed=3))
        hist = size_histogram(blocks, bucket=5)
        assert sum(count for _, count in hist) == 100
        assert all(start % 5 == 0 for start, _ in hist)


class TestCustomSpecs:
    def test_statement_bounds_respected(self):
        spec = PopulationSpec(min_statements=5, max_statements=6)
        for gb in sample_population(30, master_seed=2, spec=spec):
            assert 5 <= gb.statements <= 6

    def test_unoptimized_population(self):
        spec = PopulationSpec()
        raw = list(sample_population(20, master_seed=2, spec=spec, optimize=False))
        opt = list(sample_population(20, master_seed=2, spec=spec, optimize=True))
        assert sum(len(gb.block) for gb in raw) >= sum(len(gb.block) for gb in opt)
