"""Tests for the list-scheduling seed (section 3.2)."""

from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.machine.presets import paper_simulation_machine
from repro.sched.list_scheduler import list_schedule, program_order
from repro.sched.nop_insertion import compute_timing
from repro.synth.population import sample_population

from .strategies import blocks


class TestLegality:
    def test_figure3(self, figure3_dag):
        order = list_schedule(figure3_dag)
        assert figure3_dag.is_legal_order(order)

    def test_program_order_helper(self, figure3_dag):
        assert program_order(figure3_dag) == figure3_dag.idents


class TestPriorities:
    def test_tall_chains_issue_first(self):
        # A long chain next to independent leaves: the chain head (tall)
        # must come before the leaves so its consumers can be distanced.
        text = (
            "1: Load #a\n2: Neg 1\n3: Neg 2\n"
            "4: Load #x\n5: Load #y\n"
        )
        dag = DependenceDAG(parse_block(text))
        order = list_schedule(dag)
        assert order[0] == 1  # tallest root
        # The independent loads interleave between chain links.
        assert order.index(4) < order.index(3)

    def test_separates_producer_from_consumer(self, figure3_dag, sim_machine):
        # The seed must beat program order on Figure 3 (1 NOP less).
        seeded = compute_timing(figure3_dag, list_schedule(figure3_dag), sim_machine)
        naive = compute_timing(figure3_dag, figure3_dag.idents, sim_machine)
        assert seeded.total_nops < naive.total_nops

    def test_deterministic(self, figure3_dag):
        assert list_schedule(figure3_dag) == list_schedule(figure3_dag)


class TestSeedQualityStatistically:
    def test_beats_program_order_on_average(self):
        """Across a population, the machine-independent seed must hide
        substantially more latency than emission order (Table 7's initial
        9.5 NOPs shrink to ~2-3 under the seed)."""
        machine = paper_simulation_machine()
        seed_total = 0
        naive_total = 0
        for gb in sample_population(120, master_seed=5):
            if len(gb.block) < 2:
                continue
            dag = DependenceDAG(gb.block)
            seed_total += compute_timing(dag, list_schedule(dag), machine).total_nops
            naive_total += compute_timing(dag, dag.idents, machine).total_nops
        assert seed_total < 0.6 * naive_total


@given(blocks(max_size=14))
@settings(max_examples=80)
def test_always_topological(block):
    dag = DependenceDAG(block)
    assert dag.is_legal_order(list_schedule(dag))
