"""Tests for the cycle-accurate simulator — and the paper's central
orthogonality claim: hardware interlocks and compiler NOPs cost the same
cycles (section 2.2)."""

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.ir.interp import run_block
from repro.ir.textual import parse_block
from repro.sched.list_scheduler import list_schedule
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import schedule_block
from repro.simulator.core import (
    NOP,
    HazardError,
    InterlockMode,
    PipelineSimulator,
    simulate_schedule,
)

from .strategies import blocks, machines, memories


class TestImplicitInterlock:
    def test_figure3_program_order(self, figure3_block, sim_machine):
        sim = PipelineSimulator(figure3_block, sim_machine)
        trace = sim.run_implicit((1, 2, 3, 4, 5), {"a": 3})
        # Hardware stalls == compiler NOPs: 5 instructions + 4 stalls.
        assert trace.total_cycles == 9
        assert trace.stall_cycles == 4
        assert trace.memory["a"] == 45 and trace.memory["b"] == 15

    def test_issue_cycles_match_omega(self, figure3_block, sim_machine):
        dag = DependenceDAG(figure3_block)
        order = (3, 1, 4, 2, 5)
        timing = compute_timing(dag, order, sim_machine)
        sim = PipelineSimulator(figure3_block, sim_machine, dag)
        trace = sim.run_implicit(order, {"a": 3})
        assert trace.issue_cycles == timing.issue_times

    def test_illegal_order_rejected(self, figure3_block, sim_machine):
        sim = PipelineSimulator(figure3_block, sim_machine)
        with pytest.raises(ValueError, match="violates"):
            sim.run_implicit((4, 1, 3, 2, 5))

    def test_partial_order_rejected(self, figure3_block, sim_machine):
        sim = PipelineSimulator(figure3_block, sim_machine)
        with pytest.raises(ValueError, match="whole block"):
            sim.run_implicit((1, 2, 3))


class TestNopPadded:
    def test_correctly_padded_stream_runs(self, figure3_block, sim_machine):
        # Program order with the Ω-computed NOPs: 1,2,3,NOP,4,NOP,NOP,NOP,5
        stream = [1, 2, 3, NOP, 4, NOP, NOP, NOP, 5]
        sim = PipelineSimulator(figure3_block, sim_machine)
        trace = sim.run_padded(stream, {"a": 3})
        assert trace.total_cycles == 9
        assert trace.stall_cycles == 4
        assert trace.memory["a"] == 45

    def test_underpadded_stream_faults(self, figure3_block, sim_machine):
        stream = [1, 2, 3, 4, NOP, NOP, NOP, 5]  # Mul issued 1 tick early
        sim = PipelineSimulator(figure3_block, sim_machine)
        with pytest.raises(HazardError, match="not safe"):
            sim.run_padded(stream, {"a": 3})

    def test_overpadded_stream_is_legal(self, figure3_block, sim_machine):
        stream = [1, NOP, NOP, 2, 3, NOP, NOP, 4, NOP, NOP, NOP, NOP, 5]
        sim = PipelineSimulator(figure3_block, sim_machine)
        trace = sim.run_padded(stream, {"a": 3})
        assert trace.memory["a"] == 45

    def test_simulate_schedule_wrapper(self, figure3_block, sim_machine):
        dag = DependenceDAG(figure3_block)
        result = schedule_block(dag, sim_machine)
        trace = simulate_schedule(
            figure3_block, sim_machine, result.best.order, result.best.etas,
            {"a": 3},
        )
        assert trace.total_cycles == result.best.issue_span_cycles
        assert trace.memory["a"] == 45


class TestExplicitInterlock:
    def test_wait_tags_run(self, figure3_block, sim_machine):
        tagged = [(1, 0), (2, 0), (3, 0), (4, 1), (5, 3)]
        sim = PipelineSimulator(figure3_block, sim_machine)
        trace = sim.run_explicit(tagged, {"a": 3})
        assert trace.mode is InterlockMode.EXPLICIT
        assert trace.total_cycles == 9

    def test_insufficient_waits_fault(self, figure3_block, sim_machine):
        tagged = [(1, 0), (2, 0), (3, 0), (4, 0), (5, 3)]
        sim = PipelineSimulator(figure3_block, sim_machine)
        with pytest.raises(HazardError):
            sim.run_explicit(tagged, {"a": 3})


class TestCompletionDrain:
    def test_completion_includes_last_latency(self, sim_machine):
        block = parse_block("1: Load #a")
        sim = PipelineSimulator(block, sim_machine)
        trace = sim.run_implicit((1,), {"a": 1})
        assert trace.total_cycles == 1
        assert trace.completion_cycle == 2  # load latency drains after issue


# ----------------------------------------------------------------------
# Properties: the simulator *is* the timing model.
# ----------------------------------------------------------------------
@given(blocks(max_size=10), machines(), memories())
@settings(max_examples=100, deadline=None)
def test_interlock_cycles_equal_schedule_length_plus_nops(block, machine, memory):
    """For any legal order: implicit-interlock cycle count == |Pi| + mu(Pi),
    and the memory matches the reference interpreter."""
    dag = DependenceDAG(block)
    order = list_schedule(dag)
    timing = compute_timing(dag, order, machine)
    sim = PipelineSimulator(block, machine, dag)
    trace = sim.run_implicit(order, memory)
    assert trace.total_cycles == timing.issue_span_cycles
    assert trace.stall_cycles == timing.total_nops
    assert trace.issue_cycles == timing.issue_times
    assert trace.memory == run_block(block, memory, order=order).memory


@given(blocks(max_size=10), machines(), memories())
@settings(max_examples=80, deadline=None)
def test_padded_streams_from_omega_never_fault(block, machine, memory):
    """Ω's NOP counts are always sufficient: expanding them into a padded
    stream replays without hazards, in exactly the same cycles."""
    dag = DependenceDAG(block)
    order = list_schedule(dag)
    timing = compute_timing(dag, order, machine)
    trace = simulate_schedule(
        block, machine, timing.order, timing.etas, memory
    )
    assert trace.total_cycles == timing.issue_span_cycles
    assert trace.memory == run_block(block, memory).memory


@given(blocks(max_size=9), machines(), memories())
@settings(max_examples=60, deadline=None)
def test_all_three_disciplines_agree(block, machine, memory):
    """Section 2.2's orthogonality: implicit, explicit, and NOP-padded
    execution of the same schedule take identical cycles and produce
    identical memory."""
    dag = DependenceDAG(block)
    order = list_schedule(dag)
    timing = compute_timing(dag, order, machine)
    sim = PipelineSimulator(block, machine, dag)
    implicit = sim.run_implicit(order, memory)
    explicit = sim.run_explicit(list(zip(timing.order, timing.etas)), memory)
    padded = simulate_schedule(block, machine, timing.order, timing.etas, memory)
    assert implicit.total_cycles == explicit.total_cycles == padded.total_cycles
    assert implicit.memory == explicit.memory == padded.memory
