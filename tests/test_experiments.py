"""Tests for the experiment harness (small-scale runs of every table and
figure, checking invariants rather than absolute numbers)."""

import csv
import io

import pytest

from repro.experiments import (
    ablation,
    extension,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table7,
)
from repro.experiments.runner import bucket_by_size, mean, population_size, run_population


@pytest.fixture(scope="module")
def records():
    """One shared small population run for all figure/table tests."""
    return run_population(80, curtail=20_000, master_seed=2024)


def parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


class TestRunner:
    def test_records_are_consistent(self, records):
        assert len(records) == 80
        for r in records:
            assert r.size > 0
            assert 0 <= r.final_nops <= r.initial_nops or r.final_nops <= r.seed_nops
            assert r.final_nops <= r.seed_nops  # search never loses to its seed
            assert r.omega_calls > 0
            assert r.elapsed_seconds >= 0

    def test_population_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert population_size() == 160
        monkeypatch.delenv("REPRO_SCALE")
        assert population_size(default_scale=1.0) == 16_000

    def test_bucket_by_size(self, records):
        buckets = bucket_by_size(records, bucket=5)
        assert sum(len(v) for v in buckets.values()) == len(records)
        for start, rs in buckets.items():
            assert all(start <= r.size < start + 5 for r in rs)

    def test_mean_of_empty(self):
        assert mean([]) != mean([])  # NaN


class TestTable7:
    def test_render_and_invariants(self, records):
        result = table7.run_from_records(records, curtail=20_000)
        text = result.render()
        assert "Table 7" in text and "Percentage of Runs" in text
        complete = result.column(result.complete)
        assert 80.0 <= complete["percentage"] <= 100.0
        # Final NOPs collapse well below initial (the paper's headline).
        assert complete["avg_final_nops"] < 0.5 * complete["avg_initial_nops"]

    def test_csv(self, records):
        rows = parse_csv(table7.run_from_records(records, 20_000).csv())
        assert rows[0][0] == "statistic"
        assert len(rows) == 8  # header + 7 statistics


class TestFigures:
    def test_fig1(self, records):
        result = fig1.run_from_records(records)
        assert "Figure 1" in result.render()
        assert all(calls >= size for size, calls in result.points())

    def test_fig4(self, records):
        result = fig4.run_from_records(records)
        series = result.series()
        assert set(series) == {"initial NOPs", "list-schedule NOPs", "final NOPs"}
        slope, _ = result.linear_fit()
        assert 0.2 < slope < 0.8  # paper: ~0.46/instruction
        text = result.render()
        assert "nearly constant" in text or "final NOPs average" in text

    def test_fig5(self, records):
        result = fig5.run_from_records(records)
        hist = result.histogram()
        assert sum(c for _, c in hist) == len(records)
        assert "Figure 5" in result.render()

    def test_fig6(self, records):
        result = fig6.run_from_records(records)
        assert result.blocks_per_second > 10  # paper: ~100 on a Sun 3/50
        assert "Figure 6" in result.render()

    def test_fig7(self, records):
        result = fig7.run_from_records(records)
        assert 0.0 <= result.overall_percentage <= 100.0
        for start, pct, count in result.series():
            assert 0.0 <= pct <= 100.0 and count > 0
        assert "Figure 7" in result.render()

    def test_all_csvs_parse(self, records):
        for mod in (fig1, fig4, fig5, fig6, fig7):
            rows = parse_csv(mod.run_from_records(records).csv())
            assert len(rows) >= 2


class TestTable1:
    def test_small_run(self):
        result = table1.run(sizes=(6, 8, 10), master_seed=1701, curtail=50_000)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.exhaustive_calls >= row.proposed_calls_paper_prunes
            if row.legal_calls > 0:  # not capped
                assert row.exhaustive_calls >= row.legal_calls
        text = result.render()
        assert "Table 1" in text
        rows = parse_csv(result.csv())
        assert rows[0][0] == "size"

    def test_paper_sizes_constant(self):
        assert table1.PAPER_SIZES == (8, 11, 13, 13, 14, 16, 16, 16, 20, 21, 22)


class TestAblation:
    def test_a1(self):
        result = ablation.run_a1(n_blocks=20, curtail=5_000)
        assert result.optimality_consistent
        labels = [r.label for r in result.rows]
        assert "all prunes (default)" in labels
        assert "paper prunes only" in labels
        assert "A1" in result.render()
        assert len(parse_csv(result.csv())) == len(result.rows) + 1

    def test_a2(self):
        result = ablation.run_a2(n_blocks=150, base_curtail=400, multipliers=(1, 5))
        assert len(result.rows) == 2
        # Raising lambda can only help or tie.
        assert result.rows[1].still_truncated <= result.rows[0].still_truncated
        assert result.rows[1].avg_final_nops <= result.rows[0].avg_final_nops + 1e-9
        assert "A2" in result.render()


class TestExtensions:
    def test_x1(self):
        result = extension.run_x1(n_blocks=8, curtail=20_000)
        assert result.joint_never_loses
        assert len(result.rows) == 6  # 3 policies x 2 machines
        assert "X1" in result.render()

    def test_x2(self):
        result = extension.run_x2(n_blocks=4, curtail=20_000)
        assert len(result.rows) == 3
        mono_paper, mono_full, split = result.rows
        assert split.avg_nops >= mono_full.avg_nops  # optimum is a floor
        assert "X2" in result.render()


class TestStalls:
    def test_taxonomy_partitions_total_nops(self):
        from repro.experiments import stalls

        result = stalls.run(n_blocks=40, curtail=10_000)
        assert result.n_blocks > 0
        # Optimal never has more stalls of any cause than naive overall.
        assert sum(result.optimal.values()) <= sum(result.naive.values())
        # Dependence dominates naive stalls on this machine.
        assert result.naive.get("dependence", 0) > result.naive.get("conflict", 0)
        text = result.render()
        assert "stall cause" in text and "removed" in text
        assert "cause" in result.csv()


class TestKernelsExperimentInCli:
    def test_cli_runs_kernels_and_stalls(self, capsys):
        from repro.experiments.cli import main

        rc = main(["kernels"])
        assert rc == 0
        assert "realistic kernels" in capsys.readouterr().out


class TestMachinesSweep:
    def test_sweep_invariants(self):
        from repro.experiments import machines

        result = machines.run(n_blocks=15, curtail=8_000)
        assert result.n_blocks > 0
        by_name = {r.machine: r for r in result.rows}
        # Optimal never exceeds naive anywhere.
        for row in result.rows:
            assert row.avg_optimal_nops <= row.avg_naive_nops
            assert 0.0 <= row.complete_pct <= 100.0
        # Deeper multipliers cost strictly more naive stalls.
        assert (
            by_name["mul-l2-e1"].avg_naive_nops
            < by_name["mul-l8-e1"].avg_naive_nops
        )
        # Unpipelined variant is never easier than the pipelined one.
        assert (
            by_name["mul-l8-e8"].hidden_pct <= by_name["mul-l8-e1"].hidden_pct
        )
        assert "M —" in result.render() or "M —" in result.render()
        assert "machine" in result.csv()
