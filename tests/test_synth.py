"""Tests for the synthetic benchmark generator (section 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.ast import Binary, Constant, Unary, run_program
from repro.ir.interp import run_block
from repro.synth.generator import (
    generate_block,
    generate_program,
    variable_names,
)
from repro.synth.stats import OPERATOR_FREQUENCIES, STATEMENT_FREQUENCIES, GeneratorProfile


class TestProfiles:
    def test_default_frequencies_sum_to_one(self):
        assert abs(sum(STATEMENT_FREQUENCIES.values()) - 1.0) < 1e-9
        assert abs(sum(OPERATOR_FREQUENCIES.values()) - 1.0) < 1e-9

    def test_bad_frequencies_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GeneratorProfile(statement_frequencies=(("copy", 0.5),))
        with pytest.raises(ValueError, match="non-negative"):
            GeneratorProfile(
                statement_frequencies=(("copy", 1.5), ("const", -0.5))
            )
        with pytest.raises(ValueError, match="constant_range"):
            GeneratorProfile(constant_range=0)

    def test_exclude_division_renormalizes(self):
        profile = GeneratorProfile(exclude_division=True)
        operators = dict(profile.operators())
        assert "/" not in operators
        assert abs(sum(operators.values()) - 1.0) < 1e-9


class TestGenerateProgram:
    def test_deterministic_for_a_seed(self):
        a = generate_program(10, 4, 3, seed=42)
        b = generate_program(10, 4, 3, seed=42)
        assert str(a) == str(b)

    def test_different_seeds_differ(self):
        a = generate_program(10, 4, 3, seed=1)
        b = generate_program(10, 4, 3, seed=2)
        assert str(a) != str(b)

    def test_respects_statement_count(self):
        assert len(generate_program(17, 4, 3, seed=0)) == 17

    def test_variable_pool(self):
        program = generate_program(30, 3, 3, seed=5)
        pool = set(variable_names(3))
        assert set(program.variables_written()) <= pool
        assert set(program.variables_read()) <= pool

    def test_constant_pool_size(self):
        program = generate_program(60, 4, 2, seed=9)
        constants = set()

        def walk(e):
            if isinstance(e, Constant):
                constants.add(e.value)
            elif isinstance(e, Unary):
                walk(e.operand)
            elif isinstance(e, Binary):
                walk(e.left), walk(e.right)

        for stmt in program:
            walk(stmt.value)
        assert len(constants) <= 2

    def test_constants_are_nonzero(self):
        program = generate_program(80, 4, 8, seed=3)
        text = str(program)
        assert " 0;" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_program(0, 4, 3, seed=0)
        with pytest.raises(ValueError):
            generate_program(5, 0, 3, seed=0)
        with pytest.raises(ValueError):
            generate_program(5, 4, 0, seed=0)

    def test_exclude_division(self):
        profile = GeneratorProfile(exclude_division=True)
        program = generate_program(100, 4, 3, seed=11, profile=profile)
        assert "/" not in str(program)


class TestGenerateBlock:
    def test_block_provenance(self):
        gb = generate_block(8, 4, 3, seed=21)
        assert gb.statements == 8 and gb.seed == 21
        assert len(gb) == len(gb.block)

    def test_optimized_is_no_larger_than_raw(self):
        raw = generate_block(12, 5, 3, seed=4, optimize=False)
        opt = generate_block(12, 5, 3, seed=4, optimize=True)
        assert len(opt.block) <= len(raw.block)

    def test_block_matches_program_semantics(self):
        profile = GeneratorProfile(exclude_division=True)
        gb = generate_block(10, 4, 3, seed=8, profile=profile)
        memory = {v: i + 1 for i, v in enumerate(variable_names(4))}
        expected = run_program(gb.program, memory)
        got = run_block(gb.block, memory).memory
        for var in gb.program.variables_written():
            assert got[var] == expected[var]

    def test_custom_name(self):
        gb = generate_block(5, 4, 3, seed=1, name="my-block")
        assert gb.block.name == "my-block"


@given(st.integers(1, 25), st.integers(1, 6), st.integers(1, 6), st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_generated_blocks_are_always_valid(statements, variables, constants, seed):
    gb = generate_block(statements, variables, constants, seed)
    # BasicBlock construction validates; additionally the DAG must build.
    from repro.ir.dag import DependenceDAG

    DependenceDAG(gb.block)
