"""Shared hypothesis strategies and deterministic generators for tests.

Two sources of random inputs:

* :func:`blocks` — arbitrary *tuple-level* basic blocks (wider than
  anything the front end emits: Copy/Neg chains, repeated loads,
  overwritten stores), for exercising IR/DAG/scheduler corner cases;
* :func:`machines` — arbitrary deterministic machine descriptions with
  1-4 pipelines, latencies 1-8 and legal enqueue times;
* :func:`any_machines` — the above interleaved with the hand-built
  adversarial gallery from :mod:`repro.verify.fuzz` (single-pipeline
  funnels, fully-busy units, deep pipes, non-deterministic twins), for
  the differential-oracle tests.

Both shrink well: blocks shrink toward fewer tuples, machines toward a
single latency-1 pipeline.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.block import BlockBuilder
from repro.ir.ops import Opcode
from repro.machine.machine import MachineDescription
from repro.machine.pipeline import PipelineDesc

VARIABLES = ("a", "b", "c", "d")

#: Opcodes a random block may emit (weights handled by hypothesis' choice).
_VALUE_OPS = (
    Opcode.CONST,
    Opcode.LOAD,
    Opcode.COPY,
    Opcode.NEG,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
)


@st.composite
def blocks(draw, min_size: int = 1, max_size: int = 10, allow_div: bool = False):
    """A random, valid basic block of tuple code."""
    size = draw(st.integers(min_size, max_size))
    builder = BlockBuilder("hypo")
    value_refs = []  # idents of value-producing tuples emitted so far
    ops = _VALUE_OPS + ((Opcode.DIV,) if allow_div else ())
    for _ in range(size):
        candidates = [Opcode.CONST, Opcode.LOAD]
        if value_refs:
            candidates = list(ops) + [Opcode.STORE]
        op = draw(st.sampled_from(candidates))
        if op is Opcode.CONST:
            value_refs.append(builder.emit_const(draw(st.integers(-50, 50))))
        elif op is Opcode.LOAD:
            value_refs.append(builder.emit_load(draw(st.sampled_from(VARIABLES))))
        elif op is Opcode.STORE:
            builder.emit_store(
                draw(st.sampled_from(VARIABLES)),
                draw(st.sampled_from(value_refs)),
            )
        elif op in (Opcode.COPY, Opcode.NEG):
            value_refs.append(
                builder.emit_unary(op, draw(st.sampled_from(value_refs)))
            )
        else:
            value_refs.append(
                builder.emit_binary(
                    op,
                    draw(st.sampled_from(value_refs)),
                    draw(st.sampled_from(value_refs)),
                )
            )
    return builder.build()


@st.composite
def machines(draw, max_pipelines: int = 4):
    """A random deterministic machine description."""
    n_pipes = draw(st.integers(1, max_pipelines))
    pipes = []
    for ident in range(1, n_pipes + 1):
        latency = draw(st.integers(1, 8))
        enqueue = draw(st.integers(1, latency))
        pipes.append(PipelineDesc(f"unit{ident}", ident, latency, enqueue))
    # Each op class independently maps to one pipeline or none; Store is
    # included so pipelined memory-write machines (and their carry-out
    # conditions) get fuzzed too.
    op_map = {}
    for op in (Opcode.LOAD, Opcode.STORE, Opcode.ADD, Opcode.SUB,
               Opcode.MUL, Opcode.DIV, Opcode.NEG, Opcode.COPY):
        choice = draw(st.integers(0, n_pipes))
        if choice:
            op_map[op] = {choice}
    return MachineDescription("hypo-machine", pipes, op_map)


def adversarial_machines():
    """The hand-built boundary-case machine gallery, as a strategy."""
    from repro.verify.fuzz import adversarial_machines as gallery

    return st.sampled_from(gallery())


def any_machines(max_pipelines: int = 4):
    """Random machines mixed with the adversarial gallery.

    The gallery pins the shapes random sampling rarely hits (every op on
    one pipe, ``enqueue == latency`` everywhere, non-determinism), so the
    oracle sees both breadth and the known hard edges every run.
    """
    return st.one_of(machines(max_pipelines=max_pipelines), adversarial_machines())


@st.composite
def memories(draw, variables=VARIABLES):
    """A full initial memory over the test variable pool (non-zero values
    so random divisions stay defined)."""
    return {
        v: draw(st.integers(1, 50))
        for v in variables
    }


def rename_block(block, mapping):
    """``block`` with every tuple reference number sent through ``mapping``.

    Program order is preserved, so the result is the *same scheduling
    problem* under a different ident naming — the isomorphism the
    canonical fingerprint (:mod:`repro.service.fingerprint`) must erase.
    """
    from repro.ir.block import BasicBlock
    from repro.ir.tuples import IRTuple, RefOperand

    def remap(operand):
        if isinstance(operand, RefOperand):
            return RefOperand(mapping[operand.ref])
        return operand

    return BasicBlock(
        (
            IRTuple(mapping[t.ident], t.op, remap(t.alpha), remap(t.beta))
            for t in block
        ),
        name=block.name,
    )


@st.composite
def ident_renamings(draw, block):
    """An injective map of ``block``'s reference numbers onto fresh ones."""
    idents = [t.ident for t in block]
    fresh = draw(
        st.lists(
            st.integers(1, 10_000),
            min_size=len(idents),
            max_size=len(idents),
            unique=True,
        )
    )
    return dict(zip(idents, fresh))
