"""Tests for the classical optimizer passes (section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.ast import run_program
from repro.frontend.lowering import lower_source
from repro.frontend.lowering import lower_program
from repro.ir.interp import blocks_equivalent, run_block
from repro.ir.ops import Opcode
from repro.ir.textual import parse_block
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.manager import optimize, optimize_block
from repro.opt.peephole import peephole_optimize
from repro.synth.generator import generate_program
from repro.synth.stats import GeneratorProfile


def ops_of(block, opcode):
    return [t for t in block if t.op is opcode]


class TestConstantFolding:
    def test_folds_arithmetic(self):
        block = lower_source("x = 2 + 3 * 4;")
        folded = fold_constants(block)
        consts = ops_of(folded, Opcode.CONST)
        assert any(t.alpha.value == 14 for t in consts)
        assert not ops_of(folded, Opcode.ADD) and not ops_of(folded, Opcode.MUL)

    def test_propagates_through_stores(self):
        # Figure 3's own behaviour: b = 15 makes later b-reads use Const.
        block = lower_source("b = 15; a = b * a;", reuse_values=False)
        folded = fold_constants(block)
        # The re-load of b disappears: its value is known in-block.
        assert all(t.variable != "b" or t.op is Opcode.STORE for t in folded)

    def test_copy_elimination(self):
        block = parse_block("1: Const 5\n2: Copy 1\n3: Copy 2\n4: Store #x, 3")
        folded = fold_constants(block)
        assert not ops_of(folded, Opcode.COPY)
        assert run_block(folded)["x"] == 5

    def test_double_negation(self):
        block = parse_block("1: Load #a\n2: Neg 1\n3: Neg 2\n4: Store #x, 3")
        folded = fold_constants(block)
        assert len(ops_of(folded, Opcode.NEG)) <= 1
        assert run_block(folded, {"a": 9})["x"] == 9

    def test_division_by_zero_not_folded(self):
        block = lower_source("x = 1 / 0;")
        folded = fold_constants(block)
        assert ops_of(folded, Opcode.DIV)

    def test_non_integral_division_not_folded(self):
        block = lower_source("x = 1 / 3;")
        folded = fold_constants(block)
        assert ops_of(folded, Opcode.DIV)

    def test_integral_division_folded(self):
        block = lower_source("x = 6 / 3;")
        folded = fold_constants(block)
        assert not ops_of(folded, Opcode.DIV)


class TestCSE:
    def test_merges_identical_expressions(self):
        block = lower_source("x = a * b; y = a * b;", reuse_values=False)
        # naive lowering re-loads a and b; CSE merges loads and the Mul.
        out = eliminate_common_subexpressions(block)
        assert len(ops_of(out, Opcode.MUL)) == 1
        assert len(ops_of(out, Opcode.LOAD)) == 2

    def test_commutative_canonicalization(self):
        block = lower_source("x = a * b; y = b * a;")
        out = eliminate_common_subexpressions(block)
        assert len(ops_of(out, Opcode.MUL)) == 1

    def test_subtraction_not_commuted(self):
        block = lower_source("x = a - b; y = b - a;")
        out = eliminate_common_subexpressions(block)
        assert len(ops_of(out, Opcode.SUB)) == 2

    def test_loads_not_merged_across_stores(self):
        text = (
            "1: Load #a\n2: Const 1\n3: Store #a, 2\n4: Load #a\n"
            "5: Add 1, 4\n6: Store #x, 5"
        )
        block = parse_block(text)
        out = eliminate_common_subexpressions(block)
        assert len(ops_of(out, Opcode.LOAD)) == 2
        assert run_block(out, {"a": 10})["x"] == 11

    def test_const_pooling(self):
        block = lower_source("x = 5 + a; y = 5 + b;")
        out = eliminate_common_subexpressions(block)
        assert len(ops_of(out, Opcode.CONST)) == 1


class TestDCE:
    def test_removes_unused_values(self):
        block = parse_block("1: Load #a\n2: Load #b\n3: Store #x, 1")
        out = eliminate_dead_code(block)
        assert len(ops_of(out, Opcode.LOAD)) == 1

    def test_removes_dead_stores(self):
        block = lower_source("x = 1; x = 2;")
        out = eliminate_dead_code(block)
        assert len(ops_of(out, Opcode.STORE)) == 1
        assert run_block(out)["x"] == 2

    def test_keeps_store_read_before_overwrite(self):
        text = (
            "1: Const 1\n2: Store #x, 1\n3: Load #x\n4: Store #y, 3\n"
            "5: Const 2\n6: Store #x, 5"
        )
        out = eliminate_dead_code(parse_block(text))
        assert len(ops_of(out, Opcode.STORE)) == 3

    def test_dead_store_elimination_can_be_disabled(self):
        block = lower_source("x = 1; x = 2;")
        out = eliminate_dead_code(block, remove_dead_stores=False)
        assert len(ops_of(out, Opcode.STORE)) == 2

    def test_keeps_unused_division_for_its_fault(self):
        block = parse_block("1: Const 1\n2: Const 0\n3: Div 1, 2\n4: Store #x, 1")
        out = eliminate_dead_code(block)
        assert ops_of(out, Opcode.DIV)


class TestPeephole:
    @pytest.mark.parametrize(
        "source,survivor_ops",
        [
            ("y = x + 0;", 0),
            ("y = 0 + x;", 0),
            ("y = x - 0;", 0),
            ("y = x * 1;", 0),
            ("y = 1 * x;", 0),
            ("y = x / 1;", 0),
        ],
    )
    def test_identities(self, source, survivor_ops):
        block = lower_source(source)
        out = peephole_optimize(block)
        arith = [
            t for t in out
            if t.op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV)
        ]
        assert len(arith) == survivor_ops

    def test_x_minus_x(self):
        out = peephole_optimize(lower_source("y = x - x;"))
        assert run_block(out, {"x": 9})["y"] == 0

    def test_multiply_by_zero(self):
        out = peephole_optimize(lower_source("y = x * 0;"))
        assert run_block(out, {"x": 9})["y"] == 0
        assert not ops_of(out, Opcode.MUL)

    def test_strength_reduction(self):
        out = peephole_optimize(lower_source("y = x * 2;"))
        assert not ops_of(out, Opcode.MUL)
        assert ops_of(out, Opcode.ADD)
        assert run_block(out, {"x": 9})["y"] == 18

    def test_strength_reduction_can_be_disabled(self):
        out = peephole_optimize(lower_source("y = x * 2;"), strength_reduce=False)
        assert ops_of(out, Opcode.MUL)

    def test_division_identity_preserves_faults(self):
        # x / x is NOT folded to 1.
        out = peephole_optimize(lower_source("y = x / x;"))
        assert ops_of(out, Opcode.DIV)


class TestManager:
    def test_figure3_is_already_optimal(self, figure3_block):
        report = optimize(figure3_block)
        assert report.block.tuples == figure3_block.renumbered().tuples
        assert report.tuples_removed == 0

    def test_cascading_passes(self):
        # Peephole exposes folding which exposes DCE.
        block = lower_source("x = a * 1 + 0; y = x - x; z = y + a;")
        report = optimize(block)
        out = report.block
        # z = a; y = 0; x = a — no arithmetic should survive except none.
        assert not any(
            t.op in (Opcode.ADD, Opcode.SUB, Opcode.MUL) for t in out
        )
        result = run_block(out, {"a": 5})
        assert result["x"] == 5 and result["y"] == 0 and result["z"] == 5

    def test_report_counts(self):
        block = lower_source("x = 2 + 3;")
        report = optimize(block)
        assert report.original_size == len(block)
        assert report.final_size == len(report.block)
        assert report.rounds >= 1
        assert "fold" in report.pass_names

    def test_convergence_guard(self):
        import itertools

        flip = itertools.count()

        def oscillating(block):
            # Alternates between two renumberings — never converges.
            from repro.ir.block import BasicBlock

            if next(flip) % 2 == 0:
                return parse_block("1: Const 7\n2: Store #x, 1")
            return parse_block("1: Const 8\n2: Store #x, 1")

        with pytest.raises(RuntimeError, match="did not converge"):
            optimize(
                lower_source("x = 1;"),
                passes=[("oscillate", oscillating)],
                max_rounds=3,
            )

    def test_empty_block(self):
        from repro.ir.block import BasicBlock

        report = optimize(BasicBlock([]))
        assert len(report.block) == 0


# ----------------------------------------------------------------------
# Semantics preservation on random programs (the paper's front end must
# never change observable behaviour).
# ----------------------------------------------------------------------
@given(
    statements=st.integers(2, 15),
    variables=st.integers(1, 6),
    constants=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=120, deadline=None)
def test_full_pipeline_preserves_semantics(statements, variables, constants, seed):
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, variables, constants, seed, profile)
    block = lower_program(program)
    optimized = optimize_block(block)
    memory = {f"v{i}": i + 1 for i in range(variables)}
    expected = run_program(program, memory)
    got = run_block(optimized, memory).memory
    for var in program.variables_written():
        assert got[var] == expected[var], var


@given(
    statements=st.integers(2, 12),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_each_pass_individually_preserves_semantics(statements, seed):
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, 4, 3, seed, profile)
    block = lower_program(program)
    memory = {f"v{i}": 2 * i + 1 for i in range(4)}
    for name, fn in (
        ("fold", fold_constants),
        ("cse", eliminate_common_subexpressions),
        ("dce", eliminate_dead_code),
        ("peephole", peephole_optimize),
    ):
        assert blocks_equivalent(block, fn(block), memory), name


@given(
    statements=st.integers(2, 10),
    seed=st.integers(0, 5_000),
)
@settings(max_examples=60, deadline=None)
def test_passes_are_idempotent(statements, seed):
    """Each pass maps its own output to itself (a canonical form) —
    running it twice must change nothing."""
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, 4, 3, seed, profile)
    block = lower_program(program)
    for name, fn in (
        ("fold", fold_constants),
        ("cse", eliminate_common_subexpressions),
        ("dce", eliminate_dead_code),
        ("peephole", peephole_optimize),
    ):
        once = fn(block)
        twice = fn(once)
        assert once.tuples == twice.tuples, name


@given(
    statements=st.integers(2, 10),
    seed=st.integers(0, 5_000),
)
@settings(max_examples=40, deadline=None)
def test_optimizer_fixpoint_is_stable(statements, seed):
    """optimize() output is a fixpoint of the whole pipeline."""
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, 4, 3, seed, profile)
    block = lower_program(program)
    first = optimize_block(block)
    second = optimize_block(first)
    assert first.tuples == second.tuples
