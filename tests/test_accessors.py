"""Coverage for small public accessors not exercised elsewhere."""


from repro.ir.dag import DependenceDAG
from repro.ir.textual import parse_block
from repro.sched.interblock import schedule_sequence
from repro.sched.nop_insertion import compute_timing
from repro.simulator.core import PipelineSimulator


class TestScheduleTimingAccessors:
    def test_eta_of(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        assert timing.eta_of(4) == 1
        assert timing.eta_of(5) == 3
        assert len(timing) == 5

    def test_issue_span(self, figure3_dag, sim_machine):
        timing = compute_timing(figure3_dag, (1, 2, 3, 4, 5), sim_machine)
        assert timing.issue_span_cycles == len(timing.order) + timing.total_nops


class TestTraceAccessors:
    def test_issue_cycle_of(self, figure3_block, sim_machine):
        sim = PipelineSimulator(figure3_block, sim_machine)
        trace = sim.run_implicit((1, 2, 3, 4, 5), {"a": 3})
        assert trace.issue_cycle_of(1) == 0
        assert trace.issue_cycle_of(5) == trace.issue_cycles[-1]


class TestSequenceAccessors:
    def test_total_cycles(self, sim_machine):
        blocks = [
            parse_block("1: Load #a\n2: Mul 1, 1\n3: Store #x, 2", "b0"),
            parse_block("1: Load #x\n2: Neg 1\n3: Store #y, 2", "b1"),
        ]
        seq = schedule_sequence(blocks, sim_machine)
        assert seq.total_cycles == sum(
            r.best.issue_span_cycles for r in seq.results
        )
        assert len(seq) == 2


class TestSearchResultAccessors:
    def test_optimal_alias_and_str(self, figure3_dag, sim_machine):
        from repro.sched.search import schedule_block

        result = schedule_block(figure3_dag, sim_machine)
        assert result.optimal is result.completed
        assert "omega calls" in str(result)


class TestUtilizationEdge:
    def test_empty_schedule_does_not_divide_by_zero(self, sim_machine):
        from repro.analysis import pipeline_utilization
        from repro.ir.block import BasicBlock

        block = BasicBlock([])
        dag = DependenceDAG(block)
        timing = compute_timing(dag, (), sim_machine)
        util = pipeline_utilization(block, sim_machine, timing, dag=dag)
        assert all(v == 0.0 for v in util.values())


class TestKernelStr:
    def test_kernel_renders_character(self):
        from repro.synth.kernels import get_kernel

        assert "chain" in str(get_kernel("dot4"))


def test_top_level_api_surface():
    """The README's imports must keep working."""
    import repro

    for name in (
        "compile_source",
        "compile_program",
        "paper_simulation_machine",
        "paper_example_machine",
        "schedule_block",
        "schedule_block_multi",
        "schedule_block_split",
        "schedule_sequence",
        "SearchOptions",
        "InitialConditions",
        "DependenceDAG",
        "parse_block",
        "format_block",
        "run_block",
        "render_timeline",
        "explain_schedule",
    ):
        assert hasattr(repro, name), name
        assert name in repro.__all__, name
