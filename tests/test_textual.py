"""Unit tests for the linear tuple notation (Figure 3 round trip)."""

import pytest
from hypothesis import given, settings

from repro.ir.ops import Opcode
from repro.ir.textual import (
    TupleSyntaxError,
    format_block,
    format_tuple,
    parse_block,
)
from repro.ir.tuples import ConstOperand, RefOperand

from .strategies import blocks

FIGURE3 = """1: Const "15"
2: Store #b, 1
3: Load #a
4: Mul 1, 3
5: Store #a, 4"""


class TestParsing:
    def test_figure3(self):
        block = parse_block(FIGURE3)
        assert len(block) == 5
        assert block.by_ident(4).op is Opcode.MUL
        assert block.by_ident(4).value_refs == (1, 3)

    def test_bare_and_quoted_constants(self):
        a = parse_block("1: Const 15")
        b = parse_block('1: Const "15"')
        assert a.by_ident(1).alpha == ConstOperand(15)
        assert a.by_ident(1) == b.by_ident(1)

    def test_negative_constant(self):
        block = parse_block("1: Const -42")
        assert block.by_ident(1).alpha == ConstOperand(-42)

    def test_bare_numbers_are_refs_outside_const(self):
        block = parse_block("1: Const 1\n2: Neg 1")
        assert block.by_ident(2).alpha == RefOperand(1)

    def test_comments_and_blank_lines(self):
        text = """
        ; a comment line
        1: Const 15    ; make register R1 = 15

        2: Store #b, 1
        """
        block = parse_block(text)
        assert len(block) == 2

    def test_case_insensitive_opcodes(self):
        block = parse_block("1: load #a\n2: NEG 1")
        assert block.by_ident(1).op is Opcode.LOAD

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("1 Const 15", "cannot parse tuple line"),
            ("1: Jump 2", "unknown opcode"),
            ("1: Const 15, 16, 17", "at most two operands"),
            ("1: Load @a", "cannot parse operand"),
            ("1: Const , 2", "empty operand"),
            ('1: Const "xy"', "bad constant literal"),
            ("1: Store #a, 1", "does not precede"),
        ],
    )
    def test_syntax_errors(self, text, fragment):
        with pytest.raises((TupleSyntaxError, Exception), match=fragment):
            parse_block(text)

    def test_error_carries_line_number(self):
        with pytest.raises(TupleSyntaxError, match="line 2"):
            parse_block("1: Const 15\n2: Nope 1")


class TestFormatting:
    def test_format_block_matches_figure3(self):
        assert format_block(parse_block(FIGURE3)) == FIGURE3

    def test_format_tuple_without_operands(self):
        # No opcode is operand-free today, but formatting must not choke
        # on the minimal tuples.
        assert format_tuple(parse_block("1: Load #a")[0]) == "1: Load #a"


@given(blocks(max_size=12))
@settings(max_examples=80)
def test_round_trip(block):
    """format -> parse is the identity on tuples."""
    reparsed = parse_block(format_block(block), block.name)
    assert reparsed.tuples == block.tuples
