"""Tests for the block-splitting extension (section 5.3)."""

import pytest
from hypothesis import given, settings

from repro.ir.dag import DependenceDAG
from repro.sched.nop_insertion import compute_timing
from repro.sched.search import schedule_block
from repro.sched.splitting import schedule_block_split
from repro.synth.generator import generate_block

from .strategies import blocks, machines


class TestBasics:
    def test_figure3_single_window_equals_search(self, figure3_dag, sim_machine):
        split = schedule_block_split(figure3_dag, sim_machine, window=20)
        full = schedule_block(figure3_dag, sim_machine)
        assert split.total_nops == full.final_nops == 2
        assert split.window_sizes == (5,)

    def test_windows_partition_the_block(self, sim_machine):
        gb = generate_block(statements=25, variables=8, constants=4, seed=3)
        dag = DependenceDAG(gb.block)
        split = schedule_block_split(dag, sim_machine, window=7)
        flat = [i for w in split.windows for i in w]
        assert sorted(flat) == sorted(dag.idents)
        assert all(len(w) <= 7 for w in split.windows)

    def test_result_is_a_legal_schedule(self, sim_machine):
        gb = generate_block(statements=20, variables=6, constants=4, seed=9)
        dag = DependenceDAG(gb.block)
        split = schedule_block_split(dag, sim_machine, window=6)
        assert dag.is_legal_order(split.timing.order)
        recomputed = compute_timing(dag, split.timing.order, sim_machine)
        assert recomputed.etas == split.timing.etas

    def test_window_must_be_positive(self, figure3_dag, sim_machine):
        with pytest.raises(ValueError):
            schedule_block_split(figure3_dag, sim_machine, window=0)

    def test_seed_validation(self, figure3_dag, sim_machine):
        with pytest.raises(ValueError, match="permutation"):
            schedule_block_split(figure3_dag, sim_machine, seed=(1, 2))

    def test_empty_block(self, sim_machine):
        from repro.ir.block import BasicBlock

        dag = DependenceDAG(BasicBlock([]))
        split = schedule_block_split(dag, sim_machine)
        assert split.total_nops == 0
        assert split.windows == ()


class TestQuality:
    def test_never_worse_than_seed(self, sim_machine):
        """Each window starts from the seed slice as its incumbent, so the
        stitched result cannot cost more than the seeded list schedule."""
        from repro.sched.list_scheduler import list_schedule

        for seed in (1, 2, 3):
            gb = generate_block(statements=30, variables=10, constants=5, seed=seed)
            if len(gb.block) < 2:
                continue
            dag = DependenceDAG(gb.block)
            seeded = compute_timing(dag, list_schedule(dag), sim_machine)
            split = schedule_block_split(dag, sim_machine, window=10)
            assert split.total_nops <= seeded.total_nops

    def test_at_least_optimal(self, sim_machine):
        """Windowed cost can never beat the true optimum."""
        for seed in (4, 5):
            gb = generate_block(statements=10, variables=5, constants=3, seed=seed)
            if len(gb.block) < 2:
                continue
            dag = DependenceDAG(gb.block)
            optimum = schedule_block(dag, sim_machine).final_nops
            split = schedule_block_split(dag, sim_machine, window=4)
            assert split.total_nops >= optimum


@given(blocks(min_size=2, max_size=14), machines())
@settings(max_examples=60, deadline=None)
def test_split_schedules_are_always_legal_and_consistent(block, machine):
    dag = DependenceDAG(block)
    split = schedule_block_split(dag, machine, window=4)
    assert dag.is_legal_order(split.timing.order)
    assert (
        compute_timing(dag, split.timing.order, machine).total_nops
        == split.total_nops
    )
    # Window sizes respect the cap and cover the block.
    assert sum(split.window_sizes) == len(dag)
    assert all(size <= 4 for size in split.window_sizes)


def test_split_honours_carry_in_conditions(sim_machine):
    """Window scheduling over a non-idle machine: the first window's
    leading loads must absorb the carried loader occupancy."""
    from repro.sched.nop_insertion import InitialConditions

    gb = generate_block(statements=12, variables=6, constants=3, seed=13)
    dag = DependenceDAG(gb.block)
    idle = schedule_block_split(dag, sim_machine, window=5)
    busy = schedule_block_split(
        dag,
        sim_machine,
        window=5,
        initial_conditions=InitialConditions(pipe_free={1: 6, 2: 6}),
    )
    assert busy.total_nops >= idle.total_nops
    assert dag.is_legal_order(busy.timing.order)
