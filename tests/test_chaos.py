"""Chaos suite: the parallel engine under injected worker faults.

The resilience invariant under test is *byte identity*: a population
run that suffered crashes, hangs, corrupted payloads, or a mid-run
SIGINT must merge to exactly the records a fault-free serial run
produces (``elapsed_seconds`` excluded — it is compare-excluded on
``BlockRecord``).  Every run here uses ``verify=True``, so each
published schedule is also certified by the independent checker.

Kept deliberately small (tens of blocks, seconds of wall clock) so the
suite runs in CI; the fault *rates* are high to compensate.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience import (
    STEP_LIST_SEED,
    FaultPlan,
    Journal,
    SupervisorConfig,
    load_journal,
)
from repro.experiments.parallel import run_population_parallel
from repro.experiments.runner import run_population
from repro.sched.search import SearchOptions
from repro.telemetry import Telemetry

SEED = 7
BLOCKS = 40
OPTIONS = SearchOptions(curtail=2_000)

#: Hang injection sleeps far longer than the supervisor's patience, so a
#: "hang" fault is always detected by heartbeat staleness, never waited out.
CHAOS_SUP = SupervisorConfig(hang_timeout=1.0, poll_interval=0.01,
                             backoff_base=0.01, backoff_cap=0.05)


def _serial_baseline():
    return run_population(
        BLOCKS, master_seed=SEED, options=OPTIONS, verify=True
    )


BASELINE = _serial_baseline()


def _chaos_run(fault_plan, supervisor=CHAOS_SUP, telemetry=None, workers=3):
    return run_population_parallel(
        BLOCKS,
        master_seed=SEED,
        options=OPTIONS,
        workers=workers,
        verify=True,
        telemetry=telemetry,
        supervisor=supervisor,
        fault_plan=fault_plan,
    )


class TestChaosByteIdentity:
    def test_crashes_and_hangs_do_not_change_output(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            seed=11, crash_rate=0.10, hang_rate=0.05, hang_seconds=30.0
        )
        records = _chaos_run(plan, telemetry=telemetry)
        assert records == BASELINE
        faults = (
            telemetry.counters["resilience.crashes_detected"]
            + telemetry.counters["resilience.hangs_detected"]
        )
        assert faults > 0, "chaos plan injected no faults; raise the rates"
        assert telemetry.counters["resilience.chunk_retries"] == faults
        assert telemetry.counters.get("resilience.poison_chunks", 0) == 0

    def test_every_fault_kind_with_high_rates(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            seed=2,
            crash_rate=0.30,
            hang_rate=0.20,
            corrupt_rate=0.20,
            hang_seconds=30.0,
            max_faults_per_chunk=2,
        )
        records = _chaos_run(plan, telemetry=telemetry)
        assert records == BASELINE
        assert telemetry.counters["resilience.crashes_detected"] > 0
        assert telemetry.counters["resilience.hangs_detected"] > 0
        assert telemetry.counters["resilience.corrupted_records"] > 0


class TestCorruptionDetection:
    def test_corrupted_payloads_are_rejected_and_retried(self):
        telemetry = Telemetry()
        # Every chunk's first attempt returns a tampered payload; the
        # validator must reject each one and the retry (fault allowance
        # spent) must restore the honest records.
        plan = FaultPlan(seed=0, corrupt_rate=1.0, max_faults_per_chunk=1)
        records = _chaos_run(plan, telemetry=telemetry)
        assert records == BASELINE
        assert telemetry.counters["resilience.corrupted_records"] > 0
        assert telemetry.counters.get("resilience.crashes_detected", 0) == 0


class TestPoisonQuarantine:
    def test_persistent_crashes_degrade_to_list_seeds(self):
        telemetry = Telemetry()
        # Crash on every attempt, allowance never runs out, one retry
        # allowed: every chunk is poisoned, no chunk ever succeeds.
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults_per_chunk=10**6)
        sup = SupervisorConfig(
            hang_timeout=1.0, poll_interval=0.01,
            backoff_base=0.0, max_retries=1,
        )
        records = _chaos_run(plan, supervisor=sup, telemetry=telemetry)
        # Dense, ordered, complete — but every block is a bottom-rung seed.
        assert [r.index for r in records] == list(range(BLOCKS))
        assert all(r.ladder == STEP_LIST_SEED for r in records)
        assert all(
            r.final_nops == b.seed_nops
            for r, b in zip(records, BASELINE)
        )
        assert telemetry.counters["resilience.poison_chunks"] > 0
        assert telemetry.counters["resilience.poison_blocks"] == BLOCKS


class TestResume:
    def test_truncated_journal_resume_matches_full_run(self, tmp_path):
        path = str(tmp_path / "run.journal")
        config = {"blocks": BLOCKS, "master_seed": SEED}
        with Journal.create(path, config) as journal:
            run_population(
                BLOCKS, master_seed=SEED, options=OPTIONS, verify=True,
                on_record=lambda r: journal.append([r]),
            )
        # Simulate a crash: keep the header and the first 25 appends,
        # tear the 26th mid-line.
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:26])
            fh.write(lines[26][: len(lines[26]) // 2])
        journal, done = Journal.resume(path, config)
        assert len(done) == 25
        with journal:
            resumed = run_population(
                BLOCKS, master_seed=SEED, options=OPTIONS, verify=True,
                done=done, on_record=lambda r: journal.append([r]),
            )
        assert resumed == BASELINE
        _, final, _ = load_journal(path, expect_config=config)
        assert sorted(final) == list(range(BLOCKS))
        assert [final[i] for i in range(BLOCKS)] == BASELINE


@pytest.mark.slow
class TestKillAndResume:
    """Real SIGINT against the real CLI, then ``--resume``."""

    def test_sigint_then_resume_matches_uninterrupted_run(self, tmp_path):
        journal = str(tmp_path / "kill.journal")
        env = dict(os.environ, PYTHONPATH="src", REPRO_SCALE="1")
        base_cmd = [
            sys.executable, "-m", "repro.experiments.cli", "table7",
            "--blocks", "300", "--seed", str(SEED),
            "--curtail", "2000", "--workers", "2",
        ]
        proc = subprocess.Popen(
            base_cmd + ["--journal", journal],
            cwd="/root/repo", env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.exists(journal):
                    with open(journal) as fh:
                        if sum(1 for _ in fh) >= 11:  # header + 10 records
                            break
                if proc.poll() is not None:
                    pytest.fail(
                        "run finished before it could be interrupted; "
                        "raise --blocks.\n" + proc.stderr.read()
                    )
                time.sleep(0.05)
            else:
                pytest.fail("journal never reached 10 records")
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 130, stderr
        assert "--resume" in stderr

        _, partial, _ = load_journal(journal)
        assert 0 < len(partial) < 300

        resumed = subprocess.run(
            base_cmd + ["--resume", journal],
            cwd="/root/repo", env=env, capture_output=True, text=True,
            timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming" in resumed.stdout

        _, finished, _ = load_journal(journal)
        assert sorted(finished) == list(range(300))
        full = run_population(
            300, master_seed=SEED, options=OPTIONS
        )
        assert [finished[i] for i in range(300)] == full
