"""Tests for machine-description serialization (text and dict forms)."""

import json

import pytest
from hypothesis import given, settings

from repro.ir.ops import Opcode
from repro.machine.presets import PRESETS, get_machine
from repro.machine.serialize import (
    MachineSyntaxError,
    format_machine,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    parse_machine,
    save_machine,
)

from .strategies import machines


class TestDictForm:
    def test_round_trip_every_preset(self):
        for name in PRESETS:
            machine = get_machine(name)
            data = machine_to_dict(machine)
            clone = machine_from_dict(data)
            assert clone == machine

    def test_is_json_serializable(self, sim_machine):
        text = json.dumps(machine_to_dict(sim_machine))
        clone = machine_from_dict(json.loads(text))
        assert clone == sim_machine

    def test_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            machine_from_dict({"name": "x"})

    def test_empty_op_sets_are_omitted(self, sim_machine):
        data = machine_to_dict(sim_machine)
        assert "Add" not in data["op_map"]  # unpipelined on this machine
        assert data["op_map"]["Load"] == [1]


class TestTextForm:
    def test_round_trip_every_preset(self):
        for name in PRESETS:
            machine = get_machine(name)
            clone = parse_machine(format_machine(machine))
            assert clone == machine

    def test_paper_simulation_text(self, sim_machine):
        text = format_machine(sim_machine)
        assert "machine paper-simulation" in text
        assert "pipeline loader  1  2  1" in text
        assert "op Mul  2" in text

    def test_comments_and_blanks_ignored(self):
        text = """
        ; a full-line comment
        machine demo

        pipeline alu 1 2 1   ; trailing comment
        op Add 1
        """
        machine = parse_machine(text)
        assert machine.name == "demo"
        assert machine.sigma(Opcode.ADD) == 1

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("pipeline alu 1 2 1", "missing 'machine"),
            ("machine a\nmachine b", "duplicate machine"),
            ("machine a\npipeline alu 1 2", "pipeline takes"),
            ("machine a\npipeline alu 1 1 2", "enqueue time cannot exceed"),
            ("machine a\nop", "op takes"),
            ("machine a\nop Jump 1", "unknown opcode"),
            ("machine a\nop Add one", "must be integers"),
            ("machine a\nfrobnicate", "unknown keyword"),
            ("machine a b", "exactly one name"),
        ],
    )
    def test_syntax_errors(self, text, fragment):
        with pytest.raises((MachineSyntaxError, ValueError), match=fragment):
            parse_machine(text)

    def test_undefined_pipeline_in_op(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            parse_machine("machine a\npipeline alu 1 2 1\nop Add 9")


class TestFiles:
    def test_save_and_load(self, tmp_path, example_machine):
        path = tmp_path / "machine.txt"
        save_machine(example_machine, path)
        assert load_machine(path) == example_machine


@given(machines())
@settings(max_examples=80)
def test_random_machines_round_trip_both_forms(machine):
    assert machine_from_dict(machine_to_dict(machine)) == machine
    assert parse_machine(format_machine(machine)) == machine
