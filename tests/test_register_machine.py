"""Tests for the assembly parser and the register-level machine — the
text-level round trip: generated assembly must parse back and execute to
source semantics with the schedule's exact cycle count."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.asmparser import AsmSyntaxError, parse_assembly
from repro.codegen.assembly import DelayDiscipline, generate_assembly
from repro.driver import compile_source
from repro.frontend.ast import run_program
from repro.frontend.lowering import lower_program
from repro.ir.dag import DependenceDAG
from repro.ir.ops import Opcode
from repro.machine.presets import get_machine
from repro.regalloc.allocator import allocate_registers
from repro.sched.search import schedule_block
from repro.simulator.register_machine import (
    RegisterHazardError,
    RegisterMachine,
)
from repro.synth.generator import generate_program, variable_names
from repro.synth.kernels import KERNELS
from repro.synth.stats import GeneratorProfile


class TestParser:
    def test_full_instruction_set(self):
        text = """
        ; header comment
        LI   R0, 15
        LD   R1, x
        NOP
        MOV  R2, R1
        NEG  R3, R2
        ADD  R4, R0, R1
        SUB  R5, R4, R0
        MUL  R6, R5, R5
        DIV  R7, R6, R0
        ST   y, R7
        """
        program = parse_assembly(text)
        assert [i.opcode for i in program] == [
            Opcode.CONST, Opcode.LOAD, Opcode.COPY, Opcode.NEG, Opcode.ADD,
            Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.STORE,
        ]
        assert program[2].wait == 1  # the NOP folded into MOV
        assert program[0].immediate == 15
        assert program[-1].variable == "y"
        assert program[-1].src_regs == (7,)

    def test_wait_tags(self):
        program = parse_assembly("[wait=3] LI R0, 1")
        assert program[0].wait == 3

    def test_nops_accumulate(self):
        program = parse_assembly("NOP\nNOP\nLI R0, 1")
        assert program[0].wait == 2

    def test_trailing_nops_dropped(self):
        program = parse_assembly("LI R0, 1\nNOP\nNOP")
        assert len(program) == 1

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("JMP R0", "unknown mnemonic"),
            ("LI R0", "expects 2 operands"),
            ("LI X0, 5", "expected a register"),
            ("LI R0, lots", "bad immediate"),
            ("[wait=2] NOP", "NOP cannot carry"),
            ("[wait=2]", "wait tag without"),
            ("ADD R0, R1", "expects 3 operands"),
        ],
    )
    def test_errors(self, text, fragment):
        with pytest.raises(AsmSyntaxError, match=fragment):
            parse_assembly(text)


class TestRegisterMachine:
    def test_figure3_text_round_trip(self, sim_machine):
        result = compile_source("b = 15; a = b * a;", sim_machine)
        machine = RegisterMachine(sim_machine)
        trace = machine.run_text(str(result.assembly), {"a": 3})
        assert trace.memory["a"] == 45 and trace.memory["b"] == 15
        assert trace.total_cycles == result.issue_span_cycles

    def test_under_waited_text_faults(self, sim_machine):
        # Mul result used immediately: missing NOPs must be detected.
        text = "LD R0, a\nNOP\nMUL R1, R0, R0\nST b, R1"
        machine = RegisterMachine(sim_machine)
        with pytest.raises(RegisterHazardError, match="not safe"):
            machine.run_text(text, {"a": 2})

    def test_implicit_mode_stalls_instead(self, sim_machine):
        text = "LD R0, a\nMUL R1, R0, R0\nST b, R1"
        machine = RegisterMachine(sim_machine)
        trace = machine.run_text(text, {"a": 2}, stall_on_hazard=True)
        assert trace.memory["b"] == 4
        assert trace.stall_cycles > 0

    def test_read_before_write_faults(self, sim_machine):
        machine = RegisterMachine(sim_machine)
        with pytest.raises(RegisterHazardError, match="before any write"):
            machine.run_text("ADD R0, R1, R2")

    def test_undefined_variable_faults(self, sim_machine):
        machine = RegisterMachine(sim_machine)
        with pytest.raises(RegisterHazardError, match="undefined variable"):
            machine.run_text("LD R0, ghost")

    def test_explicit_interlock_text(self, sim_machine):
        result = compile_source(
            "b = 15; a = b * a;",
            sim_machine,
            discipline=DelayDiscipline.EXPLICIT_INTERLOCK,
        )
        machine = RegisterMachine(sim_machine)
        trace = machine.run_text(str(result.assembly), {"a": 3})
        assert trace.memory["a"] == 45
        assert trace.total_cycles == result.issue_span_cycles

    def test_implicit_interlock_text(self, sim_machine):
        result = compile_source(
            "b = 15; a = b * a;",
            sim_machine,
            discipline=DelayDiscipline.IMPLICIT_INTERLOCK,
        )
        machine = RegisterMachine(sim_machine)
        trace = machine.run_text(
            str(result.assembly), {"a": 3}, stall_on_hazard=True
        )
        assert trace.memory["a"] == 45
        # Hardware stalls recover exactly the compiler's NOP count.
        assert trace.total_cycles == result.issue_span_cycles

    def test_kernels_round_trip_as_text(self, sim_machine):
        machine = RegisterMachine(sim_machine)
        for kernel in KERNELS:
            result = compile_source(kernel.source, sim_machine, name=kernel.name)
            trace = machine.run_text(str(result.assembly), kernel.memory)
            expected = run_program(result.program, kernel.memory)
            for var in result.program.variables_written():
                assert Fraction(trace.memory[var]) == Fraction(expected[var]), (
                    kernel.name,
                    var,
                )
            assert trace.total_cycles == result.issue_span_cycles, kernel.name


@given(
    statements=st.integers(2, 12),
    seed=st.integers(0, 3_000),
    machine_name=st.sampled_from(
        ["paper-simulation", "deep-memory", "unpipelined-units", "scalar"]
    ),
)
@settings(max_examples=80, deadline=None)
def test_text_level_round_trip_property(statements, seed, machine_name):
    """The strongest end-to-end property in the suite: random program ->
    optimize -> schedule -> allocate -> *emit text* -> reparse -> execute
    on the register machine == source semantics, in exactly the cycles
    the scheduler promised."""
    machine = get_machine(machine_name)
    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(statements, 5, 3, seed, profile)
    block = lower_program(program)
    if not len(block):
        return
    dag = DependenceDAG(block)
    result = schedule_block(dag, machine)
    allocation = allocate_registers(block, result.best.order)
    assembly = generate_assembly(block, result.best, allocation)
    memory = {v: 2 * i + 1 for i, v in enumerate(variable_names(5))}
    trace = RegisterMachine(machine).run_text(str(assembly), memory)
    expected = run_program(program, memory)
    for var in program.variables_written():
        assert trace.memory[var] == expected[var], var
    assert trace.total_cycles == result.best.issue_span_cycles
