"""Modulo software pipelining: MII bounds, kernel search, certificates.

Every schedule the search emits is re-checked here through the
*independent* steady-state certificate
(:func:`repro.verify.certificate.check_steady_state`) — the checker that
shares no code with ``repro.sched`` — and, on small bodies, against the
complete brute-force II enumeration.  The headline claim of the loop
tier is also pinned: on the paper's simulation machine the modulo
scheduler beats the steady state of the plain list schedule outright.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_loop, parse_program
from repro.machine.presets import PRESETS, get_machine
from repro.sched.nop_insertion import ScheduleTiming
from repro.sched.pipelining import (
    min_initiation_interval,
    modulo_feasible,
    schedule_loop,
    steady_state_offsets,
)
from repro.sched.search import ScheduleRequest, SearchOptions
from repro.synth.loops import LOOP_KERNELS, get_loop_kernel
from repro.telemetry import Telemetry
from repro.verify.certificate import brute_force_min_ii, check_steady_state

MACHINE_NAMES = tuple(sorted(PRESETS))


def _lower(source: str):
    prog = parse_program(source)
    return lower_loop(prog.statements[0], name="test")


# ---------------------------------------------------------------------------
# MII
# ---------------------------------------------------------------------------


def test_mii_hand_example():
    # 6 body tuples on paper-simulation: single issue forces ResMII 6;
    # the a->a recurrence (Load..Store round trip) gives RecMII 4.
    loop = get_loop_kernel("scaled-update").lower()
    report = min_initiation_interval(loop, get_machine("paper-simulation"))
    assert report.res_mii == 6
    assert report.rec_mii == 4
    assert report.mii == 6


def test_mii_recurrence_bound_dominates():
    # One long serial recurrence, tiny body: rec wins over res.
    loop = get_loop_kernel("decay").lower()
    report = min_initiation_interval(loop, get_machine("paper-simulation"))
    assert report.rec_mii > report.res_mii
    assert report.mii == report.rec_mii


@pytest.mark.parametrize("machine_name", MACHINE_NAMES)
@pytest.mark.parametrize("kernel", LOOP_KERNELS, ids=lambda k: k.name)
def test_mii_is_a_true_lower_bound(kernel, machine_name):
    loop = kernel.lower()
    machine = get_machine(machine_name)
    result = schedule_loop(loop, machine)
    assert result.ii >= min_initiation_interval(loop, machine).mii


# ---------------------------------------------------------------------------
# The search, certified, over the whole kernel x preset grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine_name", MACHINE_NAMES)
@pytest.mark.parametrize("kernel", LOOP_KERNELS, ids=lambda k: k.name)
def test_kernels_scheduled_and_certified(kernel, machine_name):
    loop = kernel.lower()
    machine = get_machine(machine_name)
    result = schedule_loop(loop, machine)
    assert result.ii <= result.list_ii
    assert result.ii >= result.mii
    assert modulo_feasible(
        loop, machine, result.offsets, result.ii,
        assignment=result.assignment,
    )
    certificate = check_steady_state(
        loop.body, machine, result.offsets, result.ii,
        assignment=result.assignment,
    )
    assert certificate.ok, certificate.summary()


def test_strict_win_over_list_schedule():
    # The acceptance-criteria kernel: modulo overlap recovers II 6 on
    # the paper's simulation machine where the list steady state needs 9.
    loop = get_loop_kernel("scaled-update").lower()
    result = schedule_loop(loop, get_machine("paper-simulation"))
    assert result.ii == 6
    assert result.list_ii == 9
    assert result.ii < result.list_ii
    assert result.completed  # II == MII: proven optimal
    assert result.searched


@pytest.mark.parametrize("machine_name", ("paper-simulation", "scalar"))
@pytest.mark.parametrize(
    "name", ("scaled-update", "geo-sum", "horner-stream", "decay")
)
def test_brute_force_agrees_on_small_bodies(name, machine_name):
    loop = get_loop_kernel(name).lower()
    machine = get_machine(machine_name)
    result = schedule_loop(loop, machine)
    brute = brute_force_min_ii(
        loop.body, machine, assignment=result.assignment
    )
    assert brute.min_ii <= result.ii
    if result.completed:
        assert brute.min_ii == result.ii


def test_steady_state_offsets_are_feasible():
    loop = get_loop_kernel("geo-sum").lower()
    machine = get_machine("paper-simulation")
    from repro.ir.dag import DependenceDAG
    from repro.sched.list_scheduler import list_schedule

    order = list_schedule(DependenceDAG(loop.body))
    ii, offsets = steady_state_offsets(loop, machine, order)
    assert modulo_feasible(loop, machine, offsets, ii)


# ---------------------------------------------------------------------------
# Corruption is caught (scheduler-side check and independent certificate)
# ---------------------------------------------------------------------------


def _corruptions(offsets, ii):
    idents = sorted(offsets)
    # Slot collision: force two tuples into the same residue class.
    a, b = idents[0], idents[1]
    collided = dict(offsets)
    collided[b] = collided[a] + ii
    yield collided, ii
    # Dependence violation: issue everything at once.
    yield {z: 0 if z == idents[0] else k for k, z in enumerate(idents)}, ii
    # II below the single-issue bound.
    yield dict(offsets), len(idents) - 1


def test_corrupted_offsets_rejected_everywhere():
    loop = get_loop_kernel("scaled-update").lower()
    machine = get_machine("paper-simulation")
    result = schedule_loop(loop, machine)
    for bad_offsets, bad_ii in _corruptions(result.offsets, result.ii):
        assert not modulo_feasible(loop, machine, bad_offsets, bad_ii)
        report = check_steady_state(
            loop.body, machine, bad_offsets, bad_ii,
            assignment=result.assignment,
        )
        assert not report.ok


def test_empty_loop_rejected():
    # Loop bodies are non-empty by construction through the front end;
    # the entry point still guards the degenerate hand-built case.
    from repro.ir.block import BasicBlock
    from repro.ir.loop import LoopBlock

    empty = LoopBlock(
        body=BasicBlock(tuples=(), name="empty"),
        carried=(),
        loop_var=None,
        start=0,
        stop=0,
    )
    with pytest.raises(ValueError, match="empty"):
        schedule_loop(empty, get_machine("scalar"))


# ---------------------------------------------------------------------------
# Result anatomy: stream, prologue/epilogue, ScheduleOutcome protocol
# ---------------------------------------------------------------------------


def test_stream_has_no_cycle_collisions():
    loop = get_loop_kernel("scaled-update").lower()
    result = schedule_loop(loop, get_machine("paper-simulation"))
    trips = 5
    stream = result.stream(trips)
    cycles = [c for c, _, _ in stream]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == len(cycles)
    assert len(stream) == trips * len(loop.body)
    # Instance (z, i) issues at exactly i*II + offset(z).
    for cycle, iteration, z in stream:
        assert cycle == iteration * result.ii + result.offsets[z]


def test_prologue_epilogue_partition_the_ramp():
    loop = get_loop_kernel("horner-stream").lower()
    result = schedule_loop(loop, get_machine("deep-memory"))
    assert result.stage_count >= 2  # otherwise nothing to fill/drain
    trips = result.stage_count + 2
    stream = result.stream(trips)
    fill = (result.stage_count - 1) * result.ii
    assert result.prologue(trips) == [e for e in stream if e[0] < fill]
    assert result.epilogue(trips) == [
        e for e in stream if e[0] >= trips * result.ii
    ]


def test_modulo_result_satisfies_schedule_outcome_protocol():
    loop = get_loop_kernel("geo-sum").lower()
    result = schedule_loop(loop, get_machine("paper-simulation"))
    assert result.provenance == "modulo"
    assert result.objective == result.ii
    assert isinstance(result.schedule, ScheduleTiming)
    assert result.elapsed_seconds >= 0
    assert isinstance(result.completed, bool)
    assert sorted(result.schedule.order) == sorted(loop.body.idents)
    assert "II" in str(result)
    assert "stage" in result.kernel_text or "nop" in result.kernel_text


def test_kernel_window_holds_each_tuple_once():
    loop = get_loop_kernel("coupled-triple").lower()
    result = schedule_loop(loop, get_machine("paper-simulation"))
    kernel = result.kernel
    assert len(kernel) == result.ii
    placed = [z for z in kernel if z is not None]
    assert sorted(placed) == sorted(loop.body.idents)


def test_telemetry_records_loop_time():
    telemetry = Telemetry()
    loop = get_loop_kernel("decay").lower()
    schedule_loop(loop, get_machine("scalar"), telemetry=telemetry)
    assert telemetry.timers.get("time.schedule_loop", 0) > 0


# ---------------------------------------------------------------------------
# The unified request form
# ---------------------------------------------------------------------------


def test_schedule_loop_accepts_request():
    loop = get_loop_kernel("scaled-update").lower()
    machine = get_machine("paper-simulation")
    legacy = schedule_loop(loop, machine)
    request = ScheduleRequest(problem=loop, machine=machine)
    via_request = schedule_loop(request)
    assert via_request.ii == legacy.ii
    assert via_request.offsets == legacy.offsets
    assert via_request.completed == legacy.completed


def test_schedule_loop_rejects_request_plus_kwargs():
    loop = get_loop_kernel("decay").lower()
    machine = get_machine("scalar")
    request = ScheduleRequest(problem=loop, machine=machine)
    with pytest.raises(ValueError, match="not both"):
        schedule_loop(request, machine=machine)


def test_schedule_loop_rejects_block_request():
    from repro.ir import parse_block

    block = parse_block("1: Load #a\n2: Store #a, 1")
    request = ScheduleRequest(
        problem=block, machine=get_machine("scalar")
    )
    with pytest.raises(TypeError, match="LoopBlock"):
        schedule_loop(request)


# ---------------------------------------------------------------------------
# Differential fuzz: random loops, searched II <= list II, all certified
# ---------------------------------------------------------------------------

_FUZZ_VARS = ("a", "b", "c")


@st.composite
def random_loops(draw):
    n_stmts = draw(st.integers(1, 3))
    stmts = []
    for _ in range(n_stmts):
        target = draw(st.sampled_from(_FUZZ_VARS))
        lhs = draw(st.sampled_from(_FUZZ_VARS + ("i",)))
        rhs = draw(st.sampled_from(_FUZZ_VARS))
        op = draw(st.sampled_from(("+", "-", "*")))
        stmts.append(f"{target} = {lhs} {op} {rhs};")
    trips = draw(st.integers(2, 6))
    return f"for i in 0..{trips} {{ {' '.join(stmts)} }}"


@settings(max_examples=25, deadline=None)
@given(
    source=random_loops(),
    machine_name=st.sampled_from(MACHINE_NAMES),
)
def test_fuzz_searched_never_loses_and_always_certifies(source, machine_name):
    loop = _lower(source)
    machine = get_machine(machine_name)
    result = schedule_loop(loop, machine)
    assert result.ii <= result.list_ii, source
    certificate = check_steady_state(
        loop.body, machine, result.offsets, result.ii,
        assignment=result.assignment,
    )
    assert certificate.ok, f"{source}\n{certificate.summary()}"
