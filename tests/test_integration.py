"""Whole-system integration tests: front end -> optimizer -> scheduler ->
register allocation -> code generation -> simulator, cross-validated
against the interpreter and the exhaustive search, on every preset
machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.assembly import generate_assembly, padded_stream
from repro.driver import compile_source
from repro.frontend.ast import run_program
from repro.ir.dag import DependenceDAG
from repro.machine.presets import PRESETS, get_machine
from repro.regalloc.allocator import allocate_registers
from repro.sched.exhaustive import legal_only_search
from repro.sched.search import schedule_block
from repro.simulator.core import PipelineSimulator
from repro.synth.generator import generate_block, variable_names
from repro.synth.stats import GeneratorProfile

DETERMINISTIC_MACHINES = [
    name
    for name in PRESETS
    if get_machine(name).is_deterministic
]

PROGRAMS = [
    ("b = 15; a = b * a;", {"a": 3}),
    ("x = (a + b) * (c - d); y = x / 2; z = y * y + x;", {"a": 5, "b": 3, "c": 9, "d": 1}),
    ("r = p; p = q; q = r;", {"p": 1, "q": 2, "r": 0}),
    ("acc = acc + v1 * w1; acc = acc + v2 * w2; acc = acc + v3 * w3;",
     {"acc": 0, "v1": 1, "w1": 2, "v2": 3, "w2": 4, "v3": 5, "w3": 6}),
    ("t = -(a * a) + b * b - c;", {"a": 2, "b": 3, "c": 4}),
]


@pytest.mark.parametrize("machine_name", DETERMINISTIC_MACHINES)
@pytest.mark.parametrize("source,memory", PROGRAMS)
def test_compile_on_every_machine(machine_name, source, memory):
    """Every program compiles, verifies, and is provably optimal on every
    deterministic preset machine."""
    machine = get_machine(machine_name)
    result = compile_source(source, machine, verify_memory=memory)
    assert result.search.completed


@pytest.mark.parametrize("source,memory", PROGRAMS)
def test_optimal_matches_exhaustive_end_to_end(source, memory, sim_machine):
    result = compile_source(source, sim_machine)
    if len(result.block) <= 12:
        truth = legal_only_search(result.dag, sim_machine).optimal_nops
        assert result.total_nops == truth


def test_scheduling_never_changes_results(sim_machine):
    """Across a bank of synthetic blocks: the scheduled, register
    allocated, NOP-padded stream computes exactly what the source
    program computes — and the cycle count equals the schedule's."""
    profile = GeneratorProfile(exclude_division=True)
    for seed in range(12):
        gb = generate_block(12, 5, 4, seed=seed, profile=profile)
        if len(gb.block) < 2:
            continue
        memory = {v: 2 * i + 1 for i, v in enumerate(variable_names(5))}
        expected = run_program(gb.program, memory)
        dag = DependenceDAG(gb.block)
        result = schedule_block(dag, sim_machine)
        allocation = allocate_registers(gb.block, result.best.order)
        generate_assembly(gb.block, result.best, allocation)
        sim = PipelineSimulator(gb.block, sim_machine, dag)
        trace = sim.run_padded(padded_stream(result.best), memory)
        assert trace.total_cycles == result.best.issue_span_cycles
        for var in gb.program.variables_written():
            assert trace.memory[var] == expected[var], (seed, var)


def test_optimal_beats_or_ties_every_heuristic(sim_machine):
    from repro.sched.heuristics import greedy_schedule, gross_schedule
    from repro.sched.list_scheduler import list_schedule
    from repro.sched.nop_insertion import compute_timing

    for seed in range(20):
        gb = generate_block(10, 5, 4, seed=100 + seed)
        if len(gb.block) < 2:
            continue
        dag = DependenceDAG(gb.block)
        optimal = schedule_block(dag, sim_machine)
        assert optimal.completed
        competitors = [
            gross_schedule(dag, sim_machine).total_nops,
            greedy_schedule(dag, sim_machine).total_nops,
            compute_timing(dag, list_schedule(dag), sim_machine).total_nops,
        ]
        assert optimal.final_nops <= min(competitors)


def test_paper_headline_claim_small_scale(sim_machine):
    """Section 1: 'provably optimal schedules for ... over 98%' — at small
    scale the rate must still be high, and the truncated rest must carry
    valid (if possibly suboptimal) schedules."""
    from repro.experiments.runner import run_population

    records = run_population(150, curtail=50_000, master_seed=0)
    complete = sum(r.completed for r in records)
    assert complete / len(records) >= 0.95
    assert all(r.final_nops <= r.seed_nops for r in records)


@given(st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_full_stack_fuzz(seed):
    """Random program -> full pipeline on two machines with verification
    enabled; any semantic divergence raises inside compile_source."""
    from repro.synth.generator import generate_program

    profile = GeneratorProfile(exclude_division=True)
    program = generate_program(8, 4, 3, seed, profile)
    memory = {v: i + 1 for i, v in enumerate(variable_names(4))}
    for machine_name in ("paper-simulation", "deep-memory"):
        compile_source(
            str(program),
            get_machine(machine_name),
            verify_memory=memory,
        )
