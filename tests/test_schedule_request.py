"""The unified ScheduleRequest API.

One object — problem, machine, options, backend — accepted everywhere a
scheduling problem travels: :func:`repro.sched.search.schedule_block`,
:func:`repro.sched.pipelining.schedule_loop`, and the service
fingerprint path (:func:`repro.service.fingerprint.fingerprint_problem`).
The legacy keyword signatures must keep producing bit-identical results,
and unsupported backend/option combinations must fail with the uniform
structured error (``error.backend`` / ``error.field``) regardless of
which field is at fault.
"""

from __future__ import annotations

import pytest

from repro.ir import DependenceDAG, parse_block
from repro.machine.presets import get_machine
from repro.sched.pipelining import schedule_loop
from repro.sched.search import (
    ScheduleOutcome,
    ScheduleRequest,
    SearchOptions,
    schedule_block,
    unsupported_backend_option,
)
from repro.service.fingerprint import fingerprint_problem
from repro.synth.loops import get_loop_kernel

BLOCK = parse_block(
    "1: Load #a\n"
    "2: Load #b\n"
    "3: Mul 1, 2\n"
    "4: Add 3, 2\n"
    "5: Store #a, 4"
)


@pytest.fixture
def machine():
    return get_machine("paper-simulation")


# ---------------------------------------------------------------------------
# Construction and accessors
# ---------------------------------------------------------------------------


def test_request_from_block_and_dag_agree(machine):
    from_block = ScheduleRequest(problem=BLOCK, machine=machine)
    from_dag = ScheduleRequest(
        problem=DependenceDAG(BLOCK), machine=machine
    )
    assert not from_block.is_loop
    assert from_block.dag.idents == from_dag.dag.idents


def test_loop_request_accessors(machine):
    loop = get_loop_kernel("scaled-update").lower()
    request = ScheduleRequest(problem=loop, machine=machine)
    assert request.is_loop
    assert request.loop is loop
    assert sorted(request.dag.idents) == sorted(loop.body.idents)
    block_request = ScheduleRequest(problem=BLOCK, machine=machine)
    with pytest.raises(TypeError):
        block_request.loop


# ---------------------------------------------------------------------------
# schedule_block: request form == legacy form
# ---------------------------------------------------------------------------


def test_schedule_block_request_equals_legacy(machine):
    options = SearchOptions(curtail=500)
    legacy = schedule_block(DependenceDAG(BLOCK), machine, options)
    via_request = schedule_block(
        ScheduleRequest(problem=BLOCK, machine=machine, options=options)
    )
    assert legacy.best.order == via_request.best.order
    assert legacy.best.total_nops == via_request.best.total_nops
    assert legacy.completed == via_request.completed


def test_schedule_block_rejects_request_plus_kwargs(machine):
    request = ScheduleRequest(problem=BLOCK, machine=machine)
    with pytest.raises(ValueError, match="not both"):
        schedule_block(request, machine=machine)


def test_schedule_block_rejects_loop_request(machine):
    loop = get_loop_kernel("decay").lower()
    with pytest.raises(TypeError, match="schedule_loop"):
        schedule_block(ScheduleRequest(problem=loop, machine=machine))


# ---------------------------------------------------------------------------
# schedule_loop: request form == legacy form
# ---------------------------------------------------------------------------


def test_schedule_loop_request_equals_legacy(machine):
    loop = get_loop_kernel("geo-sum").lower()
    legacy = schedule_loop(loop, machine)
    via_request = schedule_loop(
        ScheduleRequest(problem=loop, machine=machine)
    )
    assert legacy.ii == via_request.ii
    assert legacy.offsets == via_request.offsets


# ---------------------------------------------------------------------------
# fingerprint_problem: the service path
# ---------------------------------------------------------------------------


def test_fingerprint_request_equals_legacy(machine):
    legacy = fingerprint_problem(DependenceDAG(BLOCK), machine)
    via_request = fingerprint_problem(
        ScheduleRequest(problem=BLOCK, machine=machine)
    )
    assert legacy == via_request


def test_fingerprint_rejects_request_plus_kwargs(machine):
    request = ScheduleRequest(problem=BLOCK, machine=machine)
    with pytest.raises(ValueError, match="not both"):
        fingerprint_problem(request, machine=machine)


def test_fingerprint_rejects_loop_request(machine):
    loop = get_loop_kernel("decay").lower()
    with pytest.raises(TypeError, match="loop"):
        fingerprint_problem(ScheduleRequest(problem=loop, machine=machine))


def test_fingerprint_requires_machine_without_request():
    with pytest.raises(TypeError, match="machine"):
        fingerprint_problem(DependenceDAG(BLOCK))


# ---------------------------------------------------------------------------
# Unsupported backend options: one structured error for every field
# ---------------------------------------------------------------------------


def test_unsupported_backend_option_shape():
    error = unsupported_backend_option("ilp", "engine")
    assert error.backend == "ilp"
    assert error.field == "engine"
    assert "'ilp'" in str(error) and "'engine'" in str(error)


@pytest.mark.parametrize(
    "kwargs, field",
    [
        (dict(engine="native"), "engine"),
        (dict(options=SearchOptions(max_live=3)), "max_live"),
    ],
)
def test_ilp_backend_rejects_search_only_fields(machine, kwargs, field):
    # Regression: engine used to be silently ignored while max_live
    # raised — both must fail the same structured way.
    with pytest.raises(ValueError) as excinfo:
        schedule_block(
            DependenceDAG(BLOCK), machine, backend="ilp", **kwargs
        )
    assert excinfo.value.backend == "ilp"
    assert excinfo.value.field == field
    assert repr(field) in str(excinfo.value)


# ---------------------------------------------------------------------------
# The common result protocol
# ---------------------------------------------------------------------------


def _assert_outcome(result):
    assert isinstance(result, ScheduleOutcome)
    assert isinstance(result.objective, int)
    assert isinstance(result.provenance, str)
    assert result.elapsed_seconds >= 0
    assert isinstance(result.completed, bool)
    assert result.schedule is not None


def test_all_result_types_satisfy_schedule_outcome(machine):
    search = schedule_block(DependenceDAG(BLOCK), machine)
    _assert_outcome(search)
    assert search.provenance == "search"

    ilp = schedule_block(DependenceDAG(BLOCK), machine, backend="ilp")
    _assert_outcome(ilp)
    assert ilp.provenance == "ilp"

    modulo = schedule_loop(get_loop_kernel("decay").lower(), machine)
    _assert_outcome(modulo)
    assert modulo.provenance == "modulo"
