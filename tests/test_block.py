"""Unit tests for basic blocks and the block builder."""

import pytest
from hypothesis import given, settings

from repro.ir.block import BasicBlock, BlockBuilder, BlockValidationError
from repro.ir.ops import Opcode
from repro.ir.tuples import add, const, load, mul, store

from .strategies import blocks


def simple_block() -> BasicBlock:
    return BasicBlock(
        [const(1, 15), store(2, "b", 1), load(3, "a"), mul(4, 1, 3), store(5, "a", 4)],
        "fig3",
    )


class TestValidation:
    def test_duplicate_reference_numbers(self):
        with pytest.raises(BlockValidationError, match="duplicate"):
            BasicBlock([const(1, 1), const(1, 2)])

    def test_unknown_reference(self):
        with pytest.raises(BlockValidationError, match="unknown tuple 9"):
            BasicBlock([const(1, 1), add(2, 1, 9)])

    def test_forward_reference(self):
        with pytest.raises(BlockValidationError, match="does not precede"):
            BasicBlock([add(1, 2, 2), const(2, 1)])

    def test_reference_to_store_result(self):
        with pytest.raises(BlockValidationError, match="produces no value"):
            BasicBlock([const(1, 1), store(2, "a", 1), store(3, "b", 2)])

    def test_empty_block_is_fine(self):
        assert len(BasicBlock([])) == 0


class TestAccess:
    def test_container_protocol(self):
        block = simple_block()
        assert len(block) == 5
        assert [t.ident for t in block] == [1, 2, 3, 4, 5]
        assert block[0].op is Opcode.CONST
        assert 3 in block and 9 not in block

    def test_by_ident_and_position(self):
        block = simple_block()
        assert block.by_ident(4).op is Opcode.MUL
        assert block.position_of(4) == 3
        with pytest.raises(KeyError):
            block.by_ident(42)

    def test_variable_views(self):
        block = simple_block()
        assert block.loaded_variables == ("a",)
        assert block.stored_variables == ("b", "a")
        assert block.variables == ("b", "a")

    def test_idents(self):
        assert simple_block().idents == (1, 2, 3, 4, 5)


class TestTransformations:
    def test_reordered_keeps_reference_numbers(self):
        block = simple_block()
        shuffled = block.reordered([3, 1, 4, 2, 5])
        assert shuffled.idents == (3, 1, 4, 2, 5)
        assert shuffled.by_ident(4).value_refs == (1, 3)

    def test_reordered_rejects_non_permutations(self):
        block = simple_block()
        with pytest.raises(BlockValidationError):
            block.reordered([1, 2, 3])
        with pytest.raises(BlockValidationError):
            block.reordered([1, 1, 2, 3, 4])

    def test_renumbered_is_dense_and_consistent(self):
        block = BasicBlock(
            [const(2, 15), load(5, "a"), mul(9, 2, 5), store(12, "a", 9)]
        )
        dense = block.renumbered()
        assert dense.idents == (1, 2, 3, 4)
        assert dense.by_ident(3).value_refs == (1, 2)
        assert dense.by_ident(4).value_refs == (3,)

    def test_without_removes_tuples(self):
        block = simple_block()
        trimmed = block.without([2])
        assert trimmed.idents == (1, 3, 4, 5)

    def test_without_rejects_dangling_uses(self):
        block = simple_block()
        with pytest.raises(BlockValidationError):
            block.without([1])  # tuple 4 still references 1


class TestBuilder:
    def test_builder_numbers_sequentially(self):
        b = BlockBuilder("built")
        c = b.emit_const(15)
        s = b.emit_store("b", c)
        ld = b.emit_load("a")
        m = b.emit_binary(Opcode.MUL, c, ld)
        b.emit_store("a", m)
        block = b.build()
        assert block.idents == (1, 2, 3, 4, 5)
        assert str(block) == str(simple_block())

    def test_builder_tuple_at(self):
        b = BlockBuilder()
        c = b.emit_const(3)
        assert b.tuple_at(c).op is Opcode.CONST
        assert len(b) == 1

    def test_builder_unary(self):
        b = BlockBuilder()
        c = b.emit_const(3)
        n = b.emit_unary(Opcode.NEG, c)
        assert b.build().by_ident(n).value_refs == (c,)


@given(blocks(max_size=12))
@settings(max_examples=60)
def test_generated_blocks_always_validate(block):
    """The strategy itself must only produce valid blocks (meta-test)."""
    # Re-validating by reconstruction must not raise.
    BasicBlock(block.tuples, block.name)


@given(blocks(max_size=12))
@settings(max_examples=60)
def test_renumbered_preserves_shape(block):
    dense = block.renumbered()
    assert len(dense) == len(block)
    assert dense.idents == tuple(range(1, len(block) + 1))
    for old, new in zip(block, dense):
        assert old.op is new.op
