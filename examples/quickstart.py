#!/usr/bin/env python3
"""Quickstart: compile the paper's Figure 3 program end to end.

Walks the whole Figure 2 pipeline on the Tables 4+5 simulation machine:
source -> tuples -> optimizer -> list schedule -> optimal schedule ->
register allocation -> assembly, then validates the result on the
cycle-accurate simulator.

Run:  python examples/quickstart.py
"""

from repro import compile_source, paper_simulation_machine
from repro.codegen import padded_stream
from repro.codegen.assembly import DelayDiscipline, generate_assembly
from repro.ir import format_block
from repro.sched import compute_timing, list_schedule
from repro.simulator import PipelineSimulator

SOURCE = """
{
    b = 15;
    a = b * a;
}
"""


def main() -> None:
    machine = paper_simulation_machine()
    print(machine.describe())
    print()

    result = compile_source(SOURCE, machine, verify_memory={"a": 3})

    print("source:")
    print(SOURCE.strip())
    print("\ntuple code (Figure 3):")
    print(format_block(result.block))

    print("\ndependences:")
    print(result.dag)

    naive = compute_timing(result.dag, result.dag.idents, machine)
    seeded = compute_timing(result.dag, list_schedule(result.dag), machine)
    print(
        f"\nNOPs: program order {naive.total_nops}, "
        f"list schedule {seeded.total_nops}, "
        f"optimal {result.total_nops} "
        f"(provably optimal: {result.search.completed}, "
        f"{result.search.omega_calls} omega calls)"
    )

    print("\ngenerated assembly (NOP padding):")
    print(result.assembly)

    explicit = generate_assembly(
        result.block,
        result.timing,
        result.allocation,
        DelayDiscipline.EXPLICIT_INTERLOCK,
    )
    print("\nsame schedule, explicit-interlock discipline:")
    print(explicit)

    sim = PipelineSimulator(result.block, machine, result.dag)
    trace = sim.run_padded(padded_stream(result.timing), {"a": 3})
    print(
        f"\nsimulated: {trace.total_cycles} issue cycles, "
        f"memory afterwards: {dict(trace.memory)}"
    )

    from repro.analysis import explain_schedule, render_timeline

    print("\npipeline timeline of the optimal schedule:")
    print(render_timeline(result.block, machine, result.timing, dag=result.dag))
    print("\nwhere the remaining NOPs come from:")
    for explanation in explain_schedule(
        result.block, machine, result.timing, dag=result.dag
    ):
        if explanation.eta:
            print(f"  {explanation}")


if __name__ == "__main__":
    main()
