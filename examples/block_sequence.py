#!/usr/bin/env python3
"""Scheduling across basic-block boundaries (paper footnote 1).

"Interactions between adjacent blocks can be managed without major
modification of the basic block schedules, essentially by modifying the
initial conditions in the analysis for each block."

This example compiles a three-block program (blocks separated by
``barrier;``) on a machine with a slow, unpipelined memory unit, and
shows why the initial conditions matter: scheduled in isolation, block 2
under-pads — its leading load collides with block 1's still-busy memory
unit — while the sequence-aware schedules replay hazard-free.

Run:  python examples/block_sequence.py
"""

from repro import compile_program, compile_source
from repro.codegen import padded_stream
from repro.ir import Opcode
from repro.machine import MachineDescription, PipelineDesc
from repro.simulator import HazardError, PipelineSimulator

SOURCE = """
    sum = a * b;
    barrier;
    sq = sum * sum;
    barrier;
    out = sq - sum;
"""

MEMORY = {"a": 2, "b": 3}


def slow_memory_machine() -> MachineDescription:
    """An unpipelined 5-tick memory unit shared by loads and stores, next
    to a pipelined multiplier — block-final stores keep memory busy well
    into the next block."""
    return MachineDescription(
        "slow-memory",
        [
            PipelineDesc("memory", 1, latency=5, enqueue_time=5),
            PipelineDesc("multiplier", 2, latency=4, enqueue_time=2),
        ],
        {Opcode.LOAD: {1}, Opcode.STORE: {1}, Opcode.MUL: {2}},
    )


def main() -> None:
    machine = slow_memory_machine()
    compiled = compile_program(SOURCE, machine, verify_memory=MEMORY)

    print(f"{len(compiled)} blocks, all provably optimal: {compiled.all_optimal}")
    for i, (block_result, text) in enumerate(
        zip(compiled.blocks, compiled.assembly_text.split("\n\n"))
    ):
        print(f"\n{text}")
    print(
        f"\ntotal: {compiled.total_nops} NOPs over "
        f"{compiled.total_cycles} issue cycles"
    )

    # Now the cautionary tale: schedule the middle block as if the
    # machine were idle, and replay it right after block 0.
    from repro.sched.interblock import carry_out

    naive = compile_source("sq = sum * sum;", machine)
    first = compiled.blocks[0]
    conditions = carry_out(first.timing, first.dag, machine)
    print(f"\ncarry-out of block 0: {conditions}")
    sim = PipelineSimulator(naive.block, machine, initial=conditions)
    try:
        sim.run_padded(padded_stream(naive.timing), {"sum": 6})
        print("naive middle block replayed cleanly (unexpected!)")
    except HazardError as exc:
        print(f"naive middle block under-pads: {exc}")
        aware = compiled.blocks[1]
        print(
            f"sequence-aware schedule pads {aware.total_nops} NOPs "
            f"(naive padded {naive.total_nops}) and replays hazard-free"
        )


if __name__ == "__main__":
    main()
