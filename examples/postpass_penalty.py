#!/usr/bin/env python3
"""Why schedule before register allocation?  (sections 1 and 3.4)

"The register assignment can impose unnecessary restrictions on the
schedule, resulting in unnecessary execution delays."  This example
makes the claim concrete on two independent multiply chains: allocate
registers first (as a postpass scheduler must live with) and the
allocator's register reuse serializes them; schedule the tuple form
first (the paper's design) and they interleave freely.

Run:  python examples/postpass_penalty.py
"""

from repro import paper_simulation_machine
from repro.analysis import render_timeline
from repro.frontend import lower_source
from repro.ir import DependenceDAG, format_block
from repro.postpass import postpass_dag, register_reuse_edges
from repro.regalloc import allocate_registers
from repro.sched import schedule_block

SOURCE = "p = a * a; q = b * b;"


def main() -> None:
    machine = paper_simulation_machine()
    block = lower_source(SOURCE)
    print("tuple code (no registers yet):")
    print(format_block(block))

    true_dag = DependenceDAG(block)
    allocation = allocate_registers(block)  # program order, tightest file
    reuse = register_reuse_edges(block, allocation)
    print(
        f"\nallocating {allocation.num_registers_used} registers over "
        f"program order adds {len(reuse)} artificial dependences:"
    )
    for edge in reuse:
        print(f"  {edge}")

    prepass = schedule_block(true_dag, machine)
    constrained, _ = postpass_dag(block)
    postpass = schedule_block(constrained, machine)

    print(
        f"\nprepass (schedule, then allocate):   "
        f"{prepass.final_nops} NOPs over "
        f"{prepass.best.issue_span_cycles} cycles"
    )
    print(render_timeline(block, machine, prepass.best, dag=true_dag))
    print(
        f"\npostpass (allocate, then schedule):  "
        f"{postpass.final_nops} NOPs over "
        f"{postpass.best.issue_span_cycles} cycles"
    )
    print(render_timeline(block, machine, postpass.best, dag=constrained))
    print(
        f"\npenalty: {postpass.final_nops - prepass.final_nops} NOPs — "
        "both searches are optimal; the difference is purely the\n"
        "artificial register-reuse dependences (run "
        "`repro-experiments ablation-a3` for the population-level sweep)"
    )


if __name__ == "__main__":
    main()
