#!/usr/bin/env python3
"""Very large basic blocks: monolithic optimal search vs splitting.

Section 5.3: "For very large basic blocks, it might be useful to split
the basic blocks into smaller sections ... A good heuristic for the split
might be to simply partition the list schedule."  Trace-scheduled or
hand-unrolled loop bodies produce exactly such blocks (section 6 mentions
trace scheduling as future work).

This example builds a 16x-unrolled multiply-accumulate loop body
(~80 tuples), then schedules it monolithically (paper prune set and full
prune set) and window-by-window, reporting NOPs, Ω calls, and runtime.

Run:  python examples/large_blocks.py
"""

import time

from repro import paper_simulation_machine
from repro.frontend import lower_source
from repro.ir import DependenceDAG
from repro.opt import optimize_block
from repro.sched import SearchOptions, schedule_block, schedule_block_split


def unrolled_kernel(factor: int) -> str:
    lines = []
    for i in range(factor):
        lines.append(f"acc{i % 4} = acc{i % 4} + v{i} * w{i};")
    lines.append("acc0 = acc0 + acc1;")
    lines.append("acc2 = acc2 + acc3;")
    lines.append("total = acc0 + acc2;")
    return "\n".join(lines)


def main() -> None:
    machine = paper_simulation_machine()
    block = optimize_block(lower_source(unrolled_kernel(16)))
    dag = DependenceDAG(block)
    print(f"unrolled kernel: {len(block)} tuples, "
          f"{dag.critical_path_length}-deep dependence chain\n")

    print(f"{'scheduler':<28} {'NOPs':>5} {'omega':>8} {'seconds':>8} {'status':<10}")

    start = time.perf_counter()
    paper = schedule_block(dag, machine, SearchOptions.paper(curtail=100_000))
    print(
        f"{'monolithic (paper prunes)':<28} {paper.final_nops:>5} "
        f"{paper.omega_calls:>8} {time.perf_counter() - start:>8.3f} "
        f"{'optimal' if paper.completed else 'truncated':<10}"
    )

    start = time.perf_counter()
    full = schedule_block(dag, machine, SearchOptions(curtail=100_000))
    print(
        f"{'monolithic (all prunes)':<28} {full.final_nops:>5} "
        f"{full.omega_calls:>8} {time.perf_counter() - start:>8.3f} "
        f"{'optimal' if full.completed else 'truncated':<10}"
    )

    for window in (10, 20, 40):
        start = time.perf_counter()
        split = schedule_block_split(
            dag, machine, window=window, curtail_per_window=5_000
        )
        status = "local-opt" if split.all_windows_completed else "truncated"
        print(
            f"{f'split (window={window})':<28} {split.total_nops:>5} "
            f"{split.omega_calls:>8} {time.perf_counter() - start:>8.3f} "
            f"{status:<10}"
        )

    print(
        "\nReading: splitting bounds worst-case work per window (its omega"
        "\nceiling is windows x lambda) at a usually-small NOP premium over"
        "\nthe monolithic optimum — the paper's 1990 escape hatch, which the"
        "\nstronger prunes have mostly obsoleted at this block size."
    )


if __name__ == "__main__":
    main()
