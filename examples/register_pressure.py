#!/usr/bin/env python3
"""Scheduling before register allocation, with a real register budget.

Section 3 of the paper argues for scheduling the tuple form *before*
registers are assigned: a postpass scheduler inherits artificial
anti-dependences from register reuse, while the tuple scheduler only sees
true dependences.  Spill code is created up front (section 3.1) so that
allocation after scheduling never needs new spills.

This example compiles a register-hungry expression under shrinking
register files and shows the three-way trade: spill instructions added,
NOPs achieved, and registers used.

Run:  python examples/register_pressure.py
"""

from repro import compile_source, paper_simulation_machine
from repro.frontend import lower_source
from repro.regalloc import insert_spill_code, max_live

SOURCE = """
{
    s = a * b;
    t = c * d;
    u = e * f;
    v = g * h;
    x = s + t;
    y = u + v;
    z = x + y;
    r = z + s;
    q = r + t;
}
"""

MEMORY = {v: i + 2 for i, v in enumerate("abcdefgh")}


def main() -> None:
    machine = paper_simulation_machine()
    block = lower_source(SOURCE)
    unconstrained = compile_source(SOURCE, machine, verify_memory=MEMORY)
    print(
        f"program-order register pressure: {max_live(block)} values live\n"
        f"unconstrained optimal schedule: {unconstrained.total_nops} NOPs, "
        f"{unconstrained.allocation.num_registers_used} registers\n"
    )

    print(f"{'registers':>9} {'spill code':>11} {'block size':>11} "
          f"{'NOPs':>5} {'cycles':>7}")
    for k in (8, 6, 5, 4, 3):
        report = insert_spill_code(block, k)
        result = compile_source(
            SOURCE, machine, num_registers=k, verify_memory=MEMORY
        )
        added = report.spill_stores + report.reloads
        print(
            f"{k:>9} {added:>11} {len(result.block):>11} "
            f"{result.total_nops:>5} {result.issue_span_cycles:>7}"
        )

    print(
        "\nReading: each tightening of the register file inserts spill"
        "\nstores/reloads before scheduling; the scheduler then works"
        "\nwithin the budget (max_live constraint), so allocation never"
        "\nfails — at the price of a longer schedule."
    )


if __name__ == "__main__":
    main()
