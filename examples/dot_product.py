#!/usr/bin/env python3
"""Scheduling a scientific kernel: an unrolled dot product.

The paper's motivation (section 1) is hiding pipeline latency in exactly
this kind of code: a multiply-accumulate chain whose naive emission stalls
on every multiplier result.  This example unrolls ``acc += v[i] * w[i]``
four ways, compiles it with each scheduler, and compares the pipelined
execution time on the Tables 4+5 machine — then shows what happens on a
deeper memory pipeline.

Run:  python examples/dot_product.py
"""

from repro import compile_source, paper_simulation_machine
from repro.machine import deep_memory_machine

KERNEL = """
{
    acc = acc + v1 * w1;
    acc = acc + v2 * w2;
    acc = acc + v3 * w3;
    acc = acc + v4 * w4;
}
"""

MEMORY = {
    "acc": 0,
    "v1": 1, "w1": 2,
    "v2": 3, "w2": 4,
    "v3": 5, "w3": 6,
    "v4": 7, "w4": 8,
}
EXPECTED = 1 * 2 + 3 * 4 + 5 * 6 + 7 * 8


def compare(machine) -> None:
    print(f"--- {machine.name} ---")
    rows = []
    for scheduler in ("none", "list", "greedy", "gross", "optimal"):
        result = compile_source(
            KERNEL, machine, scheduler=scheduler, verify_memory=MEMORY
        )
        rows.append(
            (
                scheduler,
                result.total_nops,
                result.issue_span_cycles,
                len(result.block),
            )
        )
    base = rows[0][2]
    print(f"{'scheduler':<10} {'NOPs':>5} {'cycles':>7} {'speedup':>8}")
    for name, nops, cycles, size in rows:
        print(f"{name:<10} {nops:>5} {cycles:>7} {base / cycles:>7.2f}x")
    print(f"(block size: {rows[0][3]} instructions; acc == {EXPECTED} verified)\n")


def main() -> None:
    compare(paper_simulation_machine())
    # On a deep memory pipeline (8-tick loads), scheduling matters even
    # more: there is a lot more latency to hide.
    compare(deep_memory_machine())


if __name__ == "__main__":
    main()
