#!/usr/bin/env python3
"""Architecture design-space sweep: how much latency can scheduling hide?

Section 6 of the paper points at "performance using various (more
complex) pipeline structures" as the next question.  This example sweeps
the multiplier latency and enqueue time of a two-pipe machine and reports,
for a corpus of synthetic blocks, the stall cycles per block before and
after optimal scheduling — the compiler's view of a hardware trade-off.

Run:  python examples/machine_design_space.py
"""

from repro.ir import DependenceDAG, Opcode
from repro.machine import MachineDescription, PipelineDesc
from repro.sched import SearchOptions, compute_timing, program_order, schedule_block
from repro.synth import sample_population


def machine_with(mul_latency: int, mul_enqueue: int) -> MachineDescription:
    return MachineDescription(
        name=f"mul-l{mul_latency}-e{mul_enqueue}",
        pipelines=[
            PipelineDesc("loader", 1, latency=2, enqueue_time=1),
            PipelineDesc("multiplier", 2, mul_latency, mul_enqueue),
        ],
        op_map={Opcode.LOAD: {1}, Opcode.MUL: {2}, Opcode.DIV: {2}},
    )


def main() -> None:
    corpus = [
        DependenceDAG(gb.block)
        for gb in sample_population(60, master_seed=42)
        if len(gb.block) > 1
    ]
    options = SearchOptions(curtail=20_000)

    print(
        f"{'machine':<12} {'naive NOPs':>11} {'optimal NOPs':>13} "
        f"{'hidden':>7} {'% optimal proofs':>17}"
    )
    for latency in (2, 4, 6, 8):
        for enqueue in sorted({1, 2, latency}):
            if enqueue > latency:
                continue
            machine = machine_with(latency, enqueue)
            naive = optimal = proofs = 0
            for dag in corpus:
                naive += compute_timing(
                    dag, program_order(dag), machine
                ).total_nops
                result = schedule_block(dag, machine, options)
                optimal += result.final_nops
                proofs += result.completed
            hidden = 100.0 * (naive - optimal) / naive if naive else 100.0
            print(
                f"{machine.name:<12} {naive / len(corpus):>11.2f} "
                f"{optimal / len(corpus):>13.2f} {hidden:>6.1f}% "
                f"{100.0 * proofs / len(corpus):>16.1f}%"
            )

    print(
        "\nReading: 'hidden' is the fraction of naive stall cycles the"
        "\noptimal scheduler eliminates; deeper/busier multipliers leave"
        "\nmore irreducible stalls, but most of the latency stays hidden."
    )


if __name__ == "__main__":
    main()
