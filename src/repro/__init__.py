"""repro — reproduction of Nisar & Dietz, *Optimal Code Scheduling for
Multiple-Pipeline Processors* (Purdue TR-EE 90-11 / ICPP 1990).

Public API tour
---------------
- :mod:`repro.ir` — the tuple intermediate form, basic blocks, the
  dependence DAG, a reference interpreter, and the paper's linear
  notation (Figure 3).
- :mod:`repro.frontend` — the example source language, lowered to tuples.
- :mod:`repro.opt` — constant folding/propagation, CSE, DCE, peephole.
- :mod:`repro.machine` — pipeline description tables and presets
  (including the paper's Tables 2-5 machines).
- :mod:`repro.sched` — NOP insertion (Ω), the list-scheduling seed, the
  optimal branch-and-bound search, heuristic and exhaustive baselines,
  and the multi-pipeline / block-splitting extensions.
- :mod:`repro.regalloc` — post-scheduling register assignment and the
  pre-scheduling spill pass.
- :mod:`repro.codegen` — assembly emission in all three delay
  disciplines of section 2.2.
- :mod:`repro.simulator` — a cycle-accurate multi-pipeline simulator.
- :mod:`repro.synth` — the synthetic benchmark generator of section 5.2.
- :mod:`repro.experiments` — one module per paper table/figure.

Quick start
-----------
>>> from repro import compile_source, paper_simulation_machine
>>> result = compile_source("b = 15; a = b * a;", paper_simulation_machine())
>>> result.search.completed
True
>>> print(result.assembly)          # doctest: +SKIP
"""

from .analysis import explain_schedule, render_timeline
from .driver import (
    CompilationResult,
    ProgramCompilation,
    VerificationError,
    compile_program,
    compile_source,
    verify_compilation,
    verify_program,
)
from .ir import (
    BasicBlock,
    BlockBuilder,
    DependenceDAG,
    IRTuple,
    Opcode,
    format_block,
    parse_block,
    run_block,
)
from .machine import (
    MachineDescription,
    PipelineDesc,
    get_machine,
    paper_example_machine,
    paper_simulation_machine,
)
from .sched import (
    InitialConditions,
    SearchOptions,
    SearchResult,
    compute_timing,
    list_schedule,
    schedule_block,
    schedule_block_multi,
    schedule_block_split,
    schedule_sequence,
)

__version__ = "0.1.0"

__all__ = [
    "CompilationResult",
    "ProgramCompilation",
    "compile_program",
    "verify_program",
    "VerificationError",
    "compile_source",
    "verify_compilation",
    "BasicBlock",
    "BlockBuilder",
    "DependenceDAG",
    "IRTuple",
    "Opcode",
    "format_block",
    "parse_block",
    "run_block",
    "MachineDescription",
    "PipelineDesc",
    "get_machine",
    "paper_example_machine",
    "paper_simulation_machine",
    "InitialConditions",
    "SearchOptions",
    "SearchResult",
    "schedule_sequence",
    "explain_schedule",
    "render_timeline",
    "compute_timing",
    "list_schedule",
    "schedule_block",
    "schedule_block_multi",
    "schedule_block_split",
    "__version__",
]
