"""Command-line compiler: ``repro-compile``.

Drives the whole Figure-2 back end from a shell::

    repro-compile program.src                         # paper machine, optimal
    repro-compile -e "b = 15; a = b * a;" --show all
    repro-compile program.src --machine deep-memory --scheduler gross
    repro-compile program.src --machine @mymachine.txt --registers 8
    repro-compile program.src --discipline explicit-interlock
    repro-compile program.src --verify "a=3,b=0"
    repro-compile -e "for i in 0..8 { p = a * b; a = a + b; }" --show all

A source whose single statement is a ``for`` loop is compiled by the
modulo software pipeliner (``repro.sched.pipelining``): the output is a
steady-state kernel with an initiation interval instead of a one-shot
NOP-padded stream, always re-checked by the independent steady-state
certificate.  ``--trip-count`` overrides the loop bounds for the
``--verify`` execution (useful when a bound is symbolic).

``--machine`` accepts a preset name (see ``--list-machines``) or
``@path`` to a machine-description file (``repro.machine.serialize``
format).  Exit status is non-zero on compile or verification failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .codegen.assembly import DelayDiscipline
from .driver import (
    SCHEDULERS,
    compile_block,
    compile_loop,
    compile_program,
    compile_source,
)
from .ir.textual import format_block
from .machine.presets import PRESETS, get_machine
from .machine.serialize import load_machine
from .sched.search import SearchOptions
from .telemetry import Telemetry

_DISCIPLINES = {d.value: d for d in DelayDiscipline}

SHOW_CHOICES = ("asm", "tuples", "dag", "schedule", "timeline", "explain", "stats", "all")


def _parse_memory(text: str) -> Dict[str, int]:
    """Parse ``a=3,b=15`` into an initial-memory mapping."""
    out: Dict[str, int] = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "=" not in piece:
            raise argparse.ArgumentTypeError(
                f"memory entries look like name=value (got {piece!r})"
            )
        name, _, value = piece.partition("=")
        try:
            out[name.strip()] = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"memory value for {name.strip()!r} is not an integer"
            ) from None
    return out


def _resolve_machine(spec: str):
    if spec.startswith("@"):
        return load_machine(spec[1:])
    return get_machine(spec)


def _certify_block(block, machine, timing, assignment, conditions=None):
    """Re-derive one compiled schedule through the independent checker.

    Returns the :class:`repro.verify.certificate.CertificateReport`; the
    checker shares no code with the schedulers, so its agreement is
    evidence rather than tautology.
    """
    from .verify.certificate import check_schedule

    pipe_free = variable_ready = None
    if conditions is not None:
        pipe_free = conditions.pipe_free
        variable_ready = conditions.variable_ready
    return check_schedule(
        block,
        machine,
        timing.order,
        timing.etas,
        assignment=assignment,
        pipe_free=pipe_free,
        variable_ready=variable_ready,
    )


def _certify_program(compiled, machine) -> int:
    """Certify every block of a barrier-partitioned compilation.

    Carry-in conditions are re-threaded block to block exactly as the
    compiler threads them (footnote 1), so each certificate judges the
    schedule under the state it was actually scheduled for.  Returns a
    process exit code (0 = all certified).
    """
    from .sched.interblock import carry_out

    conditions = None
    for i, result in enumerate(compiled.blocks):
        cert = _certify_block(
            result.block, machine, result.timing,
            result.pipeline_assignment, conditions,
        )
        if not cert.ok:
            print(
                f"repro-compile: certificate REJECTED block {i}:\n"
                f"{cert.summary()}",
                file=sys.stderr,
            )
            return 1
        conditions = carry_out(result.timing, result.dag, machine)
    return 0


def build_parser(prog: str = "repro-compile") -> argparse.ArgumentParser:
    from .cliutil import common_flags

    parser = argparse.ArgumentParser(
        prog=prog,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[
            common_flags(
                ("curtail", "engine", "stats-json"),
                overrides={
                    "stats-json": dict(
                        help="write search telemetry (prune counters, "
                        "phase times) to PATH as JSON"
                    ),
                },
            )
        ],
    )
    parser.add_argument(
        "source", nargs="?", help="source file ('-' for stdin)"
    )
    parser.add_argument(
        "-e", "--expr", metavar="CODE", help="compile CODE instead of a file"
    )
    parser.add_argument(
        "--machine",
        default="paper-simulation",
        help="preset name or @path to a machine file (default: paper-simulation)",
    )
    parser.add_argument(
        "--list-machines", action="store_true", help="list preset machines and exit"
    )
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="optimal"
    )
    parser.add_argument(
        "--discipline",
        choices=sorted(_DISCIPLINES),
        default=DelayDiscipline.NOP_PADDED.value,
    )
    parser.add_argument(
        "--registers", type=int, default=None, metavar="K",
        help="register-file size (enables the spill pre-pass and the "
        "pressure-constrained search)",
    )
    parser.add_argument(
        "--no-optimize", action="store_true", help="skip the classical optimizer"
    )
    parser.add_argument(
        "--tuples",
        action="store_true",
        help="input is linear tuple notation (Figure 3) instead of source",
    )
    parser.add_argument(
        "--trip-count", type=int, default=None, metavar="N",
        help="loop input only: execute N iterations for --verify "
        "(default: resolved from the loop bounds)",
    )
    parser.add_argument(
        "--verify", type=_parse_memory, default=None, metavar="MEM",
        help='simulate against source semantics from initial memory "a=3,b=0" '
        "and re-derive the schedule through the independent certificate "
        "checker (repro.verify)",
    )
    parser.add_argument(
        "--show",
        action="append",
        choices=SHOW_CHOICES,
        default=None,
        help="what to print (repeatable; default: asm)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="write assembly to a file"
    )
    return parser


def main(argv: Optional[List[str]] = None, prog: str = "repro-compile") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    if args.list_machines:
        for name in sorted(PRESETS):
            machine = get_machine(name)
            pipes = ", ".join(
                f"{p.function}(l{p.latency}/e{p.enqueue_time})"
                for p in machine.pipelines
            )
            print(f"{name:<20} {pipes}")
        return 0

    if args.expr is not None and args.source:
        parser.error("give either a source file or -e CODE, not both")
    if args.expr is not None:
        source = args.expr
    elif args.source == "-":
        source = sys.stdin.read()
    elif args.source:
        try:
            with open(args.source) as fh:
                source = fh.read()
        except OSError as exc:
            print(f"repro-compile: {exc}", file=sys.stderr)
            return 2
    else:
        parser.error("no source given (file, '-', or -e CODE)")

    try:
        machine = _resolve_machine(args.machine)
    except (KeyError, OSError, ValueError) as exc:
        print(f"repro-compile: {exc}", file=sys.stderr)
        return 2

    show = set(args.show or ["asm"])
    if "all" in show:
        show = set(SHOW_CHOICES) - {"all"}

    telemetry = Telemetry() if args.stats_json else None

    def _write_stats() -> None:
        if telemetry is not None:
            telemetry.write_json(
                args.stats_json,
                meta={"scheduler": args.scheduler, "machine": args.machine},
            )

    multi_block = (not args.tuples) and "barrier" in source
    loop_input = False
    if not args.tuples:
        try:
            from .frontend import parse_program

            loop_input = parse_program(source).has_loops
        except Exception:
            loop_input = False  # the normal path reports the parse error
    try:
        if loop_input:
            compiled_loop = compile_loop(
                source,
                machine,
                options=SearchOptions(curtail=args.curtail, engine=args.engine),
                verify_memory=args.verify,
                trip_count=args.trip_count,
                telemetry=telemetry,
            )
            _write_stats()
            return _emit_loop(compiled_loop, show, args)
        if args.tuples:
            from .ir.textual import parse_block

            # Tuple input has no source semantics to simulate against;
            # --verify degrades to the certificate check alone (below).
            result = compile_block(
                parse_block(source),
                machine,
                scheduler=args.scheduler,
                options=SearchOptions(curtail=args.curtail, engine=args.engine),
                # Hand-written tuples are the intended code: never optimized.
                optimize=False,
                num_registers=args.registers,
                discipline=_DISCIPLINES[args.discipline],
                telemetry=telemetry,
            )
        elif multi_block:
            compiled = compile_program(
                source,
                machine,
                scheduler=args.scheduler,
                options=SearchOptions(curtail=args.curtail, engine=args.engine),
                optimize=not args.no_optimize,
                num_registers=args.registers,
                discipline=_DISCIPLINES[args.discipline],
                verify_memory=args.verify,
                telemetry=telemetry,
            )
            _write_stats()
            if args.verify is not None:
                code = _certify_program(compiled, machine)
                if code:
                    return code
            return _emit_program(compiled, show, args)
        else:
            result = compile_source(
                source,
                machine,
                scheduler=args.scheduler,
                options=SearchOptions(curtail=args.curtail, engine=args.engine),
                optimize=not args.no_optimize,
                num_registers=args.registers,
                discipline=_DISCIPLINES[args.discipline],
                verify_memory=args.verify,
                telemetry=telemetry,
            )
    except KeyboardInterrupt:
        _write_stats()  # partial counters beat losing the run's telemetry
        print("\nrepro-compile: interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        print(f"repro-compile: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    _write_stats()

    cert = None
    if args.verify is not None:
        cert = _certify_block(
            result.block, machine, result.timing, result.pipeline_assignment
        )
        if not cert.ok:
            print(
                f"repro-compile: certificate REJECTED the schedule:\n"
                f"{cert.summary()}",
                file=sys.stderr,
            )
            return 1

    chunks: List[str] = []
    if "tuples" in show:
        chunks.append("; tuple code\n" + format_block(result.block))
    if "dag" in show:
        chunks.append(str(result.dag))
    if "schedule" in show:
        pairs = ", ".join(
            f"{ident}@{t}" for ident, t in
            zip(result.timing.order, result.timing.issue_times)
        )
        chunks.append(f"; schedule (ident@cycle): {pairs}")
    if "timeline" in show:
        from .analysis import render_timeline

        chunks.append(
            render_timeline(
                result.block, machine, result.timing, dag=result.dag
            )
        )
    if "explain" in show:
        from .analysis import explain_schedule

        explanations = explain_schedule(
            result.block, machine, result.timing, dag=result.dag
        )
        chunks.append(
            "\n".join(f"; {e}" for e in explanations if e.eta > 0)
            or "; no stalls anywhere"
        )
    if "asm" in show:
        chunks.append(str(result.assembly))
    if "stats" in show:
        stats = [
            f"; instructions: {len(result.block)}",
            f"; NOPs: {result.total_nops}",
            f"; issue span: {result.issue_span_cycles} cycles",
            f"; registers used: {result.allocation.num_registers_used}",
        ]
        if result.search is not None:
            stats.append(
                f"; search: {result.search.omega_calls} omega calls, "
                + ("provably optimal" if result.search.completed else "truncated")
            )
        if args.verify is not None and not args.tuples:
            stats.append("; verification: simulated output matches source semantics")
        if cert is not None:
            stats.append(
                f"; verification: certificate re-derived "
                f"{cert.required_nops} NOPs independently"
            )
        chunks.append("\n".join(stats))

    return _emit_text("\n\n".join(chunks) + "\n", args)


def _emit_text(text: str, args) -> int:
    if args.output:
        from .ioutil import atomic_write_text

        try:
            atomic_write_text(args.output, text)
        except OSError as exc:
            print(
                f"repro-compile: cannot write {args.output}: {exc}",
                file=sys.stderr,
            )
            return 1
    else:
        sys.stdout.write(text)
    return 0


def _emit_loop(compiled, show, args) -> int:
    """Render a loop compilation: steady-state kernel, not a flat stream."""
    result = compiled.result
    loop = compiled.loop
    chunks: List[str] = []
    if "tuples" in show:
        carried = "".join(
            f"\n; carried: {d.producer} -> {d.consumer} "
            f"({d.kind}, distance {d.distance})"
            for d in loop.carried
        )
        chunks.append("; loop body tuple code\n" + format_block(loop.body) + carried)
    if "dag" in show:
        from .ir.dag import DependenceDAG

        chunks.append(str(DependenceDAG(loop.body)))
    if "schedule" in show:
        pairs = ", ".join(
            f"{z}@{off}" for z, off in sorted(result.offsets.items())
        )
        chunks.append(f"; modulo schedule (ident@offset): {pairs}")
    if "asm" in show:
        chunks.append(
            f"; steady-state kernel, II = {result.ii} cycles\n"
            + result.kernel_text
        )
    if "stats" in show:
        status = "provably optimal" if result.completed else "best known"
        stats = [
            f"; body instructions: {len(loop.body)}",
            f"; initiation interval: {result.ii} cycles ({status})",
            f"; MII: {result.mii} (resource {result.res_mii}, "
            f"recurrence {result.rec_mii})",
            f"; steady-state list schedule II: {result.list_ii} cycles",
            f"; stages in flight: {result.stage_count}",
            f"; certificate: independently re-derived, bound "
            f"{compiled.certificate.ii_lower_bound}, "
            f"{compiled.certificate.replayed_iterations} iterations replayed",
        ]
        if args.verify is not None:
            stats.append(
                "; verification: overlapped stream matches source semantics"
            )
        chunks.append("\n".join(stats))
    if not chunks:
        chunks.append(
            f"; steady-state kernel, II = {result.ii} cycles\n"
            + result.kernel_text
        )
    return _emit_text("\n\n".join(chunks) + "\n", args)


def _emit_program(compiled, show, args) -> int:
    """Render a multi-block (barrier-partitioned) compilation."""
    chunks: List[str] = []
    if "tuples" in show:
        chunks.extend(
            f"; tuple code, block {i}\n" + format_block(b.block)
            for i, b in enumerate(compiled.blocks)
        )
    if "dag" in show:
        chunks.extend(str(b.dag) for b in compiled.blocks)
    if "schedule" in show:
        for i, b in enumerate(compiled.blocks):
            pairs = ", ".join(
                f"{ident}@{t}" for ident, t in
                zip(b.timing.order, b.timing.issue_times)
            )
            chunks.append(f"; block {i} schedule (ident@cycle): {pairs}")
    if "asm" in show:
        chunks.append(compiled.assembly_text)
    if "stats" in show:
        stats = [
            f"; blocks: {len(compiled)}",
            f"; total NOPs: {compiled.total_nops}",
            f"; total issue span: {compiled.total_cycles} cycles",
        ]
        if compiled.blocks and compiled.blocks[0].search is not None:
            status = "all provably optimal" if compiled.all_optimal else "some truncated"
            stats.append(f"; search: {status}")
        if args.verify is not None:
            stats.append("; verification: simulated output matches source semantics")
        chunks.append("\n".join(stats))
    return _emit_text("\n\n".join(chunks) + "\n", args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
