"""Differential oracle — run every scheduler on one block and cross-check.

For a single (block, machine) pair the oracle runs the list scheduler,
the branch-and-bound search, the multi-pipeline search, the splitting
scheduler and — when the block is small enough — two independent
exhaustive enumerations, then:

* certifies every produced schedule through
  :mod:`repro.verify.certificate` (the implementation that shares no
  code with the schedulers);
* asserts the invariant lattice between the results::

      brute == exhaustive == search  <=  split            (search complete)
            native == vector == fast == reference         (bit for bit,
                                       engines            no time limit)
                              search <=  list             (always)
                              multi  <=  pinned search    (always)
                              multi  ==  search            (deterministic
                                                           machine, both
                                                           complete)
      simulator implicit-interlock cycles == |block| + certified NOPs

  and, under ``optimality=True``, the cross-solver lattice against the
  ILP witness (:mod:`repro.ilp`, seeded with the search incumbent)::

      lp_relax <= ilp lower bound <= optimum <= ilp <= search   (always)
                                     ilp == search == brute     (all
                                                                 complete)
      root combinatorial bound     <= ilp                       (always)

* never compares a curtailed search as optimal — truncated results are
  flagged and only bounded from above;
* on any failure, writes a replayable discrepancy report (machine JSON,
  block in Figure-3 linear notation, every schedule, every violated
  invariant) under ``results/discrepancies/``.

Non-deterministic machines (operations with several viable pipelines)
are handled the way the compiler handles them: the core search runs
under a first-pipeline pinning, and the joint multi search is fed that
pinned result as an incumbent, which makes ``multi <= pinned`` a hard
guarantee even when the joint search is curtailed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.dag import COUNT_CAPPED, DependenceDAG
from ..ir.interp import UndefinedVariableError
from ..ir.textual import format_block, parse_block
from ..ioutil import atomic_write_json, atomic_write_text
from ..machine.machine import MachineDescription
from ..machine.serialize import machine_from_dict, machine_to_dict
from ..sched.exhaustive import legal_only_search
from ..sched.list_scheduler import list_schedule
from ..sched.multi import first_pipeline_assignment, schedule_block_multi
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions, root_lower_bound, schedule_block
from ..sched.splitting import schedule_block_split
from ..simulator.core import HazardError, PipelineSimulator, simulate_schedule
from ..telemetry import Telemetry
from .certificate import brute_force_optimum, check_schedule

#: Blocks whose legal-order count exceeds this skip the exhaustive layer.
DEFAULT_BRUTE_CAP = 20_000

#: Default location for replayable discrepancy reports.
DEFAULT_REPORT_DIR = os.path.join("results", "discrepancies")


@dataclass(frozen=True)
class Discrepancy:
    """One violated invariant, with enough context to understand it."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


@dataclass(frozen=True)
class OracleReport:
    """Everything one differential check established about a block."""

    block_name: str
    n_tuples: int
    machine_name: str
    #: schedule label -> {"order", "etas", "nops", "flagged"}.
    schedules: Dict[str, dict] = field(default_factory=dict)
    discrepancies: Tuple[Discrepancy, ...] = ()
    #: Searches that hit their curtail point / deadline (compared only
    #: as upper bounds, never as optimal).
    curtailed: Tuple[str, ...] = ()
    #: Checks that could not run (e.g. simulator semantics on a block
    #: whose random memory divides by zero).
    skipped: Tuple[str, ...] = ()
    checks_run: int = 0
    report_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        extra = f", curtailed: {', '.join(self.curtailed)}" if self.curtailed else ""
        line = (
            f"{self.block_name} ({self.n_tuples} tuples) on "
            f"{self.machine_name}: {status} "
            f"({self.checks_run} checks{extra})"
        )
        if self.ok:
            return line
        return line + "\n" + "\n".join(f"  {d}" for d in self.discrepancies)


def _schedule_entry(order, etas, nops, flagged: bool = False) -> dict:
    return {
        "order": list(order),
        "etas": list(etas),
        "nops": int(nops),
        "flagged": bool(flagged),
    }


def check_block(
    block: BasicBlock,
    machine: MachineDescription,
    options: Optional[SearchOptions] = None,
    brute_cap: int = DEFAULT_BRUTE_CAP,
    telemetry: Optional[Telemetry] = None,
    emit_dir: Optional[str] = None,
    optimality: bool = False,
    ilp_options=None,
) -> OracleReport:
    """Differentially check every scheduler on one (block, machine) pair.

    Parameters
    ----------
    options:
        Search configuration shared by the core and multi searches.
    brute_cap:
        Exhaustive enumeration only runs when the block's legal-order
        count is at most this (the two independent enumerations are then
        definitive ground truth).
    emit_dir:
        Directory for replayable discrepancy reports; ``None`` disables
        emission (the report still lists every discrepancy).
    optimality:
        Also run the ILP witness (:mod:`repro.ilp`) seeded with the
        search incumbent, certify its schedule, and assert the
        cross-solver lattice (``ilp == search`` when both complete,
        ``ilp <= search`` otherwise, every dual bound below every
        incumbent).  Skipped under a ``max_live`` register budget, which
        the ILP backend does not model.
    ilp_options:
        Optional :class:`repro.ilp.IlpOptions`; the default caps the
        witness at 400 branch-and-bound nodes / 10 s per block so a
        hard block degrades to a certified optimality gap instead of
        stalling the oracle.
    """
    if options is None:
        options = SearchOptions()
    n = len(block)
    if telemetry is not None:
        telemetry.count("verify.blocks")
    if n == 0:
        return OracleReport(block.name, 0, machine.name, checks_run=1)

    dag = DependenceDAG(block)
    # A full pinning works on every machine and doubles as the explicit
    # assignment the certificate re-validates (for deterministic
    # machines it is exactly sigma).
    assignment = first_pipeline_assignment(dag, machine)
    deterministic = machine.is_deterministic

    discrepancies: List[Discrepancy] = []
    curtailed: List[str] = []
    skipped: List[str] = []
    schedules: Dict[str, dict] = {}
    checks = 0

    def certify(label: str, order, etas, cert_assignment) -> bool:
        nonlocal checks
        checks += 1
        if telemetry is not None:
            telemetry.count("verify.schedules_checked")
        report = check_schedule(
            block, machine, order, etas, assignment=cert_assignment
        )
        if not report.ok:
            if telemetry is not None:
                telemetry.count("verify.certificate_failures")
            discrepancies.append(
                Discrepancy(
                    f"certificate[{label}]",
                    report.summary().replace("\n", " | "),
                )
            )
            return False
        return True

    # ------------------------------------------------------------------
    # Run every scheduler.
    # ------------------------------------------------------------------
    list_timing = compute_timing(dag, list_schedule(dag), machine, assignment)
    schedules["list"] = _schedule_entry(
        list_timing.order, list_timing.etas, list_timing.total_nops
    )
    certify("list", list_timing.order, list_timing.etas, assignment)

    search = schedule_block(dag, machine, options, assignment=assignment)
    search_flagged = not search.completed
    if search_flagged:
        curtailed.append("search")
    schedules["search"] = _schedule_entry(
        search.best.order, search.best.etas, search.final_nops, search_flagged
    )
    certify("search", search.best.order, search.best.etas, assignment)

    # ------------------------------------------------------------------
    # Cross-solver witness: the ILP backend, seeded with the search
    # incumbent so its answer can only match or improve it.
    # ------------------------------------------------------------------
    ilp = None
    if optimality and options.max_live is not None:
        skipped.append("ilp")
    elif optimality:
        from ..ilp import IlpOptions

        if ilp_options is None:
            ilp_options = IlpOptions(max_nodes=400, time_limit=10.0)
        ilp = schedule_block(
            dag,
            machine,
            options,
            assignment=assignment,
            seed=search.best.order,
            backend="ilp",
            ilp_options=ilp_options,
        )
        if telemetry is not None:
            telemetry.count("verify.optimality.runs")
            if ilp.completed:
                telemetry.count("verify.optimality.proved")
            else:
                telemetry.count("verify.optimality.gaps")
            if ilp.final_nops < search.final_nops:
                telemetry.count("verify.optimality.improved")
        ilp_flagged = not ilp.completed
        if ilp_flagged:
            curtailed.append("ilp")
        entry = _schedule_entry(
            ilp.best.order, ilp.best.etas, ilp.final_nops, ilp_flagged
        )
        entry["lower_bound"] = int(ilp.lower_bound)
        entry["lp_relaxation"] = float(ilp.lp_relaxation)
        entry["nodes"] = int(ilp.nodes)
        schedules["ilp"] = entry
        certify("ilp", ilp.best.order, ilp.best.etas, assignment)

    # Satellite fix: a curtailed search must carry the lower bound that
    # was active at curtailment, so the optimality gap in report.json is
    # replayable (not just an unexplained incumbent).
    root_bound = root_lower_bound(dag, machine, assignment)
    if search_flagged:
        bound = root_bound
        if ilp is not None:
            bound = max(bound, ilp.lower_bound)
        schedules["search"]["lower_bound"] = int(bound)
        schedules["search"]["optimality_gap"] = int(search.final_nops - bound)

    # Twin-engine runs: whichever engine `options` selects, the other
    # three must reproduce it bit for bit (checked in the lattice below);
    # with NumPy absent the "vector" twin degrades to a second "fast"
    # run, and without a C compiler the "native" twin does the same,
    # which keeps the check sound (identical, just not independent).
    # Skipped under a wall-clock deadline, where the truncation point
    # legitimately depends on the engine's speed.
    twins: List[Tuple[str, object]] = []
    if options.time_limit is None:
        for twin_engine in ("fast", "vector", "native", "reference"):
            if twin_engine == options.engine:
                continue
            twins.append(
                (
                    twin_engine,
                    schedule_block(
                        dag,
                        machine,
                        options,
                        assignment=assignment,
                        engine=twin_engine,
                    ),
                )
            )

    split = schedule_block_split(dag, machine, assignment=assignment)
    split_flagged = not split.all_windows_completed
    if split_flagged:
        curtailed.append("split")
    schedules["split"] = _schedule_entry(
        split.timing.order, split.timing.etas, split.total_nops, split_flagged
    )
    certify("split", split.timing.order, split.timing.etas, assignment)

    multi = schedule_block_multi(
        dag,
        machine,
        options,
        extra_incumbents=[(search.best.order, assignment)],
    )
    multi_flagged = not multi.completed
    if multi_flagged:
        curtailed.append("multi")
    schedules["multi"] = _schedule_entry(
        multi.order, multi.etas, multi.total_nops, multi_flagged
    )
    certify("multi", multi.order, multi.etas, multi.assignment)

    # ------------------------------------------------------------------
    # Exhaustive ground truth (small blocks only).
    # ------------------------------------------------------------------
    n_orders = dag.count_legal_orders(cap=brute_cap)
    exhaustive = brute = None
    if n_orders != COUNT_CAPPED:
        exhaustive = legal_only_search(dag, machine, assignment=assignment)
        schedules["exhaustive"] = _schedule_entry(
            exhaustive.best.order,
            exhaustive.best.etas,
            exhaustive.optimal_nops,
        )
        certify(
            "exhaustive", exhaustive.best.order, exhaustive.best.etas, assignment
        )
        brute = brute_force_optimum(block, machine, assignment=assignment)
        schedules["brute"] = _schedule_entry(
            brute.best_order, brute.best_etas, brute.best_nops
        )

    # ------------------------------------------------------------------
    # The invariant lattice.
    # ------------------------------------------------------------------
    def expect(condition: bool, invariant: str, detail: str) -> None:
        nonlocal checks
        checks += 1
        if not condition:
            if telemetry is not None:
                telemetry.count("verify.invariant_failures")
            discrepancies.append(Discrepancy(invariant, detail))

    for twin_engine, twin in twins:
        expect(
            twin.best == search.best
            and twin.initial == search.initial
            and twin.omega_calls == search.omega_calls
            and twin.completed == search.completed
            and twin.improvements == search.improvements
            and twin.proved_by_bound == search.proved_by_bound
            and twin.memo_evicted == search.memo_evicted
            and dict(twin.prune_counts) == dict(search.prune_counts),
            "native==vector==fast==reference",
            f"engines diverge: {search.final_nops} NOPs / "
            f"{search.omega_calls} omega calls ({options.engine}) vs "
            f"{twin.final_nops} / {twin.omega_calls} ({twin_engine})",
        )
    expect(
        search.final_nops <= list_timing.total_nops,
        "search<=list",
        f"search returned {search.final_nops} NOPs, worse than its own "
        f"list-schedule seed at {list_timing.total_nops}",
    )
    expect(
        multi.total_nops <= search.final_nops,
        "multi<=pinned",
        f"joint search returned {multi.total_nops} NOPs, worse than the "
        f"pinned incumbent it was seeded with ({search.final_nops})",
    )
    if search.completed:
        expect(
            split.total_nops >= search.final_nops,
            "split>=optimal",
            f"splitting claims {split.total_nops} NOPs, below the proven "
            f"optimum {search.final_nops}",
        )
        if deterministic and multi.completed:
            expect(
                multi.total_nops == search.final_nops,
                "multi==search",
                f"on a deterministic machine the joint search found "
                f"{multi.total_nops} NOPs vs the core search's "
                f"{search.final_nops}",
            )
    if ilp is not None:
        expect(
            ilp.final_nops <= search.final_nops,
            "ilp<=search",
            f"the ILP witness, seeded with the search incumbent, returned "
            f"{ilp.final_nops} NOPs — worse than the seed's "
            f"{search.final_nops}",
        )
        if ilp.completed and search.completed:
            expect(
                ilp.final_nops == search.final_nops,
                "ilp==search",
                f"both solvers claim a proven optimum yet disagree: "
                f"ilp {ilp.final_nops} NOPs vs search {search.final_nops}",
            )
        # Every dual bound sits below every incumbent: lp <= lower_bound
        # <= optimum <= ilp <= search.  (The combinatorial root bound is
        # a lower bound too, so it must also sit below the ILP incumbent;
        # no ordering between it and the LP bound is sound in general —
        # either may win.)
        expect(
            ilp.lp_relaxation <= ilp.lower_bound + 1e-9,
            "lp<=ilp-bound",
            f"LP relaxation {ilp.lp_relaxation} above the certified "
            f"lower bound {ilp.lower_bound}",
        )
        expect(
            ilp.lower_bound <= ilp.final_nops,
            "ilp-bound<=ilp",
            f"certified lower bound {ilp.lower_bound} above the ILP's "
            f"own incumbent {ilp.final_nops}",
        )
        expect(
            root_bound <= ilp.final_nops,
            "root-bound<=ilp",
            f"combinatorial root bound {root_bound} above the ILP "
            f"incumbent {ilp.final_nops}",
        )
        if search.completed:
            expect(
                ilp.lower_bound <= search.final_nops
                and ilp.lp_relaxation <= search.final_nops + 1e-9,
                "ilp-bounds<=optimal",
                f"an ILP dual bound (lb {ilp.lower_bound}, lp "
                f"{ilp.lp_relaxation}) exceeds the proven optimum "
                f"{search.final_nops}",
            )

    if exhaustive is not None and brute is not None and exhaustive.exhausted:
        expect(
            brute.best_nops == exhaustive.optimal_nops,
            "brute==exhaustive",
            f"independent enumeration found optimum {brute.best_nops}, "
            f"legal_only_search found {exhaustive.optimal_nops}",
        )
        if search.completed:
            expect(
                search.final_nops == brute.best_nops,
                "search==brute",
                f"search claims a proven optimum of {search.final_nops} "
                f"NOPs but independent enumeration found "
                f"{brute.best_nops}",
            )
        if ilp is not None and ilp.completed:
            expect(
                ilp.final_nops == brute.best_nops,
                "ilp==brute",
                f"the ILP claims a proven optimum of {ilp.final_nops} "
                f"NOPs but independent enumeration found "
                f"{brute.best_nops}",
            )
        if ilp is not None:
            expect(
                ilp.lower_bound <= brute.best_nops,
                "ilp-bound<=brute",
                f"certified ILP lower bound {ilp.lower_bound} above the "
                f"enumerated optimum {brute.best_nops}",
            )

    # ------------------------------------------------------------------
    # Simulator consistency: cycles are NOPs plus issues.
    # ------------------------------------------------------------------
    memory = {v: k + 2 for k, v in enumerate(sorted(block.variables))}
    cert = check_schedule(
        block, machine, search.best.order, search.best.etas, assignment=assignment
    )
    try:
        sim = PipelineSimulator(block, machine, dag=dag, assignment=assignment)
        trace = sim.run_implicit(search.best.order, memory)
        expect(
            trace.total_cycles == n + cert.required_nops,
            "simulator==omega",
            f"implicit-interlock simulation took {trace.total_cycles} "
            f"cycles; certificate says {n} issues + "
            f"{cert.required_nops} NOPs",
        )
        padded = simulate_schedule(
            block,
            machine,
            search.best.order,
            search.best.etas,
            memory,
            assignment=assignment,
        )
        expect(
            padded.total_cycles == n + search.final_nops,
            "padded-span",
            f"NOP-padded stream spans {padded.total_cycles} cycles, "
            f"expected {n + search.final_nops}",
        )
    except HazardError as exc:
        expect(
            False,
            "padded-hazard",
            f"the search's schedule under-padded the stream: {exc}",
        )
    except (ZeroDivisionError, UndefinedVariableError, KeyError):
        # Semantics, not timing, failed (e.g. a random block dividing by
        # zero under the synthetic memory); nothing to conclude.
        skipped.append("simulator")
        if telemetry is not None:
            telemetry.count("verify.sim_skipped")

    report_dir = None
    if discrepancies and emit_dir is not None:
        report_dir = _emit_report(
            emit_dir,
            block,
            machine,
            schedules,
            discrepancies,
            options,
            brute_cap,
            optimality,
        )
    if telemetry is not None and discrepancies:
        telemetry.count("verify.blocks_failed")

    return OracleReport(
        block_name=block.name,
        n_tuples=n,
        machine_name=machine.name,
        schedules=schedules,
        discrepancies=tuple(discrepancies),
        curtailed=tuple(curtailed),
        skipped=tuple(skipped),
        checks_run=checks,
        report_dir=report_dir,
    )


# ----------------------------------------------------------------------
# Replayable discrepancy reports
# ----------------------------------------------------------------------
def _emit_report(
    emit_dir: str,
    block: BasicBlock,
    machine: MachineDescription,
    schedules: Dict[str, dict],
    discrepancies: List[Discrepancy],
    options: SearchOptions,
    brute_cap: int,
    optimality: bool = False,
) -> str:
    """Write one discrepancy directory; returns its path."""
    base = f"{block.name}-{machine.name}"
    path = os.path.join(emit_dir, base)
    k = 1
    while os.path.exists(path):
        k += 1
        path = os.path.join(emit_dir, f"{base}-{k}")
    os.makedirs(path)
    # Atomic writes: a discrepancy report is exactly what someone will
    # pore over after a crash, so it must never itself be torn.
    atomic_write_json(os.path.join(path, "machine.json"), machine_to_dict(machine))
    atomic_write_text(os.path.join(path, "block.txt"), format_block(block) + "\n")
    atomic_write_json(
        os.path.join(path, "report.json"),
        {
            "schema": "repro-discrepancy/1",
            "block": block.name,
            "machine": machine.name,
            "discrepancies": [
                {"invariant": d.invariant, "detail": d.detail}
                for d in discrepancies
            ],
            "schedules": schedules,
            "curtail": options.curtail,
            "brute_cap": brute_cap,
            "optimality": optimality,
        },
    )
    return path


def replay_report(
    path: str,
    options: Optional[SearchOptions] = None,
    brute_cap: int = DEFAULT_BRUTE_CAP,
    telemetry: Optional[Telemetry] = None,
) -> OracleReport:
    """Re-run the oracle on a previously emitted discrepancy report.

    Reads ``machine.json`` and ``block.txt`` from ``path`` and runs
    :func:`check_block` afresh — on fixed code the same discrepancies
    reappear; after a fix the report comes back clean.  A report emitted
    by an ``optimality`` run replays with the ILP witness on, so
    recorded optimality gaps are reproducible.
    """
    with open(os.path.join(path, "machine.json")) as fh:
        machine = machine_from_dict(json.load(fh))
    with open(os.path.join(path, "block.txt")) as fh:
        block = parse_block(fh.read(), name=os.path.basename(path.rstrip("/")))
    optimality = False
    report_path = os.path.join(path, "report.json")
    if os.path.exists(report_path):
        with open(report_path) as fh:
            optimality = bool(json.load(fh).get("optimality", False))
    return check_block(
        block,
        machine,
        options=options,
        brute_cap=brute_cap,
        telemetry=telemetry,
        optimality=optimality,
    )
