"""Independent verification layer — certificate checking and differential
oracles for the schedulers.

The paper's central claim is *optimality*, and everything in ``sched``
shares the Ω implementation in ``nop_insertion`` — a shared bug there
would pass every test that compares schedulers against each other.  This
package is the trust anchor that does not share that code:

* :mod:`repro.verify.certificate` — a second, from-scratch
  implementation of the machine model's timing rules.  It re-derives the
  dependences from the raw tuples, re-resolves pipeline assignments from
  the machine tables, and recomputes every NOP count positionally; it
  imports nothing from ``repro.sched``.
* :mod:`repro.verify.oracle` — runs the list scheduler, the
  branch-and-bound search, the multi-pipeline search, the splitting
  scheduler and (small blocks) brute-force enumeration on one block,
  certifies every result, and checks the invariant lattice between them.
  Failures are written as replayable discrepancy reports.
* :mod:`repro.verify.fuzz` — seeded deterministic block/machine
  generation (no hypothesis dependency) plus the adversarial machine
  gallery, for the ``repro-verify`` CLI and CI.
* :mod:`repro.verify.loops` — the loop tier: modulo schedules checked
  against the independent steady-state certificate, the list-schedule
  steady state, and (tiny bodies) a complete brute-force minimum-II
  enumeration.
"""

from .certificate import (
    BruteForceIIResult,
    BruteForceResult,
    CertificateReport,
    LoopCertificateReport,
    Violation,
    brute_force_min_ii,
    brute_force_optimum,
    check_schedule,
    check_steady_state,
    loop_ii_lower_bound,
)
from .fuzz import FuzzResult, adversarial_machines, run_fuzz
from .loops import LoopOracleReport, check_loop, run_loop_suite
from .oracle import Discrepancy, OracleReport, check_block, replay_report

__all__ = [
    "BruteForceIIResult",
    "BruteForceResult",
    "CertificateReport",
    "Discrepancy",
    "FuzzResult",
    "LoopCertificateReport",
    "LoopOracleReport",
    "OracleReport",
    "Violation",
    "adversarial_machines",
    "brute_force_min_ii",
    "brute_force_optimum",
    "check_block",
    "check_loop",
    "check_schedule",
    "check_steady_state",
    "loop_ii_lower_bound",
    "replay_report",
    "run_loop_suite",
    "run_fuzz",
]
