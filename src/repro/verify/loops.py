"""Differential oracle for loop schedules — the ``loop`` verify tier.

For a single (loop, machine) pair the oracle runs the modulo scheduler,
re-prices the plain list schedule's steady state, and cross-checks:

* **certificates** — both the searched kernel and the list steady state
  must pass :func:`repro.verify.certificate.check_steady_state`, the
  re-implementation that re-derives dependences (with iteration
  distances), σ, the II lower bound, and the replayed overlapped stream
  from the raw tuples and machine tables alone;
* the invariant lattice between the results::

      independent bound <= MII <= searched II <= list II     (always)
             brute-force min II <= searched II               (tiny bodies)
             brute-force min II == searched II               (completed:
                                          the search proved optimality
                                          by meeting MII or refuting
                                          every smaller candidate)

* **semantics** — the flat issue stream of several overlapped
  iterations, executed in schedule order against an unrolled copy of
  the body, must leave exactly the memory the sequential loop leaves;
* on any failure, writes a replayable discrepancy report (machine JSON,
  body in linear notation, offsets, every violated invariant) under
  ``results/discrepancies/`` in the same ``repro-discrepancy/1`` schema
  as the straight-line oracle.

The brute-force layer (:func:`repro.verify.certificate.brute_force_min_ii`)
is complete — slot enumeration plus exact stage feasibility — so on
bodies small enough to afford it, the searched II is checked against
ground truth, not just against bounds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.interp import run_block
from ..ir.loop import LoopBlock, run_loop
from ..ir.textual import format_block
from ..ioutil import atomic_write_json, atomic_write_text
from ..machine.machine import MachineDescription
from ..machine.serialize import machine_to_dict
from ..sched.pipelining import ModuloScheduleResult, schedule_loop
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .certificate import brute_force_min_ii, check_steady_state
from .oracle import DEFAULT_REPORT_DIR, Discrepancy

#: Bodies larger than this skip the brute-force ground-truth layer.
DEFAULT_BRUTE_BODY_CAP = 8

#: Overlapped iterations executed for the semantic stream check.
_SEMANTIC_ITERATIONS = 4


@dataclass(frozen=True)
class LoopOracleReport:
    """Everything one differential check established about a loop."""

    loop_name: str
    n_tuples: int
    machine_name: str
    searched_ii: int
    list_ii: int
    mii: int
    #: Ground-truth minimum II, when the brute-force layer ran.
    brute_ii: Optional[int] = None
    completed: bool = False
    discrepancies: Tuple[Discrepancy, ...] = ()
    skipped: Tuple[str, ...] = ()
    checks_run: int = 0
    report_dir: Optional[str] = None
    result: Optional[ModuloScheduleResult] = field(
        default=None, compare=False, repr=False
    )

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = (
            "ok" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        )
        proof = "optimal" if self.completed else "best-known"
        if self.brute_ii is not None:
            proof += f", brute {self.brute_ii}"
        line = (
            f"{self.loop_name} ({self.n_tuples} tuples) on "
            f"{self.machine_name}: II {self.searched_ii} [{proof}] vs "
            f"list {self.list_ii}, MII {self.mii}: {status} "
            f"({self.checks_run} checks)"
        )
        if self.ok:
            return line
        return line + "\n" + "\n".join(f"  {d}" for d in self.discrepancies)


def check_loop(
    loop: LoopBlock,
    machine: MachineDescription,
    options: Optional[SearchOptions] = None,
    brute_body_cap: int = DEFAULT_BRUTE_BODY_CAP,
    telemetry: Optional[Telemetry] = None,
    emit_dir: Optional[str] = None,
) -> LoopOracleReport:
    """Differentially check the modulo scheduler on one (loop, machine).

    ``brute_body_cap`` bounds the body size for which the complete
    brute-force II enumeration runs (its cost is exponential in the
    body); larger bodies are still certified and lattice-checked, just
    not compared against enumerated ground truth.
    """
    if options is None:
        options = SearchOptions()
    n = len(loop.body)
    if telemetry is not None:
        telemetry.count("verify.loops")

    discrepancies: List[Discrepancy] = []
    skipped: List[str] = []
    checks = 0

    def expect(condition: bool, invariant: str, detail: str) -> None:
        nonlocal checks
        checks += 1
        if not condition:
            if telemetry is not None:
                telemetry.count("verify.invariant_failures")
            discrepancies.append(Discrepancy(invariant, detail))

    result = schedule_loop(loop, machine, options=options)

    # ------------------------------------------------------------------
    # Certificates: searched kernel, and the certificate's own bound.
    # ------------------------------------------------------------------
    checks += 1
    if telemetry is not None:
        telemetry.count("verify.schedules_checked")
    certificate = check_steady_state(
        loop.body, machine, result.offsets, result.ii,
        assignment=result.assignment,
    )
    if not certificate.ok:
        if telemetry is not None:
            telemetry.count("verify.certificate_failures")
        discrepancies.append(
            Discrepancy(
                "certificate[modulo]",
                certificate.summary().replace("\n", " | "),
            )
        )

    # ------------------------------------------------------------------
    # The invariant lattice.
    # ------------------------------------------------------------------
    expect(
        result.ii <= result.list_ii,
        "searched<=list",
        f"modulo search returned II {result.ii}, worse than the "
        f"steady-state list schedule at {result.list_ii}",
    )
    expect(
        result.ii >= result.mii,
        "searched>=mii",
        f"claimed II {result.ii} is below the scheduler's own MII "
        f"{result.mii}",
    )
    if certificate.ii_lower_bound >= 0:
        expect(
            result.mii >= certificate.ii_lower_bound,
            "mii>=independent-bound",
            f"scheduler MII {result.mii} is below the certificate's "
            f"independent bound {certificate.ii_lower_bound}",
        )

    brute_ii: Optional[int] = None
    if n <= brute_body_cap:
        brute = brute_force_min_ii(
            loop.body, machine, assignment=result.assignment
        )
        brute_ii = brute.min_ii
        expect(
            brute.min_ii <= result.ii,
            "brute<=searched",
            f"enumerated minimum II {brute.min_ii} exceeds the searched "
            f"II {result.ii} — the enumeration missed a kernel",
        )
        if result.completed:
            expect(
                brute.min_ii == result.ii,
                "completed==brute",
                f"result claims proven optimality at II {result.ii} but "
                f"complete enumeration achieves {brute.min_ii}",
            )
        if telemetry is not None:
            telemetry.count("verify.loops_brute")
            if brute.min_ii == result.ii:
                telemetry.count("verify.loops_confirmed_optimal")
    else:
        skipped.append("brute")

    # ------------------------------------------------------------------
    # Semantics: the overlapped stream computes what the loop computes.
    # ------------------------------------------------------------------
    checks += 1
    k = max(_SEMANTIC_ITERATIONS, result.stage_count + 1)
    memory = {v: j + 2 for j, v in enumerate(sorted(loop.body.variables))}
    if loop.loop_var is not None:
        memory[loop.loop_var] = loop.start
    stride = max(loop.body.idents)
    stream_order = [
        z + i * stride for _, i, z in result.stream(k)
    ]
    try:
        sequential = dict(run_loop(loop, memory=dict(memory), trip_count=k))
        overlapped = dict(
            run_block(
                loop.unrolled(k), memory=dict(memory), order=stream_order
            ).memory
        )
        if loop.loop_var is not None:
            # The sequential loop restores the scoped binding; the flat
            # unrolled block leaves the final count.  Compare the rest.
            sequential.pop(loop.loop_var, None)
            overlapped.pop(loop.loop_var, None)
        expect(
            sequential == overlapped,
            "stream-semantics",
            f"executing the modulo stream of {k} iterations left memory "
            f"{overlapped}, sequential execution leaves {sequential}",
        )
    except ZeroDivisionError:
        skipped.append("semantics")
        if telemetry is not None:
            telemetry.count("verify.sim_skipped")

    report_dir = None
    if discrepancies and emit_dir is not None:
        report_dir = _emit_loop_report(
            emit_dir, loop, machine, result, discrepancies, brute_ii
        )
    if telemetry is not None and discrepancies:
        telemetry.count("verify.loops_failed")

    return LoopOracleReport(
        loop_name=loop.name,
        n_tuples=n,
        machine_name=machine.name,
        searched_ii=result.ii,
        list_ii=result.list_ii,
        mii=result.mii,
        brute_ii=brute_ii,
        completed=result.completed,
        discrepancies=tuple(discrepancies),
        skipped=tuple(skipped),
        checks_run=checks,
        report_dir=report_dir,
        result=result,
    )


def _emit_loop_report(
    emit_dir: str,
    loop: LoopBlock,
    machine: MachineDescription,
    result: ModuloScheduleResult,
    discrepancies: List[Discrepancy],
    brute_ii: Optional[int],
) -> str:
    """Write one replayable loop-discrepancy directory; returns its path."""
    base = f"loop-{loop.name}-{machine.name}"
    path = os.path.join(emit_dir, base)
    k = 1
    while os.path.exists(path):
        k += 1
        path = os.path.join(emit_dir, f"{base}-{k}")
    os.makedirs(path)
    atomic_write_json(
        os.path.join(path, "machine.json"), machine_to_dict(machine)
    )
    atomic_write_text(
        os.path.join(path, "block.txt"), format_block(loop.body) + "\n"
    )
    atomic_write_json(
        os.path.join(path, "report.json"),
        {
            "schema": "repro-discrepancy/1",
            "kind": "loop",
            "loop": loop.name,
            "machine": machine.name,
            "carried": [
                {
                    "producer": d.producer,
                    "consumer": d.consumer,
                    "kind": d.kind,
                    "distance": d.distance,
                }
                for d in loop.carried
            ],
            "discrepancies": [
                {"invariant": d.invariant, "detail": d.detail}
                for d in discrepancies
            ],
            "schedule": {
                "ii": result.ii,
                "mii": result.mii,
                "res_mii": result.res_mii,
                "rec_mii": result.rec_mii,
                "list_ii": result.list_ii,
                "brute_ii": brute_ii,
                "offsets": {str(z): off for z, off in result.offsets.items()},
                "completed": result.completed,
            },
        },
    )
    return path


def run_loop_suite(
    machines,
    options: Optional[SearchOptions] = None,
    brute_body_cap: int = DEFAULT_BRUTE_BODY_CAP,
    telemetry: Optional[Telemetry] = None,
    emit_dir: Optional[str] = DEFAULT_REPORT_DIR,
) -> List[LoopOracleReport]:
    """Check every built-in loop kernel against every machine in
    ``machines``; returns one report per (kernel, machine) pair."""
    from ..synth.loops import LOOP_KERNELS

    reports = []
    for kernel in LOOP_KERNELS:
        loop = kernel.lower()
        for machine in machines:
            reports.append(
                check_loop(
                    loop,
                    machine,
                    options=options,
                    brute_body_cap=brute_body_cap,
                    telemetry=telemetry,
                    emit_dir=emit_dir,
                )
            )
    return reports
