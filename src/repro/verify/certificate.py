"""Schedule certificates — an independent re-implementation of the rules.

Given only the raw tuple block and the machine description tables, this
module decides whether a claimed schedule (an instruction order plus the
NOP count before each instruction) is *legal* and whether its NOP counts
are exactly the minimum the machine model requires.  It is deliberately
a second implementation of sections 2.1 and 4.2.2, not a wrapper:

* the dependence relation is re-derived here from the tuples (value
  references plus the Load/Store variable rules) rather than taken from
  ``repro.ir.dag``;
* pipeline assignment (σ) is re-resolved here from the machine's
  operation-to-pipeline table rather than through ``SigmaResolver``;
* issue times, conflict delays and dependence delays are recomputed
  positionally rather than through ``IncrementalTimingState``.

Nothing in ``repro.sched`` is imported.  A bug shared by the Ω
implementation and every scheduler built on it therefore cannot also
hide here, which is what makes :class:`CertificateReport` evidence
rather than agreement.

Checked properties, in order:

1. **permutation** — the order covers every tuple exactly once, with one
   η per position, none negative;
2. **assignment** — every instruction has a well-defined pipeline: its
   claimed pipeline (if any) must be able to execute it, and an
   operation with several viable pipelines must come with an explicit
   choice;
3. **dependence** — no instruction issues before a tuple it depends on;
4. **under-padded** — a claimed η smaller than the machine model's
   minimum delay (a schedule the hardware would corrupt);
5. **over-padded** — a claimed η larger than that minimum (legal to
   execute, but its NOP count is not an Ω value; rejected by default
   because every scheduler in this repository claims minimal streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.ops import Opcode
from ..machine.machine import MachineDescription

#: Result-availability delay of an operation that uses no pipeline
#: (restated from the paper's step [2], not imported from the scheduler).
_NO_PIPE_DELAY = 1


# ----------------------------------------------------------------------
# Independent dependence derivation
# ----------------------------------------------------------------------
def derive_dependences(block: BasicBlock) -> Dict[int, FrozenSet[int]]:
    """Immediate predecessors of every tuple, derived from the raw block.

    The rules of section 3.1, restated: a tuple depends on every tuple
    whose *result* it references; a ``Load`` depends on the most recent
    ``Store`` to its variable; a ``Store`` depends on the most recent
    ``Store`` to its variable and on every ``Load`` of it since.
    """
    preds: Dict[int, set] = {t.ident: set() for t in block}
    latest_store: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for t in block:
        mine = preds[t.ident]
        mine.update(r for r in t.value_refs if r != t.ident)
        var = t.variable
        if var is None:
            continue
        if t.op is Opcode.LOAD:
            if var in latest_store:
                mine.add(latest_store[var])
            readers.setdefault(var, []).append(t.ident)
        elif t.op is Opcode.STORE:
            if var in latest_store:
                mine.add(latest_store[var])
            mine.update(i for i in readers.get(var, ()) if i != t.ident)
            latest_store[var] = t.ident
            readers[var] = []
    return {ident: frozenset(s) for ident, s in preds.items()}


# ----------------------------------------------------------------------
# Independent sigma resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One reason a claimed schedule fails certification."""

    kind: str  # permutation | assignment | dependence | under-padded | over-padded
    position: int  # index into the order; -1 for schedule-level failures
    ident: int  # tuple reference number; -1 for schedule-level failures
    detail: str

    def __str__(self) -> str:
        where = f" at position {self.position}" if self.position >= 0 else ""
        return f"[{self.kind}]{where}: {self.detail}"


def resolve_sigma(
    block: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
) -> Tuple[Dict[int, Optional[int]], List[Violation]]:
    """Re-derive each tuple's pipeline from the machine tables.

    Returns the σ mapping plus any assignment violations.  Tuples whose
    σ could not be determined are mapped to ``None`` (and flagged), so
    the timing pass can still run and report further problems.
    """
    sigma: Dict[int, Optional[int]] = {}
    violations: List[Violation] = []
    known = {p.ident for p in machine.pipelines}
    for position, t in enumerate(block):
        viable = machine.pipelines_for(t.op)
        if assignment is not None and t.ident in assignment:
            pid = assignment[t.ident]
            if pid is None:
                if viable:
                    violations.append(
                        Violation(
                            "assignment", position, t.ident,
                            f"tuple {t.ident} ({t.op.value}) assigned no "
                            f"pipeline but requires one of {sorted(viable)}",
                        )
                    )
                sigma[t.ident] = None
            elif pid not in known:
                violations.append(
                    Violation(
                        "assignment", position, t.ident,
                        f"tuple {t.ident} assigned unknown pipeline {pid}",
                    )
                )
                sigma[t.ident] = None
            elif pid not in viable:
                violations.append(
                    Violation(
                        "assignment", position, t.ident,
                        f"pipeline {pid} cannot execute {t.op.value} "
                        f"(viable: {sorted(viable) or '{}'})",
                    )
                )
                sigma[t.ident] = None
            else:
                sigma[t.ident] = pid
        elif not viable:
            sigma[t.ident] = None
        elif len(viable) == 1:
            sigma[t.ident] = next(iter(viable))
        else:
            violations.append(
                Violation(
                    "assignment", position, t.ident,
                    f"tuple {t.ident} ({t.op.value}) may run on pipelines "
                    f"{sorted(viable)}; an explicit assignment is required",
                )
            )
            sigma[t.ident] = None
    return sigma, violations


# ----------------------------------------------------------------------
# The certificate check
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertificateReport:
    """Outcome of independently re-checking one claimed schedule."""

    ok: bool
    violations: Tuple[Violation, ...]
    order: Tuple[int, ...]
    claimed_etas: Tuple[int, ...]
    #: η values this module recomputed (empty on structural failure).
    required_etas: Tuple[int, ...]
    claimed_nops: int
    required_nops: int

    def summary(self) -> str:
        if self.ok:
            return (
                f"certified: {len(self.order)} instructions, "
                f"{self.required_nops} NOPs recomputed independently"
            )
        lines = [f"REJECTED ({len(self.violations)} violation(s)):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def check_schedule(
    block: BasicBlock,
    machine: MachineDescription,
    order: Sequence[int],
    etas: Sequence[int],
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    pipe_free: Optional[Mapping[int, int]] = None,
    variable_ready: Optional[Mapping[str, int]] = None,
    require_minimal: bool = True,
) -> CertificateReport:
    """Certify a claimed ``(order, etas)`` schedule of ``block``.

    ``pipe_free`` / ``variable_ready`` replicate the carry-in conditions
    of paper footnote 1 (earliest cycle each pipeline accepts work /
    each variable may be touched); both default to an idle machine.
    ``require_minimal=False`` accepts over-padded but executable
    schedules (streams with more NOPs than the model requires).
    """
    order = tuple(order)
    etas = tuple(etas)
    violations: List[Violation] = []

    # 1. Structure: a permutation of the block with one eta each.
    if sorted(order) != sorted(block.idents):
        violations.append(
            Violation(
                "permutation", -1, -1,
                f"order {order} is not a permutation of tuples "
                f"{block.idents}",
            )
        )
    if len(etas) != len(order):
        violations.append(
            Violation(
                "permutation", -1, -1,
                f"{len(order)} instructions but {len(etas)} eta values",
            )
        )
    for position, eta in enumerate(etas):
        if eta < 0:
            violations.append(
                Violation(
                    "permutation", position,
                    order[position] if position < len(order) else -1,
                    f"negative NOP count {eta}",
                )
            )
    if violations:
        return CertificateReport(
            False, tuple(violations), order, etas, (), sum(etas), -1
        )

    # 2. Pipeline assignment from the machine tables.
    sigma, sigma_violations = resolve_sigma(block, machine, assignment)
    violations += sigma_violations

    preds = derive_dependences(block)
    position_of = {ident: k for k, ident in enumerate(order)}

    # 3. Dependence order.
    for position, ident in enumerate(order):
        for p in preds[ident]:
            if position_of[p] > position:
                violations.append(
                    Violation(
                        "dependence", position, ident,
                        f"tuple {ident} issues before its predecessor {p}",
                    )
                )

    if any(v.kind == "dependence" for v in violations):
        return CertificateReport(
            False, tuple(violations), order, etas, (), sum(etas), -1
        )

    # 4./5. Positional timing: walk the stream at the *claimed* issue
    # times and recompute the minimum eta each position needs.
    def latency_of(ident: int) -> int:
        pid = sigma[ident]
        return _NO_PIPE_DELAY if pid is None else machine.pipeline(pid).latency

    pipe_free = dict(pipe_free or {})
    variable_ready = dict(variable_ready or {})
    issue: Dict[int, int] = {}
    last_on_pipe: Dict[int, int] = {}
    required: List[int] = []
    clock = 0  # issue slot the next instruction would take with eta 0
    for position, (ident, claimed) in enumerate(zip(order, etas)):
        base = clock
        earliest = base
        pid = sigma[ident]
        if pid is not None:
            earliest = max(earliest, pipe_free.get(pid, 0))
            if pid in last_on_pipe:
                earliest = max(
                    earliest,
                    last_on_pipe[pid] + machine.pipeline(pid).enqueue_time,
                )
        var = block.by_ident(ident).variable
        if var is not None:
            earliest = max(earliest, variable_ready.get(var, 0))
        for p in preds[ident]:
            earliest = max(earliest, issue[p] + latency_of(p))
        need = earliest - base
        required.append(need)
        if claimed < need:
            violations.append(
                Violation(
                    "under-padded", position, ident,
                    f"tuple {ident} needs {need} NOP(s) here but the "
                    f"schedule claims {claimed}",
                )
            )
        elif claimed > need and require_minimal:
            violations.append(
                Violation(
                    "over-padded", position, ident,
                    f"tuple {ident} needs only {need} NOP(s) here but the "
                    f"schedule claims {claimed}; the stream is not an "
                    "Omega-minimal padding",
                )
            )
        # Commit the *claimed* issue slot: later constraints are judged
        # against the stream as written, not as it should have been.
        at = base + claimed
        issue[ident] = at
        if pid is not None:
            last_on_pipe[pid] = at
        clock = at + 1

    ok = not violations
    return CertificateReport(
        ok=ok,
        violations=tuple(violations),
        order=order,
        claimed_etas=etas,
        required_etas=tuple(required),
        claimed_nops=sum(etas),
        required_nops=sum(required),
    )


# ----------------------------------------------------------------------
# Independent brute-force optimum
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BruteForceResult:
    """Ground-truth optimum from enumerating legal orders independently."""

    best_nops: int
    best_order: Tuple[int, ...]
    best_etas: Tuple[int, ...]
    orders_seen: int
    exhausted: bool  # False when ``limit`` stopped the enumeration


def brute_force_optimum(
    block: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    limit: Optional[int] = None,
) -> BruteForceResult:
    """Minimum NOP count over every dependence-legal order of ``block``.

    Shares no code with the schedulers: dependences, σ and timing all
    come from this module.  ``limit`` caps the number of complete orders
    examined (``exhausted=False`` when hit); intended for small blocks,
    where the result is the definitive optimum the searches must match.
    """
    n = len(block)
    if n == 0:
        return BruteForceResult(0, (), (), 1, True)
    sigma, sigma_violations = resolve_sigma(block, machine, assignment)
    if sigma_violations:
        raise ValueError(
            "cannot enumerate schedules: " + "; ".join(map(str, sigma_violations))
        )
    preds = derive_dependences(block)
    succs: Dict[int, List[int]] = {i: [] for i in block.idents}
    for ident, ps in preds.items():
        for p in ps:
            succs[p].append(ident)
    enqueue = {p.ident: p.enqueue_time for p in machine.pipelines}
    latency = {
        i: (_NO_PIPE_DELAY if sigma[i] is None else machine.pipeline(sigma[i]).latency)
        for i in block.idents
    }

    indegree = {i: len(preds[i]) for i in block.idents}
    ready = [i for i in block.idents if indegree[i] == 0]
    order: List[int] = []
    etas: List[int] = []
    issue: Dict[int, int] = {}
    last_on_pipe: Dict[int, int] = {}
    best: Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = None
    seen = 0
    exhausted = True

    def rec(nops: int, clock: int) -> bool:
        nonlocal best, seen, exhausted
        if len(order) == n:
            seen += 1
            if best is None or nops < best[0]:
                best = (nops, tuple(order), tuple(etas))
            if limit is not None and seen >= limit:
                exhausted = False
                return False
            return True
        for ident in list(ready):
            earliest = clock
            pid = sigma[ident]
            if pid is not None and pid in last_on_pipe:
                earliest = max(earliest, last_on_pipe[pid] + enqueue[pid])
            for p in preds[ident]:
                earliest = max(earliest, issue[p] + latency[p])
            eta = earliest - clock
            order.append(ident)
            etas.append(eta)
            issue[ident] = earliest
            saved_pipe = last_on_pipe.get(pid) if pid is not None else None
            if pid is not None:
                last_on_pipe[pid] = earliest
            ready.remove(ident)
            opened = []
            for s in succs[ident]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    ready.append(s)
                    opened.append(s)
            keep_going = rec(nops + eta, earliest + 1)
            for s in opened:
                ready.remove(s)
            for s in succs[ident]:
                indegree[s] += 1
            ready.append(ident)
            if pid is not None:
                if saved_pipe is None:
                    del last_on_pipe[pid]
                else:
                    last_on_pipe[pid] = saved_pipe
            del issue[ident]
            etas.pop()
            order.pop()
            if not keep_going:
                return False
        return True

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
    try:
        rec(0, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    assert best is not None
    return BruteForceResult(best[0], best[1], best[2], seen, exhausted)


# ----------------------------------------------------------------------
# Loop certificates: steady-state modulo schedules, checked from scratch
# ----------------------------------------------------------------------
def _shifted_copy(block: BasicBlock, stride: int, copies: int) -> BasicBlock:
    """Unroll ``block`` ``copies`` times, renumbering copy ``j`` by
    ``j * stride`` (idents and result references alike).

    A local re-statement of ``repro.ir.loop.concatenate_iterations`` —
    kept separate so a renumbering bug there cannot also hide here.
    """
    from ..ir.tuples import IRTuple, RefOperand

    def shift(operand, offset):
        if isinstance(operand, RefOperand):
            return RefOperand(operand.ref + offset)
        return operand

    tuples = []
    for j in range(copies):
        offset = j * stride
        for t in block:
            tuples.append(
                IRTuple(
                    t.ident + offset,
                    t.op,
                    shift(t.alpha, offset),
                    shift(t.beta, offset),
                )
            )
    return BasicBlock(tuple(tuples), name=f"{block.name}@x{copies}")


def _loop_dependences(
    body: BasicBlock,
) -> List[Tuple[int, int, int]]:
    """``(producer, consumer, distance)`` edges of the loop, re-derived.

    Intra-iteration edges (distance 0) come from
    :func:`derive_dependences` on the body itself; carried edges
    (distance 1) are the edges of a two-copy unroll that cross the copy
    boundary, mapped back to body idents.  In this language a dependence
    links a value use (or variable access) to its *most recent*
    producer, so no carried edge ever skips a whole iteration: distance
    1 captures them all, which the K-copy replay check re-confirms.
    """
    stride = max(body.idents)
    edges: List[Tuple[int, int, int]] = []
    for consumer, ps in derive_dependences(body).items():
        for producer in ps:
            edges.append((producer, consumer, 0))
    pair = _shifted_copy(body, stride, 2)
    for consumer, ps in derive_dependences(pair).items():
        if consumer <= stride:
            continue
        for producer in ps:
            if producer <= stride:
                edges.append((producer, consumer - stride, 1))
    return edges


def loop_ii_lower_bound(
    body: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
) -> int:
    """An independent lower bound on any initiation interval of the loop.

    The larger of: the body size (single issue), per-pipeline enqueue
    pressure (``users * enqueue_time`` cyclic windows must tile into the
    II), and the recurrence bound — for every dependence cycle,
    ``II * sum(distances) >= sum(latencies)``, found here by Bellman–
    Ford positive-cycle detection at each candidate rather than by the
    scheduler's Floyd–Warshall search.
    """
    sigma, sigma_violations = resolve_sigma(body, machine, assignment)
    if sigma_violations:
        raise ValueError(
            "cannot bound the loop II: "
            + "; ".join(map(str, sigma_violations))
        )
    n = len(body)
    if n == 0:
        return 0
    latency = {
        i: (_NO_PIPE_DELAY if sigma[i] is None
            else machine.pipeline(sigma[i]).latency)
        for i in body.idents
    }
    bound = n
    users: Dict[int, int] = {}
    for i in body.idents:
        if sigma[i] is not None:
            users[sigma[i]] = users.get(sigma[i], 0) + 1
    for pid, k in users.items():
        bound = max(bound, k * machine.pipeline(pid).enqueue_time)
    edges = _loop_dependences(body)
    while _recurrence_violated(body.idents, edges, latency, bound):
        bound += 1
    return bound


def _recurrence_violated(
    idents: Sequence[int],
    edges: Sequence[Tuple[int, int, int]],
    latency: Mapping[int, int],
    ii: int,
) -> bool:
    """Bellman–Ford: does some cycle have positive ``lat - II*dist``?"""
    weight = [
        (p, c, latency[p] - ii * d) for p, c, d in edges
    ]
    dist = {i: 0 for i in idents}
    for _ in range(len(idents)):
        changed = False
        for p, c, w in weight:
            if dist[p] + w > dist[c]:
                dist[c] = dist[p] + w
                changed = True
        if not changed:
            return False
    return any(dist[p] + w > dist[c] for p, c, w in weight)


@dataclass(frozen=True)
class LoopCertificateReport:
    """Outcome of independently re-checking one claimed modulo schedule."""

    ok: bool
    violations: Tuple[Violation, ...]
    ii: int
    offsets: Mapping[str, int]  # keyed by str(ident) for stable hashing
    #: This module's own lower bound on any II of the loop.
    ii_lower_bound: int
    #: Iterations materialized and replayed through ``check_schedule``.
    replayed_iterations: int

    def summary(self) -> str:
        if self.ok:
            return (
                f"certified: II={self.ii} >= independent bound "
                f"{self.ii_lower_bound}; {self.replayed_iterations} "
                "overlapped iterations replayed from the tables"
            )
        lines = [f"REJECTED ({len(self.violations)} violation(s)):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def check_steady_state(
    body: BasicBlock,
    machine: MachineDescription,
    offsets: Mapping[int, int],
    ii: int,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    iterations: int = 0,
) -> LoopCertificateReport:
    """Certify a claimed modulo schedule ``(offsets, ii)`` of a loop body.

    Re-derives everything from the raw tuples and machine tables —
    nothing from ``repro.sched`` and nothing from the loop's own derived
    metadata is trusted:

    1. **structure** — ``ii >= 1``; exactly one non-negative offset per
       body tuple; offsets pairwise distinct modulo ``ii`` (the machine
       issues one instruction per tick, so a steady-state window of
       ``ii`` cycles holds each body tuple exactly once);
    2. **bound** — ``ii`` is no smaller than this module's own
       :func:`loop_ii_lower_bound`;
    3. **dependence spacing** — for every re-derived dependence with
       iteration distance ``d``: ``offset(consumer) + d*ii >=
       offset(producer) + latency(producer)``;
    4. **enqueue windows** — per pipeline, the users' cyclic windows
       ``[offset mod ii, offset mod ii + enqueue)`` are pairwise
       disjoint modulo ``ii``;
    5. **replay** — the issue stream of ``iterations`` overlapped
       iterations (at least ``stages + 1``, minimum 3) is materialized
       against an unrolled copy of the body and replayed positionally
       through :func:`check_schedule`, which re-applies the straight-
       line rules of sections 2.1/4.2.2 to the exact cycles the modulo
       schedule claims.
    """
    violations: List[Violation] = []
    idents = body.idents
    offsets = dict(offsets)

    # 1. Structure.
    if ii < 1:
        violations.append(
            Violation("structure", -1, -1, f"initiation interval {ii} < 1")
        )
    if sorted(offsets) != sorted(idents):
        violations.append(
            Violation(
                "structure", -1, -1,
                f"offsets cover {sorted(offsets)} but the body is "
                f"{sorted(idents)}",
            )
        )
    else:
        for z in idents:
            if offsets[z] < 0:
                violations.append(
                    Violation(
                        "structure", -1, z,
                        f"tuple {z} has negative offset {offsets[z]}",
                    )
                )
    if violations:
        return LoopCertificateReport(
            False, tuple(violations), ii,
            {str(k): v for k, v in offsets.items()}, -1, 0,
        )

    slot = {z: offsets[z] % ii for z in idents}
    by_slot: Dict[int, List[int]] = {}
    for z in idents:
        by_slot.setdefault(slot[z], []).append(z)
    for s, zs in sorted(by_slot.items()):
        if len(zs) > 1:
            violations.append(
                Violation(
                    "single-issue", -1, zs[1],
                    f"tuples {zs} all occupy kernel slot {s} "
                    f"(offsets {[offsets[z] for z in zs]} modulo {ii})",
                )
            )

    # 2. The independent lower bound.
    try:
        lower = loop_ii_lower_bound(body, machine, assignment)
    except ValueError as exc:
        violations.append(Violation("assignment", -1, -1, str(exc)))
        return LoopCertificateReport(
            False, tuple(violations), ii,
            {str(k): v for k, v in offsets.items()}, -1, 0,
        )
    if ii < lower:
        violations.append(
            Violation(
                "bound", -1, -1,
                f"claimed II {ii} is below the independent lower bound "
                f"{lower}",
            )
        )

    # 3. Dependence spacing with iteration distances.
    sigma, _ = resolve_sigma(body, machine, assignment)
    latency = {
        z: (_NO_PIPE_DELAY if sigma[z] is None
            else machine.pipeline(sigma[z]).latency)
        for z in idents
    }
    for producer, consumer, d in _loop_dependences(body):
        have = offsets[consumer] + d * ii
        need = offsets[producer] + latency[producer]
        if have < need:
            violations.append(
                Violation(
                    "dependence", -1, consumer,
                    f"tuple {consumer} at offset {offsets[consumer]} "
                    f"(+{d}*II) starts {need - have} cycle(s) before its "
                    f"distance-{d} predecessor {producer} completes",
                )
            )

    # 4. Cyclic enqueue windows modulo II.
    by_pipe: Dict[int, List[int]] = {}
    for z in idents:
        if sigma[z] is not None:
            by_pipe.setdefault(sigma[z], []).append(z)
    for pid, zs in sorted(by_pipe.items()):
        enqueue = machine.pipeline(pid).enqueue_time
        ordered = sorted(zs, key=lambda z: slot[z])
        for a, b in zip(ordered, ordered[1:] + ordered[:1]):
            gap = (slot[b] - slot[a]) % ii
            if len(ordered) == 1:
                gap = ii
            if gap < enqueue:
                violations.append(
                    Violation(
                        "enqueue", -1, b,
                        f"pipeline {pid} windows of tuples {a} and {b} "
                        f"overlap: slots {slot[a]} and {slot[b]} are "
                        f"{gap} apart modulo {ii} but enqueue takes "
                        f"{enqueue}",
                    )
                )

    if violations:
        return LoopCertificateReport(
            False, tuple(violations), ii,
            {str(k): v for k, v in offsets.items()}, lower, 0,
        )

    # 5. Replay: materialize the flat stream of K overlapped iterations
    # and push it through the straight-line certificate at the claimed
    # cycles.  This is the end-to-end cross-check: the unrolled block's
    # *own* dependences (including any cross-iteration effect the
    # distance model might have missed) are re-derived from its tuples.
    stages = max(offsets[z] // ii for z in idents) + 1
    k = max(iterations, stages + 1, 3)
    stride = max(idents)
    unrolled = _shifted_copy(body, stride, k)
    entries = sorted(
        (i * ii + offsets[z], z + i * stride)
        for i in range(k)
        for z in idents
    )
    order = [ident for _, ident in entries]
    etas: List[int] = []
    previous = -1
    for cycle, _ in entries:
        etas.append(cycle - previous - 1)
        previous = cycle
    replay = check_schedule(
        unrolled, machine, order, etas,
        assignment=_replicate_assignment(assignment, idents, stride, k),
        require_minimal=False,
    )
    violations.extend(
        Violation("replay", v.position, v.ident, v.detail)
        for v in replay.violations
    )

    return LoopCertificateReport(
        ok=not violations,
        violations=tuple(violations),
        ii=ii,
        offsets={str(z): offsets[z] for z in idents},
        ii_lower_bound=lower,
        replayed_iterations=k,
    )


def _replicate_assignment(
    assignment: Optional[Mapping[int, Optional[int]]],
    idents: Sequence[int],
    stride: int,
    copies: int,
) -> Optional[Mapping[int, Optional[int]]]:
    if assignment is None:
        return None
    out: Dict[int, Optional[int]] = {}
    for j in range(copies):
        for z in idents:
            if z in assignment:
                out[z + j * stride] = assignment[z]
    return out


# ----------------------------------------------------------------------
# Independent brute-force minimum II (tiny loops)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BruteForceIIResult:
    """Ground-truth minimum II from complete slot/stage enumeration."""

    min_ii: int
    offsets: Mapping[str, int]  # a witness schedule at ``min_ii``
    candidates_tried: int  # II values examined
    assignments_tried: int  # complete slot assignments tested


def brute_force_min_ii(
    body: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    max_ii: Optional[int] = None,
) -> BruteForceIIResult:
    """The definitive minimum initiation interval of a tiny loop body.

    For each candidate ``II`` from :func:`loop_ii_lower_bound` upward,
    enumerates *every* assignment of kernel slots (distinct modulo
    ``II``, pipeline windows disjoint), then decides stage feasibility
    exactly: a slot assignment extends to offsets iff the difference
    constraints ``stage(w) >= stage(z) + ceil((lat(z) - d*II + slot(z) -
    slot(w)) / II)`` admit no positive cycle (Bellman–Ford).  The first
    feasible ``II`` is therefore the true optimum — the oracle's ground
    truth for ``ModuloScheduleResult.completed`` claims.  Exponential in
    the body size; intended for bodies of at most ~8 tuples.
    """
    n = len(body)
    if n == 0:
        raise ValueError("cannot modulo-schedule an empty loop body")
    sigma, sigma_violations = resolve_sigma(body, machine, assignment)
    if sigma_violations:
        raise ValueError(
            "cannot enumerate kernels: "
            + "; ".join(map(str, sigma_violations))
        )
    idents = list(body.idents)
    latency = {
        z: (_NO_PIPE_DELAY if sigma[z] is None
            else machine.pipeline(sigma[z]).latency)
        for z in idents
    }
    edges = _loop_dependences(body)
    lower = loop_ii_lower_bound(body, machine, assignment)
    if max_ii is None:
        max_ii = lower + sum(latency.values()) + n
    candidates = 0
    attempts = [0]

    for ii in range(lower, max_ii + 1):
        candidates += 1
        witness = _enumerate_kernel(
            idents, sigma, latency, edges, machine, ii, attempts
        )
        if witness is not None:
            return BruteForceIIResult(
                min_ii=ii,
                offsets={str(z): off for z, off in witness.items()},
                candidates_tried=candidates,
                assignments_tried=attempts[0],
            )
    raise AssertionError(  # pragma: no cover - max_ii always admits a kernel
        f"no feasible II up to {max_ii} for {body.name}"
    )


def _enumerate_kernel(
    idents: Sequence[int],
    sigma: Mapping[int, Optional[int]],
    latency: Mapping[int, int],
    edges: Sequence[Tuple[int, int, int]],
    machine: MachineDescription,
    ii: int,
    attempts: List[int],
) -> Optional[Dict[int, int]]:
    """Complete search for offsets feasible at ``ii`` (None if refuted)."""
    enqueue = {
        z: (0 if sigma[z] is None
            else machine.pipeline(sigma[z]).enqueue_time)
        for z in idents
    }
    slots: Dict[int, int] = {}
    used: set = set()
    busy: Dict[int, set] = {}

    def stages_feasible() -> Optional[Dict[int, int]]:
        """Difference constraints on stages: longest-path Bellman–Ford."""
        attempts[0] += 1
        stage = {z: 0 for z in idents}
        for _ in range(len(idents) + 1):
            changed = False
            for p, c, d in edges:
                # offset = stage*ii + slot; the dependence needs
                # stage(c) >= stage(p) + ceil((lat - d*ii + s(p) - s(c)) / ii)
                need = -(-(latency[p] - d * ii + slots[p] - slots[c]) // ii)
                if stage[p] + need > stage[c]:
                    stage[c] = stage[p] + need
                    changed = True
            if not changed:
                lift = -min(stage.values())
                return {z: (stage[z] + lift) * ii + slots[z] for z in idents}
        return None  # positive cycle: no stage assignment exists

    def place(k: int) -> Optional[Dict[int, int]]:
        if k == len(idents):
            return stages_feasible()
        z = idents[k]
        pid = sigma[z]
        pipe_busy = busy.setdefault(pid, set()) if pid is not None else None
        for s in range(ii):
            if s in used:
                continue
            if pid is not None:
                window = {(s + j) % ii for j in range(enqueue[z])}
                if len(window) < enqueue[z] or window & pipe_busy:
                    continue
            slots[z] = s
            used.add(s)
            if pid is not None:
                pipe_busy.update(window)
            found = place(k + 1)
            if found is not None:
                return found
            used.discard(s)
            del slots[z]
            if pid is not None:
                pipe_busy.difference_update(window)
        return None

    return place(0)
