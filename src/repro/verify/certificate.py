"""Schedule certificates — an independent re-implementation of the rules.

Given only the raw tuple block and the machine description tables, this
module decides whether a claimed schedule (an instruction order plus the
NOP count before each instruction) is *legal* and whether its NOP counts
are exactly the minimum the machine model requires.  It is deliberately
a second implementation of sections 2.1 and 4.2.2, not a wrapper:

* the dependence relation is re-derived here from the tuples (value
  references plus the Load/Store variable rules) rather than taken from
  ``repro.ir.dag``;
* pipeline assignment (σ) is re-resolved here from the machine's
  operation-to-pipeline table rather than through ``SigmaResolver``;
* issue times, conflict delays and dependence delays are recomputed
  positionally rather than through ``IncrementalTimingState``.

Nothing in ``repro.sched`` is imported.  A bug shared by the Ω
implementation and every scheduler built on it therefore cannot also
hide here, which is what makes :class:`CertificateReport` evidence
rather than agreement.

Checked properties, in order:

1. **permutation** — the order covers every tuple exactly once, with one
   η per position, none negative;
2. **assignment** — every instruction has a well-defined pipeline: its
   claimed pipeline (if any) must be able to execute it, and an
   operation with several viable pipelines must come with an explicit
   choice;
3. **dependence** — no instruction issues before a tuple it depends on;
4. **under-padded** — a claimed η smaller than the machine model's
   minimum delay (a schedule the hardware would corrupt);
5. **over-padded** — a claimed η larger than that minimum (legal to
   execute, but its NOP count is not an Ω value; rejected by default
   because every scheduler in this repository claims minimal streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.ops import Opcode
from ..machine.machine import MachineDescription

#: Result-availability delay of an operation that uses no pipeline
#: (restated from the paper's step [2], not imported from the scheduler).
_NO_PIPE_DELAY = 1


# ----------------------------------------------------------------------
# Independent dependence derivation
# ----------------------------------------------------------------------
def derive_dependences(block: BasicBlock) -> Dict[int, FrozenSet[int]]:
    """Immediate predecessors of every tuple, derived from the raw block.

    The rules of section 3.1, restated: a tuple depends on every tuple
    whose *result* it references; a ``Load`` depends on the most recent
    ``Store`` to its variable; a ``Store`` depends on the most recent
    ``Store`` to its variable and on every ``Load`` of it since.
    """
    preds: Dict[int, set] = {t.ident: set() for t in block}
    latest_store: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for t in block:
        mine = preds[t.ident]
        mine.update(r for r in t.value_refs if r != t.ident)
        var = t.variable
        if var is None:
            continue
        if t.op is Opcode.LOAD:
            if var in latest_store:
                mine.add(latest_store[var])
            readers.setdefault(var, []).append(t.ident)
        elif t.op is Opcode.STORE:
            if var in latest_store:
                mine.add(latest_store[var])
            mine.update(i for i in readers.get(var, ()) if i != t.ident)
            latest_store[var] = t.ident
            readers[var] = []
    return {ident: frozenset(s) for ident, s in preds.items()}


# ----------------------------------------------------------------------
# Independent sigma resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One reason a claimed schedule fails certification."""

    kind: str  # permutation | assignment | dependence | under-padded | over-padded
    position: int  # index into the order; -1 for schedule-level failures
    ident: int  # tuple reference number; -1 for schedule-level failures
    detail: str

    def __str__(self) -> str:
        where = f" at position {self.position}" if self.position >= 0 else ""
        return f"[{self.kind}]{where}: {self.detail}"


def resolve_sigma(
    block: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
) -> Tuple[Dict[int, Optional[int]], List[Violation]]:
    """Re-derive each tuple's pipeline from the machine tables.

    Returns the σ mapping plus any assignment violations.  Tuples whose
    σ could not be determined are mapped to ``None`` (and flagged), so
    the timing pass can still run and report further problems.
    """
    sigma: Dict[int, Optional[int]] = {}
    violations: List[Violation] = []
    known = {p.ident for p in machine.pipelines}
    for position, t in enumerate(block):
        viable = machine.pipelines_for(t.op)
        if assignment is not None and t.ident in assignment:
            pid = assignment[t.ident]
            if pid is None:
                if viable:
                    violations.append(
                        Violation(
                            "assignment", position, t.ident,
                            f"tuple {t.ident} ({t.op.value}) assigned no "
                            f"pipeline but requires one of {sorted(viable)}",
                        )
                    )
                sigma[t.ident] = None
            elif pid not in known:
                violations.append(
                    Violation(
                        "assignment", position, t.ident,
                        f"tuple {t.ident} assigned unknown pipeline {pid}",
                    )
                )
                sigma[t.ident] = None
            elif pid not in viable:
                violations.append(
                    Violation(
                        "assignment", position, t.ident,
                        f"pipeline {pid} cannot execute {t.op.value} "
                        f"(viable: {sorted(viable) or '{}'})",
                    )
                )
                sigma[t.ident] = None
            else:
                sigma[t.ident] = pid
        elif not viable:
            sigma[t.ident] = None
        elif len(viable) == 1:
            sigma[t.ident] = next(iter(viable))
        else:
            violations.append(
                Violation(
                    "assignment", position, t.ident,
                    f"tuple {t.ident} ({t.op.value}) may run on pipelines "
                    f"{sorted(viable)}; an explicit assignment is required",
                )
            )
            sigma[t.ident] = None
    return sigma, violations


# ----------------------------------------------------------------------
# The certificate check
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertificateReport:
    """Outcome of independently re-checking one claimed schedule."""

    ok: bool
    violations: Tuple[Violation, ...]
    order: Tuple[int, ...]
    claimed_etas: Tuple[int, ...]
    #: η values this module recomputed (empty on structural failure).
    required_etas: Tuple[int, ...]
    claimed_nops: int
    required_nops: int

    def summary(self) -> str:
        if self.ok:
            return (
                f"certified: {len(self.order)} instructions, "
                f"{self.required_nops} NOPs recomputed independently"
            )
        lines = [f"REJECTED ({len(self.violations)} violation(s)):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def check_schedule(
    block: BasicBlock,
    machine: MachineDescription,
    order: Sequence[int],
    etas: Sequence[int],
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    pipe_free: Optional[Mapping[int, int]] = None,
    variable_ready: Optional[Mapping[str, int]] = None,
    require_minimal: bool = True,
) -> CertificateReport:
    """Certify a claimed ``(order, etas)`` schedule of ``block``.

    ``pipe_free`` / ``variable_ready`` replicate the carry-in conditions
    of paper footnote 1 (earliest cycle each pipeline accepts work /
    each variable may be touched); both default to an idle machine.
    ``require_minimal=False`` accepts over-padded but executable
    schedules (streams with more NOPs than the model requires).
    """
    order = tuple(order)
    etas = tuple(etas)
    violations: List[Violation] = []

    # 1. Structure: a permutation of the block with one eta each.
    if sorted(order) != sorted(block.idents):
        violations.append(
            Violation(
                "permutation", -1, -1,
                f"order {order} is not a permutation of tuples "
                f"{block.idents}",
            )
        )
    if len(etas) != len(order):
        violations.append(
            Violation(
                "permutation", -1, -1,
                f"{len(order)} instructions but {len(etas)} eta values",
            )
        )
    for position, eta in enumerate(etas):
        if eta < 0:
            violations.append(
                Violation(
                    "permutation", position,
                    order[position] if position < len(order) else -1,
                    f"negative NOP count {eta}",
                )
            )
    if violations:
        return CertificateReport(
            False, tuple(violations), order, etas, (), sum(etas), -1
        )

    # 2. Pipeline assignment from the machine tables.
    sigma, sigma_violations = resolve_sigma(block, machine, assignment)
    violations += sigma_violations

    preds = derive_dependences(block)
    position_of = {ident: k for k, ident in enumerate(order)}

    # 3. Dependence order.
    for position, ident in enumerate(order):
        for p in preds[ident]:
            if position_of[p] > position:
                violations.append(
                    Violation(
                        "dependence", position, ident,
                        f"tuple {ident} issues before its predecessor {p}",
                    )
                )

    if any(v.kind == "dependence" for v in violations):
        return CertificateReport(
            False, tuple(violations), order, etas, (), sum(etas), -1
        )

    # 4./5. Positional timing: walk the stream at the *claimed* issue
    # times and recompute the minimum eta each position needs.
    def latency_of(ident: int) -> int:
        pid = sigma[ident]
        return _NO_PIPE_DELAY if pid is None else machine.pipeline(pid).latency

    pipe_free = dict(pipe_free or {})
    variable_ready = dict(variable_ready or {})
    issue: Dict[int, int] = {}
    last_on_pipe: Dict[int, int] = {}
    required: List[int] = []
    clock = 0  # issue slot the next instruction would take with eta 0
    for position, (ident, claimed) in enumerate(zip(order, etas)):
        base = clock
        earliest = base
        pid = sigma[ident]
        if pid is not None:
            earliest = max(earliest, pipe_free.get(pid, 0))
            if pid in last_on_pipe:
                earliest = max(
                    earliest,
                    last_on_pipe[pid] + machine.pipeline(pid).enqueue_time,
                )
        var = block.by_ident(ident).variable
        if var is not None:
            earliest = max(earliest, variable_ready.get(var, 0))
        for p in preds[ident]:
            earliest = max(earliest, issue[p] + latency_of(p))
        need = earliest - base
        required.append(need)
        if claimed < need:
            violations.append(
                Violation(
                    "under-padded", position, ident,
                    f"tuple {ident} needs {need} NOP(s) here but the "
                    f"schedule claims {claimed}",
                )
            )
        elif claimed > need and require_minimal:
            violations.append(
                Violation(
                    "over-padded", position, ident,
                    f"tuple {ident} needs only {need} NOP(s) here but the "
                    f"schedule claims {claimed}; the stream is not an "
                    "Omega-minimal padding",
                )
            )
        # Commit the *claimed* issue slot: later constraints are judged
        # against the stream as written, not as it should have been.
        at = base + claimed
        issue[ident] = at
        if pid is not None:
            last_on_pipe[pid] = at
        clock = at + 1

    ok = not violations
    return CertificateReport(
        ok=ok,
        violations=tuple(violations),
        order=order,
        claimed_etas=etas,
        required_etas=tuple(required),
        claimed_nops=sum(etas),
        required_nops=sum(required),
    )


# ----------------------------------------------------------------------
# Independent brute-force optimum
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BruteForceResult:
    """Ground-truth optimum from enumerating legal orders independently."""

    best_nops: int
    best_order: Tuple[int, ...]
    best_etas: Tuple[int, ...]
    orders_seen: int
    exhausted: bool  # False when ``limit`` stopped the enumeration


def brute_force_optimum(
    block: BasicBlock,
    machine: MachineDescription,
    assignment: Optional[Mapping[int, Optional[int]]] = None,
    limit: Optional[int] = None,
) -> BruteForceResult:
    """Minimum NOP count over every dependence-legal order of ``block``.

    Shares no code with the schedulers: dependences, σ and timing all
    come from this module.  ``limit`` caps the number of complete orders
    examined (``exhausted=False`` when hit); intended for small blocks,
    where the result is the definitive optimum the searches must match.
    """
    n = len(block)
    if n == 0:
        return BruteForceResult(0, (), (), 1, True)
    sigma, sigma_violations = resolve_sigma(block, machine, assignment)
    if sigma_violations:
        raise ValueError(
            "cannot enumerate schedules: " + "; ".join(map(str, sigma_violations))
        )
    preds = derive_dependences(block)
    succs: Dict[int, List[int]] = {i: [] for i in block.idents}
    for ident, ps in preds.items():
        for p in ps:
            succs[p].append(ident)
    enqueue = {p.ident: p.enqueue_time for p in machine.pipelines}
    latency = {
        i: (_NO_PIPE_DELAY if sigma[i] is None else machine.pipeline(sigma[i]).latency)
        for i in block.idents
    }

    indegree = {i: len(preds[i]) for i in block.idents}
    ready = [i for i in block.idents if indegree[i] == 0]
    order: List[int] = []
    etas: List[int] = []
    issue: Dict[int, int] = {}
    last_on_pipe: Dict[int, int] = {}
    best: Optional[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = None
    seen = 0
    exhausted = True

    def rec(nops: int, clock: int) -> bool:
        nonlocal best, seen, exhausted
        if len(order) == n:
            seen += 1
            if best is None or nops < best[0]:
                best = (nops, tuple(order), tuple(etas))
            if limit is not None and seen >= limit:
                exhausted = False
                return False
            return True
        for ident in list(ready):
            earliest = clock
            pid = sigma[ident]
            if pid is not None and pid in last_on_pipe:
                earliest = max(earliest, last_on_pipe[pid] + enqueue[pid])
            for p in preds[ident]:
                earliest = max(earliest, issue[p] + latency[p])
            eta = earliest - clock
            order.append(ident)
            etas.append(eta)
            issue[ident] = earliest
            saved_pipe = last_on_pipe.get(pid) if pid is not None else None
            if pid is not None:
                last_on_pipe[pid] = earliest
            ready.remove(ident)
            opened = []
            for s in succs[ident]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    ready.append(s)
                    opened.append(s)
            keep_going = rec(nops + eta, earliest + 1)
            for s in opened:
                ready.remove(s)
            for s in succs[ident]:
                indegree[s] += 1
            ready.append(ident)
            if pid is not None:
                if saved_pipe is None:
                    del last_on_pipe[pid]
                else:
                    last_on_pipe[pid] = saved_pipe
            del issue[ident]
            etas.pop()
            order.pop()
            if not keep_going:
                return False
        return True

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 10 + 1000))
    try:
        rec(0, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    assert best is not None
    return BruteForceResult(best[0], best[1], best[2], seen, exhausted)
