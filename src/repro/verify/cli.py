"""Command-line entry point: ``repro-verify``.

Runs the differential oracle — every scheduler cross-checked through the
independent certificate checker — over the built-in kernels, a seeded
random block population, or a previously emitted discrepancy report::

    repro-verify --kernels --machines all
    repro-verify --blocks 200 --seed 1990
    repro-verify --optimality --kernels --machines all
    repro-verify --loops --machines all
    repro-verify --kernels --blocks 50 --machines paper-simulation,scalar
    repro-verify --replay results/discrepancies/fuzz-1990-3-adv-deep-pipe

The ``--loops`` tier runs the loop oracle (modulo scheduler vs list
steady state vs independent certificate vs brute-force minimum II) over
every built-in loop kernel on the selected machines.

Exit status is 0 when every check passes and 1 on any discrepancy;
failures leave replayable reports under ``--out`` (default
``results/discrepancies/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..driver import compile_source
from ..machine.presets import PRESETS, get_machine
from ..sched.search import SearchOptions
from ..synth.kernels import KERNELS
from ..telemetry import Telemetry
from .fuzz import adversarial_machines, run_fuzz
from .oracle import DEFAULT_BRUTE_CAP, DEFAULT_REPORT_DIR, check_block, replay_report


def _parse_machines(spec: str):
    if spec == "all":
        return [get_machine(name) for name in sorted(PRESETS)]
    if spec == "adversarial":
        return adversarial_machines()
    return [get_machine(name.strip()) for name in spec.split(",") if name.strip()]


def build_parser(prog: str = "repro-verify") -> argparse.ArgumentParser:
    from ..cliutil import common_flags

    parser = argparse.ArgumentParser(
        prog=prog,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[
            common_flags(
                ("seed", "curtail", "stats-json", "optimality"),
                overrides={
                    "seed": dict(help="fuzz master seed"),
                    "stats-json": dict(
                        help="write verification telemetry "
                        "(verify.* counters) to PATH"
                    ),
                },
            )
        ],
    )
    parser.add_argument(
        "--kernels", action="store_true",
        help="verify every built-in kernel on the selected machines",
    )
    parser.add_argument(
        "--loops", action="store_true",
        help="verify every built-in loop kernel (modulo scheduling "
        "oracle) on the selected machines",
    )
    parser.add_argument(
        "--blocks", type=int, default=0, metavar="N",
        help="also fuzz N seeded random blocks (adversarial + random machines)",
    )
    parser.add_argument(
        "--machines", default="paper-simulation", metavar="SPEC",
        help="comma-separated preset names, 'all', or 'adversarial' "
        "(default: paper-simulation)",
    )
    parser.add_argument(
        "--brute-cap", type=int, default=DEFAULT_BRUTE_CAP, metavar="N",
        help="run exhaustive ground truth only below N legal orders "
        f"(default {DEFAULT_BRUTE_CAP:,})",
    )
    parser.add_argument(
        "--out", default=DEFAULT_REPORT_DIR, metavar="DIR",
        help=f"discrepancy report directory (default {DEFAULT_REPORT_DIR})",
    )
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="re-run the oracle on an emitted discrepancy report and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None, prog: str = "repro-verify") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    options = SearchOptions(curtail=args.curtail)
    telemetry = Telemetry()
    failures = 0
    blocks_checked = 0
    checks = 0

    if args.replay is not None:
        try:
            report = replay_report(
                args.replay, options=options, brute_cap=args.brute_cap,
                telemetry=telemetry,
            )
        except (OSError, ValueError, KeyError) as exc:
            # Unreadable path, torn JSON, or a report from a newer schema:
            # one line, not a traceback.
            print(
                f"repro-verify: cannot replay {args.replay}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(report.summary())
        _write_stats(telemetry, args)
        return 0 if report.ok else 1

    try:
        machines = _parse_machines(args.machines)
    except KeyError as exc:
        parser.error(str(exc))

    if not args.kernels and not args.loops and args.blocks <= 0:
        args.kernels = True  # bare `repro-verify` still verifies something

    try:
        return _run_checks(
            args, options, telemetry, machines, blocks_checked, checks, failures
        )
    except KeyboardInterrupt:
        print("\nrepro-verify: interrupted", file=sys.stderr)
        _write_stats(telemetry, args)  # partial verify.* counters
        return 130


def _run_checks(
    args, options, telemetry, machines, blocks_checked, checks, failures
) -> int:
    if args.kernels:
        # Lowering/optimization is machine-independent; compile once on
        # the (deterministic) paper machine, then verify the tuple block
        # against every selected target.
        for kernel in KERNELS:
            block = compile_source(
                kernel.source,
                get_machine("paper-simulation"),
                scheduler="none",
                name=kernel.name,
            ).block
            for machine in machines:
                report = check_block(
                    block,
                    machine,
                    options=options,
                    brute_cap=args.brute_cap,
                    telemetry=telemetry,
                    emit_dir=args.out,
                    optimality=args.optimality,
                )
                blocks_checked += 1
                checks += report.checks_run
                print(report.summary())
                if not report.ok:
                    failures += 1
                    if report.report_dir:
                        print(f"  report: {report.report_dir}")

    if args.loops:
        from .loops import run_loop_suite

        for report in run_loop_suite(
            machines,
            options=options,
            telemetry=telemetry,
            emit_dir=args.out,
        ):
            blocks_checked += 1
            checks += report.checks_run
            print(report.summary())
            if not report.ok:
                failures += 1
                if report.report_dir:
                    print(f"  report: {report.report_dir}")

    if args.blocks > 0:
        fuzz = run_fuzz(
            args.blocks,
            seed=args.seed,
            options=options,
            brute_cap=args.brute_cap,
            emit_dir=args.out,
            telemetry=telemetry,
            optimality=args.optimality,
        )
        blocks_checked += fuzz.blocks_checked
        checks += fuzz.checks_run
        print(fuzz.summary())
        for path in fuzz.report_dirs:
            print(f"  report: {path}")
        failures += len(fuzz.failures)

    status = "all consistent" if failures == 0 else f"{failures} FAILED"
    print(
        f"[verify] {blocks_checked} block/machine pairs, "
        f"{checks} checks: {status}"
    )
    _write_stats(telemetry, args)
    return 0 if failures == 0 else 1


def _write_stats(telemetry: Telemetry, args) -> None:
    if args.stats_json:
        telemetry.write_json(
            args.stats_json,
            meta={
                "kernels": bool(args.kernels),
                "loops": bool(args.loops),
                "blocks": args.blocks,
                "machines": args.machines,
                "seed": args.seed,
                "curtail": args.curtail,
                "optimality": args.optimality,
            },
        )
        print(f"[stats] telemetry written to {args.stats_json}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
