"""Seeded deterministic fuzzing for the differential oracle.

``tests/test_differential.py`` drives the oracle through hypothesis;
this module is the dependency-free twin used by the ``repro-verify``
CLI and CI: a plain ``random.Random`` generator for blocks and machine
descriptions, so a seed fully determines the run and a CI failure can
be replayed locally with the same command line.

It also owns the **adversarial machine gallery** — legal-but-extreme
machine models at the boundaries the validation layer permits: a
single-pipeline degenerate machine, latency-1/enqueue-1 units,
fully-busy units (``enqueue == latency``, the section-2.1 unpipelined
case), a deep pipe next to shallow ones, 4+ heterogeneous pipelines,
and a non-deterministic machine that exercises the joint
order-and-assignment search.  (Truly invalid shapes — zero latency,
``enqueue > latency`` — are rejected by :class:`PipelineDesc` itself;
the test suite pins those rejections.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.ops import Opcode
from ..machine.machine import MachineDescription
from ..machine.pipeline import PipelineDesc
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from .oracle import DEFAULT_BRUTE_CAP, OracleReport, check_block

_VARIABLES = ("a", "b", "c", "d")
_VALUE_OPS = (
    Opcode.CONST,
    Opcode.LOAD,
    Opcode.COPY,
    Opcode.NEG,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
)
_MAPPABLE_OPS = (
    Opcode.LOAD,
    Opcode.STORE,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.NEG,
    Opcode.COPY,
)


# ----------------------------------------------------------------------
# Adversarial machine gallery
# ----------------------------------------------------------------------
def adversarial_machines() -> List[MachineDescription]:
    """Legal-but-extreme machine models for the oracle to chew on."""
    every_op = {op: {1} for op in _MAPPABLE_OPS}
    return [
        # Single-pipeline degenerate case: every operation (Stores too)
        # funnels through one latency-1 unit — pure conflict scheduling.
        MachineDescription("adv-single-pipe", [PipelineDesc("alu", 1, 1, 1)], every_op),
        # The same funnel, but the unit is busy its whole latency.
        MachineDescription(
            "adv-single-busy", [PipelineDesc("alu", 1, 4, 4)], every_op
        ),
        # Fully unpipelined parallel units (enqueue == latency everywhere).
        MachineDescription(
            "adv-busy-units",
            [
                PipelineDesc("loader", 1, 2, 2),
                PipelineDesc("adder", 2, 5, 5),
                PipelineDesc("multiplier", 3, 8, 8),
            ],
            {
                Opcode.LOAD: {1},
                Opcode.STORE: {1},
                Opcode.ADD: {2},
                Opcode.SUB: {2},
                Opcode.MUL: {3},
                Opcode.DIV: {3},
            },
        ),
        # One very deep pipe among shallow ones (latency 8, enqueue 1).
        MachineDescription(
            "adv-deep-pipe",
            [
                PipelineDesc("loader", 1, 8, 1),
                PipelineDesc("alu", 2, 1, 1),
                PipelineDesc("multiplier", 3, 6, 3),
            ],
            {
                Opcode.LOAD: {1},
                Opcode.ADD: {2},
                Opcode.SUB: {2},
                Opcode.NEG: {2},
                Opcode.MUL: {3},
                Opcode.DIV: {3},
            },
        ),
        # Five heterogeneous pipelines, pipelined Stores included.
        MachineDescription(
            "adv-hetero-5",
            [
                PipelineDesc("loader", 1, 3, 2),
                PipelineDesc("storer", 2, 2, 2),
                PipelineDesc("adder", 3, 4, 1),
                PipelineDesc("multiplier", 4, 7, 3),
                PipelineDesc("mover", 5, 1, 1),
            ],
            {
                Opcode.LOAD: {1},
                Opcode.STORE: {2},
                Opcode.ADD: {3},
                Opcode.SUB: {3},
                Opcode.MUL: {4},
                Opcode.DIV: {4},
                Opcode.COPY: {5},
                Opcode.NEG: {5},
            },
        ),
        # Non-deterministic: twin adders and asymmetric multipliers, so
        # the joint order-and-assignment search has real choices.
        MachineDescription(
            "adv-multi-choice",
            [
                PipelineDesc("loader", 1, 2, 1),
                PipelineDesc("adder", 2, 3, 1),
                PipelineDesc("adder", 3, 3, 1),
                PipelineDesc("mul-fast", 4, 2, 2),
                PipelineDesc("mul-slow", 5, 6, 1),
            ],
            {
                Opcode.LOAD: {1},
                Opcode.ADD: {2, 3},
                Opcode.SUB: {2, 3},
                Opcode.MUL: {4, 5},
                Opcode.DIV: {4, 5},
            },
        ),
    ]


# ----------------------------------------------------------------------
# Seeded random generation (mirrors tests/strategies.py, sans hypothesis)
# ----------------------------------------------------------------------
def random_block(
    rng: random.Random,
    min_size: int = 1,
    max_size: int = 10,
    name: str = "fuzz",
) -> BasicBlock:
    """A random valid tuple block, like the hypothesis ``blocks`` strategy."""
    size = rng.randint(min_size, max_size)
    builder = BlockBuilder(name)
    value_refs: List[int] = []
    for _ in range(size):
        candidates: Sequence[Opcode] = (Opcode.CONST, Opcode.LOAD)
        if value_refs:
            candidates = _VALUE_OPS + (Opcode.STORE,)
        op = rng.choice(candidates)
        if op is Opcode.CONST:
            value_refs.append(builder.emit_const(rng.randint(-50, 50)))
        elif op is Opcode.LOAD:
            value_refs.append(builder.emit_load(rng.choice(_VARIABLES)))
        elif op is Opcode.STORE:
            builder.emit_store(rng.choice(_VARIABLES), rng.choice(value_refs))
        elif op in (Opcode.COPY, Opcode.NEG):
            value_refs.append(builder.emit_unary(op, rng.choice(value_refs)))
        else:
            value_refs.append(
                builder.emit_binary(
                    op, rng.choice(value_refs), rng.choice(value_refs)
                )
            )
    return builder.build()


def random_machine(rng: random.Random, max_pipelines: int = 4) -> MachineDescription:
    """A random deterministic machine, like the ``machines`` strategy."""
    n_pipes = rng.randint(1, max_pipelines)
    pipes = []
    for ident in range(1, n_pipes + 1):
        latency = rng.randint(1, 8)
        pipes.append(
            PipelineDesc(f"unit{ident}", ident, latency, rng.randint(1, latency))
        )
    op_map = {}
    for op in _MAPPABLE_OPS:
        choice = rng.randint(0, n_pipes)
        if choice:
            op_map[op] = {choice}
    return MachineDescription("fuzz-machine", pipes, op_map)


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzResult:
    """Aggregate outcome of one seeded oracle run."""

    blocks_checked: int
    checks_run: int
    failures: Tuple[OracleReport, ...] = ()
    report_dirs: Tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.blocks_checked} block/machine pairs, "
                f"{self.checks_run} checks, all consistent"
            )
        lines = [
            f"fuzz: {len(self.failures)} of {self.blocks_checked} "
            f"block/machine pairs FAILED"
        ]
        lines += [r.summary() for r in self.failures]
        return "\n".join(lines)


def run_fuzz(
    n_blocks: int,
    seed: int = 1990,
    machines: Optional[Sequence[MachineDescription]] = None,
    options: Optional[SearchOptions] = None,
    max_block_size: int = 10,
    brute_cap: int = DEFAULT_BRUTE_CAP,
    emit_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    optimality: bool = False,
) -> FuzzResult:
    """Drive the differential oracle over a seeded random population.

    Each block is paired with one machine, cycling through
    ``machines`` (default: the adversarial gallery interleaved with
    seeded random machines) so every model shape sees every block-size
    regime over a long enough run.
    """
    rng = random.Random(seed)
    gallery = list(machines) if machines is not None else adversarial_machines()
    failures: List[OracleReport] = []
    dirs: List[str] = []
    checks = 0
    for k in range(n_blocks):
        block = random_block(rng, max_size=max_block_size, name=f"fuzz-{seed}-{k}")
        if machines is None and k % (len(gallery) + 1) == len(gallery):
            machine = random_machine(rng)
        else:
            machine = gallery[k % len(gallery)]
        report = check_block(
            block,
            machine,
            options=options,
            brute_cap=brute_cap,
            telemetry=telemetry,
            emit_dir=emit_dir,
            optimality=optimality,
        )
        checks += report.checks_run
        if not report.ok:
            failures.append(report)
            if report.report_dir:
                dirs.append(report.report_dir)
    return FuzzResult(n_blocks, checks, tuple(failures), tuple(dirs))
