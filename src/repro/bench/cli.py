"""``repro-bench`` — time the four search engines, write ``BENCH_search.json``.

Examples::

    repro-bench                          # REPRO_SCALE-sized population + kernels
    repro-bench --blocks 200 --no-kernels --out /tmp/bench.json
    REPRO_SCALE=0.005 repro-bench       # CI smoke size (80 blocks)

Exit status is non-zero when the engines diverge or a schedule fails
certification; the speedup itself is reported, never asserted (see
:mod:`repro.bench.hot_core`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..ioutil import atomic_write_json
from .hot_core import run_bench


def build_parser(prog: str = "repro-bench") -> argparse.ArgumentParser:
    from ..cliutil import common_flags

    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Benchmark the fast, vector and native search engines against "
            "the reference (identical results enforced, schedules "
            "certified)."
        ),
        parents=[
            common_flags(
                ("seed", "curtail"),
                overrides={"seed": dict(help="population master seed")},
            )
        ],
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help=(
            "synthetic blocks to schedule (default: the REPRO_SCALE-sized "
            "population, 2000 at the default scale 0.125)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=25,
        help="timing repeats per kernel x machine pair",
    )
    parser.add_argument(
        "--no-kernels",
        action="store_true",
        help="skip the kernel suite (population only)",
    )
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip per-schedule certificate checks (timing only)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_search.json",
        help="output path (default: ./BENCH_search.json)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro-bench") -> int:
    args = build_parser(prog).parse_args(argv)
    try:
        payload, failures = run_bench(
            blocks=args.blocks,
            master_seed=args.seed,
            curtail=args.curtail,
            repeats=args.repeats,
            kernels=not args.no_kernels,
            certify=not args.no_certify,
        )
    except KeyboardInterrupt:
        print("\nrepro-bench: interrupted", file=sys.stderr)
        return 130
    # Atomic: a benchmark dashboard polling the file never reads a torn
    # JSON document.
    try:
        atomic_write_json(args.out, payload)
    except OSError as exc:
        print(
            f"repro-bench: error: cannot write {args.out}: {exc}",
            file=sys.stderr,
        )
        return 1

    pop = payload["suites"]["population"]
    walls = ", ".join(
        f"{name} {pop['engines'][name]['wall_seconds']:.2f}s"
        for name in pop["engines"]
    )
    ups = ", ".join(
        f"{name} {pop['speedups'][name]}x" for name in pop["speedups"]
    )
    print(
        f"population: {pop['blocks']} blocks, {pop['omega_calls']} omega "
        f"calls — {walls}; speedup over reference: {ups}; "
        f"certified {pop['certified']}"
    )
    kern = payload["suites"].get("kernels")
    if kern is not None:
        kups = ", ".join(
            f"{name} {kern['speedups'][name]}x" for name in kern["speedups"]
        )
        print(
            f"kernels: {len(kern['entries'])} kernel x machine pairs, "
            f"speedup over reference: {kups}"
        )
    print(f"wrote {args.out}")
    if failures:
        for line in failures[:20]:
            print(f"FAIL: {line}", file=sys.stderr)
        print(
            f"{len(failures)} divergence/certification failure(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
