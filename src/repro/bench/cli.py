"""``repro-bench`` — time the four search engines, write ``BENCH_search.json``.

Examples::

    repro-bench                          # REPRO_SCALE-sized population + kernels
    repro-bench --blocks 200 --no-kernels --out /tmp/bench.json
    REPRO_SCALE=0.005 repro-bench       # CI smoke size (80 blocks)

    repro-bench --service                # daemon load bench -> BENCH_service.json
    repro-bench --service --chaos "crash=0.2,hang=0.1,seed=7"

Exit status is non-zero when the engines diverge or a schedule fails
certification; the speedup itself is reported, never asserted (see
:mod:`repro.bench.hot_core`).  ``--service`` switches to the
service-level harness (:mod:`repro.bench.service`): real ``repro
serve`` daemons, concurrent clients, cold/warm p50/p99 and — under
``--chaos`` — seeded fault injection with a bit-identity gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..ioutil import atomic_write_json
from .hot_core import run_bench


def build_parser(prog: str = "repro-bench") -> argparse.ArgumentParser:
    from ..cliutil import common_flags

    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Benchmark the fast, vector and native search engines against "
            "the reference (identical results enforced, schedules "
            "certified)."
        ),
        parents=[
            common_flags(
                ("seed", "curtail"),
                overrides={"seed": dict(help="population master seed")},
            )
        ],
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help=(
            "synthetic blocks to schedule (default: the REPRO_SCALE-sized "
            "population, 2000 at the default scale 0.125)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=25,
        help="timing repeats per kernel x machine pair",
    )
    parser.add_argument(
        "--no-kernels",
        action="store_true",
        help="skip the kernel suite (population only)",
    )
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip per-schedule certificate checks (timing only)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: ./BENCH_search.json, or "
        "./BENCH_service.json with --service)",
    )
    service = parser.add_argument_group(
        "service bench (--service; see repro.bench.service)"
    )
    service.add_argument(
        "--service",
        action="store_true",
        help="benchmark the repro serve daemon instead of the engines",
    )
    service.add_argument(
        "--service-workers",
        default="1,2",
        metavar="N,N",
        help="comma-separated worker counts to bench (default 1,2)",
    )
    service.add_argument(
        "--service-clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent client threads (default 4)",
    )
    service.add_argument(
        "--service-requests",
        type=int,
        default=12,
        metavar="N",
        help="requests per pass (default 12)",
    )
    service.add_argument(
        "--service-blocks",
        type=int,
        default=3,
        metavar="N",
        help="blocks per request (default 3)",
    )
    service.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject seeded daemon worker faults and gate on bit-identity "
        "with the fault-free pass (e.g. 'crash=0.2,hang=0.1,seed=7')",
    )
    service.add_argument(
        "--service-dir",
        default=None,
        metavar="DIR",
        help="keep daemon logs/stats under DIR (default: throwaway tempdir)",
    )
    return parser


def _service_main(args, prog: str) -> int:
    from .service import run_service_bench

    try:
        worker_counts = [
            int(piece) for piece in args.service_workers.split(",") if piece.strip()
        ]
    except ValueError:
        print(
            f"{prog}: bad --service-workers {args.service_workers!r}",
            file=sys.stderr,
        )
        return 2
    out = args.out or "BENCH_service.json"
    try:
        payload, failures = run_service_bench(
            worker_counts=worker_counts,
            clients=args.service_clients,
            requests=args.service_requests,
            blocks_per_request=args.service_blocks,
            curtail=args.curtail,
            master_seed=args.seed,
            chaos=args.chaos,
            workdir=args.service_dir,
        )
    except KeyboardInterrupt:
        print(f"\n{prog}: interrupted", file=sys.stderr)
        return 130
    try:
        atomic_write_json(out, payload)
    except OSError as exc:
        print(f"{prog}: error: cannot write {out}: {exc}", file=sys.stderr)
        return 1
    for run in payload["runs"]:
        for phase in ("cold", "warm", "chaos"):
            rec = run.get(phase)
            if rec is None:
                continue
            extra = ""
            if phase == "chaos":
                extra = (
                    f", identical={rec['identical']}, "
                    f"retries={rec['worker_retries']}"
                )
            print(
                f"workers={run['workers']} {phase}: "
                f"{rec['throughput_rps']} req/s, "
                f"p50 {rec['p50_ms']}ms, p99 {rec['p99_ms']}ms, "
                f"certified {rec['certified']}/{rec['stats']['hits'] + rec['stats']['misses'] + rec['stats']['bypass']}"
                f"{extra}"
            )
    print(f"wrote {out}")
    if failures:
        for line in failures[:20]:
            print(f"FAIL: {line}", file=sys.stderr)
        print(f"{len(failures)} service bench failure(s)", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro-bench") -> int:
    args = build_parser(prog).parse_args(argv)
    if args.service:
        return _service_main(args, prog)
    if args.chaos:
        print(f"{prog}: --chaos requires --service", file=sys.stderr)
        return 2
    args.out = args.out or "BENCH_search.json"
    try:
        payload, failures = run_bench(
            blocks=args.blocks,
            master_seed=args.seed,
            curtail=args.curtail,
            repeats=args.repeats,
            kernels=not args.no_kernels,
            certify=not args.no_certify,
        )
    except KeyboardInterrupt:
        print("\nrepro-bench: interrupted", file=sys.stderr)
        return 130
    # Atomic: a benchmark dashboard polling the file never reads a torn
    # JSON document.
    try:
        atomic_write_json(args.out, payload)
    except OSError as exc:
        print(
            f"repro-bench: error: cannot write {args.out}: {exc}",
            file=sys.stderr,
        )
        return 1

    pop = payload["suites"]["population"]
    walls = ", ".join(
        f"{name} {pop['engines'][name]['wall_seconds']:.2f}s"
        for name in pop["engines"]
    )
    ups = ", ".join(
        f"{name} {pop['speedups'][name]}x" for name in pop["speedups"]
    )
    print(
        f"population: {pop['blocks']} blocks, {pop['omega_calls']} omega "
        f"calls — {walls}; speedup over reference: {ups}; "
        f"certified {pop['certified']}"
    )
    kern = payload["suites"].get("kernels")
    if kern is not None:
        kups = ", ".join(
            f"{name} {kern['speedups'][name]}x" for name in kern["speedups"]
        )
        print(
            f"kernels: {len(kern['entries'])} kernel x machine pairs, "
            f"speedup over reference: {kups}"
        )
    print(f"wrote {args.out}")
    if failures:
        for line in failures[:20]:
            print(f"FAIL: {line}", file=sys.stderr)
        print(
            f"{len(failures)} divergence/certification failure(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
