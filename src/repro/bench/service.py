"""Service-level load + chaos benchmark — ``repro bench --service``.

Where :mod:`repro.bench.hot_core` times the search engines in-process,
this harness measures the *daemon*: it spawns a real ``repro serve``
subprocess per configuration, drives concurrent clients over a seeded
synthetic workload, and records throughput and p50/p99 latency for a
cold store versus a warm one, per worker count.  The result lands in
``BENCH_service.json`` (schema ``repro-service-bench/1``; see
docs/file-formats.md §8).

Robustness is measured alongside speed, and *asserted*:

* every reply entry is certificate-verified client-side through
  :mod:`repro.verify.certificate` (shared-nothing with the daemon) —
  an uncertified, non-degraded, non-shed answer is a failure;
* SIGTERM must drain cleanly: exit 0 within the deadline with the
  ``--stats-json`` telemetry flushed;
* under ``--chaos`` the same workload runs again with seeded worker
  crash/hang/corrupt injection, and the schedule payloads must be
  bit-identical to the fault-free pass (modulo ``cache`` and
  ``worker_retries`` provenance, which legitimately depend on timing
  and faults) — the PR 4 chaos invariant, at the service layer.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.textual import format_block, parse_block
from ..machine.presets import get_machine
from ..synth.population import generate_from_params, sample_population_params
from .hot_core import bench_environment

__all__ = ["SERVICE_BENCH_SCHEMA", "run_service_bench"]

SERVICE_BENCH_SCHEMA = "repro-service-bench/1"

#: Workload blocks above this tuple count are skipped: service latency,
#: not search depth, is what this bench measures.
_MAX_BLOCK_TUPLES = 24

#: How long to wait for a spawned daemon's ready file.
_READY_TIMEOUT = 60.0


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _build_workload(
    requests: int, blocks_per_request: int, master_seed: int
) -> List[List[str]]:
    """Seeded batches of tuple text, reproducible across runs."""
    need = requests * blocks_per_request
    texts: List[str] = []
    # Over-sample: empty (folded-away) and oversized blocks are skipped.
    for params in sample_population_params(max(4 * need, 32), master_seed):
        gb = generate_from_params(params)
        if not (1 <= len(gb.block) <= _MAX_BLOCK_TUPLES):
            continue
        texts.append(format_block(gb.block))
        if len(texts) == need:
            break
    if len(texts) < need:  # pragma: no cover - spec calibration safety net
        texts.extend(texts[: need - len(texts)])
    return [
        texts[i * blocks_per_request : (i + 1) * blocks_per_request]
        for i in range(requests)
    ]


class _Daemon:
    """One real ``repro serve`` subprocess under bench control."""

    def __init__(
        self,
        workers: int,
        store: Optional[str],
        workdir: str,
        curtail: int,
        chaos: Optional[str] = None,
        hang_timeout: Optional[float] = None,
        label: str = "daemon",
    ) -> None:
        self.label = label
        self.ready_path = os.path.join(workdir, f"{label}.ready.json")
        self.stats_path = os.path.join(workdir, f"{label}.stats.json")
        self.log_path = os.path.join(workdir, f"{label}.log")
        cmd = [
            sys.executable,
            "-m",
            "repro.console",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--queue-limit",
            "256",
            "--curtail",
            str(curtail),
            "--ready-file",
            self.ready_path,
            "--stats-json",
            self.stats_path,
        ]
        cmd += ["--cache", store] if store else ["--no-cache"]
        if chaos:
            cmd += ["--chaos", chaos]
        if hang_timeout is not None:
            cmd += ["--hang-timeout", str(hang_timeout)]
        env = dict(os.environ)
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        self._log = open(self.log_path, "w", encoding="utf-8")
        self.proc = subprocess.Popen(
            cmd, stdout=self._log, stderr=subprocess.STDOUT, env=env
        )

    def wait_ready(self) -> str:
        deadline = time.monotonic() + _READY_TIMEOUT
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"{self.label}: daemon exited {self.proc.returncode} "
                    f"before becoming ready (see {self.log_path})"
                )
            try:
                with open(self.ready_path, "r", encoding="utf-8") as fh:
                    return json.load(fh)["url"]
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise RuntimeError(f"{self.label}: daemon not ready in {_READY_TIMEOUT}s")

    def terminate(self, deadline_seconds: float) -> Dict[str, Any]:
        """SIGTERM and measure the drain; kills on deadline overrun."""
        start = time.monotonic()
        self.proc.send_signal(signal.SIGTERM)
        try:
            exit_code: Optional[int] = self.proc.wait(timeout=deadline_seconds)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            exit_code = None
        self._log.close()
        return {
            "exit_code": exit_code,
            "seconds": round(time.monotonic() - start, 3),
            "stats_flushed": os.path.exists(self.stats_path),
        }

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        if not self._log.closed:
            self._log.close()


def _drive(
    url: str, batches: List[List[str]], clients: int, deadline: Optional[float]
) -> Tuple[List[Optional[Dict[str, Any]]], List[float], float, List[str]]:
    """Concurrent clients over the batches; per-request latencies."""
    from ..service.client import ServiceClient, ServiceClientError

    replies: List[Optional[Dict[str, Any]]] = [None] * len(batches)
    latencies: List[float] = [0.0] * len(batches)
    errors: List[str] = []
    next_index = [0]
    lock = threading.Lock()

    def worker() -> None:
        client = ServiceClient(url, timeout=120.0, max_retries=3)
        while True:
            with lock:
                i = next_index[0]
                if i >= len(batches):
                    return
                next_index[0] += 1
            t0 = time.perf_counter()
            try:
                reply = client.schedule(
                    batches[i], "paper-simulation", deadline=deadline
                )
            except (ServiceClientError, OSError) as exc:
                with lock:
                    errors.append(f"request {i}: {exc}")
                continue
            latencies[i] = time.perf_counter() - t0
            replies[i] = reply

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, clients))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return replies, latencies, time.perf_counter() - start, errors


def _certify_pass(
    batches: List[List[str]],
    replies: List[Optional[Dict[str, Any]]],
    machine,
) -> Tuple[Dict[str, int], List[str]]:
    """Client-side verification of every entry in every reply."""
    from ..ir.dag import DependenceDAG
    from ..sched.multi import first_pipeline_assignment
    from ..verify.certificate import check_schedule

    counts = {"certified": 0, "degraded": 0, "shed": 0, "entries": 0}
    failures: List[str] = []
    for i, reply in enumerate(replies):
        if reply is None:
            continue
        if len(reply.get("entries", [])) != len(batches[i]):
            failures.append(f"request {i}: entry count mismatch")
            continue
        for j, entry in enumerate(reply["entries"]):
            counts["entries"] += 1
            block = parse_block(batches[i][j], name=entry["name"])
            dag = DependenceDAG(block)
            cert = check_schedule(
                block,
                machine,
                entry["order"],
                entry["etas"],
                assignment=first_pipeline_assignment(dag, machine),
            )
            if not cert.ok or cert.required_nops != entry["total_nops"]:
                failures.append(
                    f"request {i} entry {j} ({entry['name']}): "
                    f"uncertified reply: {cert.summary()}"
                )
                continue
            counts["certified"] += 1
            if entry["degraded"]:
                counts["degraded"] += 1
            if entry["shed"]:
                counts["shed"] += 1
    return counts, failures


def _pass_record(
    latencies: List[float], wall: float, replies, counts: Dict[str, int]
) -> Dict[str, Any]:
    measured = sorted(lat for lat, r in zip(latencies, replies) if r is not None)
    stats = {"hits": 0, "misses": 0, "bypass": 0, "degraded": 0, "shed": 0}
    for reply in replies:
        if reply is not None:
            for key in stats:
                stats[key] += reply["stats"].get(key, 0)
    return {
        "requests": len(replies),
        "answered": len(measured),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(measured) / wall, 3) if wall > 0 else 0.0,
        "p50_ms": round(_percentile(measured, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(measured, 0.99) * 1e3, 3),
        "stats": stats,
        "certified": counts["certified"],
        "degraded": counts["degraded"],
        "shed": counts["shed"],
    }


def _strip_provenance(reply: Optional[Dict[str, Any]]) -> Any:
    """The deterministic core of a reply: payloads minus timing-dependent
    provenance (``cache`` hit-vs-miss races, ``worker_retries``)."""
    if reply is None:
        return None
    return [
        {k: v for k, v in entry.items() if k not in ("cache", "worker_retries")}
        for entry in reply["entries"]
    ]


def run_service_bench(
    worker_counts: Sequence[int] = (1, 2),
    clients: int = 4,
    requests: int = 12,
    blocks_per_request: int = 3,
    curtail: int = 2_000,
    master_seed: int = 1990,
    chaos: Optional[str] = None,
    deadline: Optional[float] = None,
    drain_deadline: float = 30.0,
    workdir: Optional[str] = None,
) -> Tuple[Dict[str, Any], List[str]]:
    """Run the full grid; returns ``(payload, failures)``.

    ``workdir`` (when given) keeps the daemon logs/stats files around —
    CI uploads them on failure; the default is a throwaway tempdir.
    """
    batches = _build_workload(requests, blocks_per_request, master_seed)
    machine = get_machine("paper-simulation")
    failures: List[str] = []
    runs: List[Dict[str, Any]] = []

    own_tmp = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-service-bench-")
    os.makedirs(workdir, exist_ok=True)

    for workers in worker_counts:
        label = f"w{workers}"
        store = os.path.join(workdir, f"{label}.store")
        daemon = _Daemon(
            workers, store, workdir, curtail, label=label
        )
        run: Dict[str, Any] = {"workers": workers}
        try:
            url = daemon.wait_ready()
            for phase in ("cold", "warm"):
                replies, lats, wall, errs = _drive(url, batches, clients, deadline)
                failures.extend(f"{label} {phase}: {e}" for e in errs)
                counts, cert_failures = _certify_pass(batches, replies, machine)
                failures.extend(f"{label} {phase}: {f}" for f in cert_failures)
                run[phase] = _pass_record(lats, wall, replies, counts)
                if phase == "cold":
                    clean_core = [_strip_provenance(r) for r in replies]
            run["drain"] = daemon.terminate(drain_deadline)
            if run["drain"]["exit_code"] != 0:
                failures.append(
                    f"{label}: SIGTERM drain exited "
                    f"{run['drain']['exit_code']} (want 0)"
                )
            if not run["drain"]["stats_flushed"]:
                failures.append(f"{label}: telemetry not flushed on drain")
        except RuntimeError as exc:
            failures.append(str(exc))
            daemon.kill()
            runs.append(run)
            continue
        finally:
            daemon.kill()

        if chaos:
            chaos_store = os.path.join(workdir, f"{label}.chaos.store")
            chaos_daemon = _Daemon(
                workers,
                chaos_store,
                workdir,
                curtail,
                chaos=chaos,
                hang_timeout=3.0,
                label=f"{label}-chaos",
            )
            try:
                url = chaos_daemon.wait_ready()
                replies, lats, wall, errs = _drive(url, batches, clients, deadline)
                failures.extend(f"{label} chaos: {e}" for e in errs)
                counts, cert_failures = _certify_pass(batches, replies, machine)
                failures.extend(f"{label} chaos: {f}" for f in cert_failures)
                chaos_core = [_strip_provenance(r) for r in replies]
                identical = chaos_core == clean_core
                if not identical:
                    diverged = [
                        i
                        for i, (a, b) in enumerate(zip(chaos_core, clean_core))
                        if a != b
                    ]
                    failures.append(
                        f"{label} chaos: schedule payloads diverged from the "
                        f"fault-free run on requests {diverged}"
                    )
                retries = sum(
                    entry.get("worker_retries", 0)
                    for reply in replies
                    if reply is not None
                    for entry in reply["entries"]
                )
                record = _pass_record(lats, wall, replies, counts)
                record["identical"] = identical
                record["worker_retries"] = retries
                run["chaos"] = record
                drain = chaos_daemon.terminate(drain_deadline)
                if drain["exit_code"] != 0:
                    failures.append(
                        f"{label} chaos: SIGTERM drain exited "
                        f"{drain['exit_code']} (want 0)"
                    )
            except RuntimeError as exc:
                failures.append(str(exc))
            finally:
                chaos_daemon.kill()
        runs.append(run)

    payload = {
        "schema": SERVICE_BENCH_SCHEMA,
        "config": {
            "worker_counts": list(worker_counts),
            "clients": clients,
            "requests": requests,
            "blocks_per_request": blocks_per_request,
            "curtail": curtail,
            "master_seed": master_seed,
            "deadline": deadline,
            "chaos": chaos or None,
            "env": bench_environment(),
        },
        "runs": runs,
        "summary": {
            "ok": not failures,
            "failures": failures,
        },
    }
    if own_tmp and not failures:
        import shutil

        shutil.rmtree(workdir, ignore_errors=True)
    return payload, failures
