"""Fast-vs-reference engine benchmark (the ``BENCH_search.json`` writer).

Measurement method
------------------
Per block the two engines run back to back (fast, then reference) and
each call is timed individually; per-engine wall time is the sum of its
own calls.  Interleaving makes the comparison robust against machine
load drifting over the run — a bias that back-to-back *batches* are
fully exposed to.  Every pair of results is compared field by field
(schedule, Ω calls, prune counts, completion flags — everything except
wall time), and every fast-engine schedule is certified through
:mod:`repro.verify.certificate`, which shares no code with the
schedulers.  A benchmark whose engines diverge is not a benchmark, so
divergence and certification failures are fatal (non-zero exit from the
CLI) while speedup itself is only reported, never asserted — perf
assertions belong to the acceptance pipeline, not to a load-sensitive
smoke job.

Suites
------
``population``
    The synthetic corpus (``REPRO_SCALE``-sized, same master seed and
    curtail as the experiments), scheduled once per engine.  This is the
    headline number: single-threaded speedup over the exact workload the
    paper's Table 7 is derived from.
``kernels``
    The realistic kernels x deterministic machine presets, repeated
    (blocks are tiny, so one run is below timer resolution).  Shows the
    speedup holds on real dependence structure, not just synthetic
    statistics.

Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "config": {"blocks": 2000, "master_seed": 1990, "curtail": 50000,
                 "repeats": 25, "python": "3.11.7"},
      "suites": {
        "population": {
          "blocks": 1964,                    # non-empty blocks scheduled
          "omega_calls": 1449520,            # identical across engines
          "engines": {
            "fast":      {"wall_seconds": 6.0, "omega_per_sec": 240000.0},
            "reference": {"wall_seconds": 14.0, "omega_per_sec": 103000.0}
          },
          "speedup": 2.33,                   # reference / fast wall time
          "identical": true,                 # every result field matched
          "certified": 1964                  # schedules certificate-checked
        },
        "kernels": {
          "entries": [
            {"kernel": "dot4", "machine": "paper_simulation",
             "omega_calls": 123, "fast_seconds": ..., "reference_seconds":
             ..., "speedup": ..., "identical": true},
            ...
          ],
          "speedup": ...                     # total ref / total fast
        }
      },
      "summary": {"speedup": 2.33, "identical": true, "failures": []}
    }
"""

from __future__ import annotations

import platform
import time
from typing import Dict, List, Optional, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import (
    deep_memory_machine,
    paper_simulation_machine,
    scalar_machine,
)
from ..sched.multi import first_pipeline_assignment
from ..sched.nop_insertion import PipelineAssignment
from ..sched.search import SearchOptions, SearchResult, schedule_block
from ..experiments.runner import DEFAULT_CURTAIL, population_size
from ..synth.kernels import KERNELS
from ..synth.population import PopulationSpec, sample_population

#: Version tag of the ``BENCH_search.json`` payload.
SCHEMA = "repro-bench/1"

#: Deterministic presets the kernel suite runs on (name -> factory).
KERNEL_MACHINES = (
    ("paper_simulation", paper_simulation_machine),
    ("deep_memory", deep_memory_machine),
    ("scalar", scalar_machine),
)


def _result_fields(r: SearchResult) -> tuple:
    """Everything two engines must agree on (all but wall time)."""
    return (
        r.best,
        r.initial,
        r.omega_calls,
        r.completed,
        r.improvements,
        r.proved_by_bound,
        r.timed_out,
        r.memo_evicted,
        dict(r.prune_counts),
    )


def _assignment_for(
    dag: DependenceDAG, machine: MachineDescription
) -> Optional[PipelineAssignment]:
    """Pin pipelines iff the machine is non-deterministic for this block."""
    if any(
        len(machine.pipelines_for(t.op)) > 1 for t in dag.block
    ):
        return first_pipeline_assignment(dag, machine)
    return None


def _certify(
    dag: DependenceDAG,
    machine: MachineDescription,
    result: SearchResult,
    assignment: Optional[PipelineAssignment],
) -> Optional[str]:
    """Certificate-check one schedule; returns a failure summary or None."""
    from ..verify.certificate import check_schedule

    if assignment is None:
        assignment = first_pipeline_assignment(dag, machine)
    cert = check_schedule(
        dag.block,
        machine,
        result.best.order,
        result.best.etas,
        assignment=assignment,
    )
    if not cert.ok:
        return cert.summary()
    if cert.required_nops != result.final_nops:
        return (
            f"certificate re-derives {cert.required_nops} NOPs, "
            f"search reports {result.final_nops}"
        )
    return None


def bench_population(
    n_blocks: int,
    master_seed: int,
    curtail: int,
    certify: bool = True,
    failures: Optional[List[str]] = None,
) -> Dict:
    """Both engines over the synthetic corpus, interleaved per block."""
    machine = paper_simulation_machine()
    opts_fast = SearchOptions(curtail=curtail, engine="fast")
    opts_ref = SearchOptions(curtail=curtail, engine="reference")
    perf = time.perf_counter
    fast_seconds = ref_seconds = 0.0
    omega = scheduled = certified = 0
    identical = True
    if failures is None:
        failures = []
    for index, gb in zip(
        range(n_blocks), sample_population(n_blocks, master_seed, PopulationSpec())
    ):
        if len(gb.block) == 0:
            continue
        dag = DependenceDAG(gb.block)
        t0 = perf()
        fast = schedule_block(dag, machine, opts_fast)
        t1 = perf()
        ref = schedule_block(dag, machine, opts_ref)
        t2 = perf()
        fast_seconds += t1 - t0
        ref_seconds += t2 - t1
        omega += fast.omega_calls
        scheduled += 1
        if _result_fields(fast) != _result_fields(ref):
            identical = False
            failures.append(
                f"population block {index}: fast != reference "
                f"(nops {fast.final_nops} vs {ref.final_nops}, "
                f"omega {fast.omega_calls} vs {ref.omega_calls})"
            )
        if certify:
            problem = _certify(dag, machine, fast, None)
            if problem is None:
                certified += 1
            else:
                failures.append(f"population block {index}: {problem}")
    return {
        "blocks": scheduled,
        "omega_calls": omega,
        "engines": {
            "fast": {
                "wall_seconds": round(fast_seconds, 4),
                "omega_per_sec": round(omega / fast_seconds, 1)
                if fast_seconds
                else None,
            },
            "reference": {
                "wall_seconds": round(ref_seconds, 4),
                "omega_per_sec": round(omega / ref_seconds, 1)
                if ref_seconds
                else None,
            },
        },
        "speedup": round(ref_seconds / fast_seconds, 3) if fast_seconds else None,
        "identical": identical,
        "certified": certified,
    }


def _kernel_dag(source: str) -> DependenceDAG:
    from ..frontend.lowering import lower_program
    from ..frontend.parser import parse_program
    from ..opt.manager import optimize_block

    block = optimize_block(lower_program(parse_program(source), "bench"))
    return DependenceDAG(block)


def bench_kernels(
    curtail: int,
    repeats: int,
    failures: Optional[List[str]] = None,
) -> Dict:
    """Both engines over kernels x machine presets, repeated and interleaved."""
    opts_fast = SearchOptions(curtail=curtail, engine="fast")
    opts_ref = SearchOptions(curtail=curtail, engine="reference")
    perf = time.perf_counter
    entries = []
    total_fast = total_ref = 0.0
    if failures is None:
        failures = []
    for kernel in KERNELS:
        dag = _kernel_dag(kernel.source)
        for machine_name, factory in KERNEL_MACHINES:
            machine = factory()
            assignment = _assignment_for(dag, machine)
            fast_seconds = ref_seconds = 0.0
            fast = ref = None
            for _ in range(repeats):
                t0 = perf()
                fast = schedule_block(
                    dag, machine, opts_fast, assignment=assignment
                )
                t1 = perf()
                ref = schedule_block(
                    dag, machine, opts_ref, assignment=assignment
                )
                t2 = perf()
                fast_seconds += t1 - t0
                ref_seconds += t2 - t1
            identical = _result_fields(fast) == _result_fields(ref)
            if not identical:
                failures.append(
                    f"kernel {kernel.name} on {machine_name}: "
                    "fast != reference"
                )
            problem = _certify(dag, machine, fast, assignment)
            if problem is not None:
                failures.append(
                    f"kernel {kernel.name} on {machine_name}: {problem}"
                )
            total_fast += fast_seconds
            total_ref += ref_seconds
            entries.append(
                {
                    "kernel": kernel.name,
                    "machine": machine_name,
                    "instructions": len(dag),
                    "omega_calls": fast.omega_calls,
                    "fast_seconds": round(fast_seconds, 5),
                    "reference_seconds": round(ref_seconds, 5),
                    "speedup": round(ref_seconds / fast_seconds, 3)
                    if fast_seconds
                    else None,
                    "identical": identical,
                }
            )
    return {
        "entries": entries,
        "speedup": round(total_ref / total_fast, 3) if total_fast else None,
    }


def run_bench(
    blocks: Optional[int] = None,
    master_seed: int = 1990,
    curtail: int = DEFAULT_CURTAIL,
    repeats: int = 25,
    kernels: bool = True,
    certify: bool = True,
) -> Tuple[Dict, List[str]]:
    """Run every suite; returns ``(payload, failures)``.

    ``failures`` lists engine divergences and certificate rejections —
    empty means the fast engine is (still) bit-for-bit the reference.
    ``blocks`` defaults to the ``REPRO_SCALE``-sized population (the
    same corpus the experiments schedule).
    """
    if blocks is None:
        blocks = population_size()
    failures: List[str] = []
    suites: Dict[str, Dict] = {
        "population": bench_population(
            blocks, master_seed, curtail, certify=certify, failures=failures
        )
    }
    if kernels:
        suites["kernels"] = bench_kernels(curtail, repeats, failures=failures)
    payload = {
        "schema": SCHEMA,
        "config": {
            "blocks": blocks,
            "master_seed": master_seed,
            "curtail": curtail,
            "repeats": repeats if kernels else None,
            "python": platform.python_version(),
        },
        "suites": suites,
        "summary": {
            "speedup": suites["population"]["speedup"],
            "identical": not failures,
            "failures": failures,
        },
    }
    return payload, failures
