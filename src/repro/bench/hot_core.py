"""Four-engine search benchmark (the ``BENCH_search.json`` writer).

Measurement method
------------------
Per block the four engines run back to back (fast, vector, native,
reference) and each call is timed individually; per-engine wall time is
the sum of its own calls.  Interleaving makes the comparison robust
against machine load drifting over the run — a bias that back-to-back
*batches* are fully exposed to.  Every result quadruple is compared
field by field (schedule, Ω calls, prune counts, completion flags —
everything except wall time), and every native-engine schedule is
certified through :mod:`repro.verify.certificate`, which shares no code
with the schedulers.  A benchmark whose engines diverge is not a
benchmark, so divergence and certification failures are fatal (non-zero
exit from the CLI) while speedup itself is only reported, never
asserted — perf assertions belong to the acceptance pipeline, not to a
load-sensitive smoke job.

When NumPy is missing the "vector" engine transparently degrades to a
second "fast" run (one warning line on stderr), and when no C compiler
is found the "native" engine does the same; the payload still carries
both columns so downstream trend tooling keeps a stable shape, and
``config.env.numpy`` / ``config.env.cc`` are ``null`` so the run is
honest about what was measured.

Suites
------
``population``
    The synthetic corpus (``REPRO_SCALE``-sized, same master seed and
    curtail as the experiments), scheduled once per engine.  This is the
    headline number: single-threaded speedup over the exact workload the
    paper's Table 7 is derived from.
``kernels``
    The realistic kernels x deterministic machine presets, repeated
    (blocks are tiny, so one run is below timer resolution).  Shows the
    speedup holds on real dependence structure, not just synthetic
    statistics.

Schema (``repro-bench/3``)::

    {
      "schema": "repro-bench/3",
      "config": {
        "blocks": 2000, "master_seed": 1990, "curtail": 50000,
        "repeats": 25,
        "env": {"python": "3.11.7", "numpy": "2.4.6",
                "cc": {"path": "/usr/bin/cc", "version": "cc ... 12.2.0"},
                "platform": "Linux-6.8-x86_64", "cpu_count": 8}
      },
      "suites": {
        "population": {
          "blocks": 1964,                    # non-empty blocks scheduled
          "omega_calls": 1449520,            # identical across engines
          "engines": {
            "fast":      {"wall_seconds": 6.0, "omega_per_sec": 240000.0},
            "vector":    {"wall_seconds": 5.4, "omega_per_sec": 268000.0},
            "native":    {"wall_seconds": 1.6, "omega_per_sec": 905000.0},
            "reference": {"wall_seconds": 14.0, "omega_per_sec": 103000.0}
          },
          "speedups": {"fast": 2.33, "vector": 2.59, "native": 8.75},
          "identical": true,                 # every result field matched
          "certified": 1964                  # schedules certificate-checked
        },
        "kernels": {
          "entries": [
            {"kernel": "dot4", "machine": "paper_simulation",
             "omega_calls": 123,
             "seconds": {"fast": ..., "vector": ..., "native": ...,
                         "reference": ...},
             "speedups": {"fast": ..., "vector": ..., "native": ...},
             "identical": true},
            ...
          ],
          "speedups": {...}                  # total ref / total engine
        }
      },
      "summary": {"speedups": {"fast": 2.33, "vector": 2.59,
                               "native": 8.75},
                  "identical": true, "failures": []}
    }

Schema history: ``repro-bench/1`` had two engines, a scalar ``speedup``
field (reference/fast) and only ``config.python``; ``/2`` added the
vector column, per-engine ``speedups`` and the ``config.env`` record;
``/3`` adds the native column and ``config.env.cc`` (the discovered C
compiler, or ``null`` when the native engine ran its fallback).
"""

from __future__ import annotations

import os
import platform
import time
from typing import Dict, List, Optional, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import (
    deep_memory_machine,
    paper_simulation_machine,
    scalar_machine,
)
from ..sched.multi import first_pipeline_assignment
from ..sched.nop_insertion import PipelineAssignment
from ..sched.search import SearchOptions, SearchResult, schedule_block
from ..experiments.runner import DEFAULT_CURTAIL, population_size
from ..synth.kernels import KERNELS
from ..synth.population import PopulationSpec, sample_population

#: Version tag of the ``BENCH_search.json`` payload.
SCHEMA = "repro-bench/3"

#: Engines timed per block, in run order; "fast" is the comparison base
#: for identity checks, "reference" the base for speedups.
ENGINES = ("fast", "vector", "native", "reference")

#: Engines compared field-by-field against "fast" per block.
_TWINS = tuple(name for name in ENGINES if name != "fast")

#: Deterministic presets the kernel suite runs on (name -> factory).
KERNEL_MACHINES = (
    ("paper_simulation", paper_simulation_machine),
    ("deep_memory", deep_memory_machine),
    ("scalar", scalar_machine),
)


def bench_environment() -> Dict:
    """The ``config.env`` record: everything a timing depends on."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    from ..native import compiler_info

    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cc": compiler_info(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def _result_fields(r: SearchResult) -> tuple:
    """Everything two engines must agree on (all but wall time)."""
    return (
        r.best,
        r.initial,
        r.omega_calls,
        r.completed,
        r.improvements,
        r.proved_by_bound,
        r.timed_out,
        r.memo_evicted,
        dict(r.prune_counts),
    )


def _assignment_for(
    dag: DependenceDAG, machine: MachineDescription
) -> Optional[PipelineAssignment]:
    """Pin pipelines iff the machine is non-deterministic for this block."""
    if any(
        len(machine.pipelines_for(t.op)) > 1 for t in dag.block
    ):
        return first_pipeline_assignment(dag, machine)
    return None


def _certify(
    dag: DependenceDAG,
    machine: MachineDescription,
    result: SearchResult,
    assignment: Optional[PipelineAssignment],
) -> Optional[str]:
    """Certificate-check one schedule; returns a failure summary or None."""
    from ..verify.certificate import check_schedule

    if assignment is None:
        assignment = first_pipeline_assignment(dag, machine)
    cert = check_schedule(
        dag.block,
        machine,
        result.best.order,
        result.best.etas,
        assignment=assignment,
    )
    if not cert.ok:
        return cert.summary()
    if cert.required_nops != result.final_nops:
        return (
            f"certificate re-derives {cert.required_nops} NOPs, "
            f"search reports {result.final_nops}"
        )
    return None


def _engine_options(curtail: int) -> Dict[str, SearchOptions]:
    return {
        name: SearchOptions(curtail=curtail, engine=name) for name in ENGINES
    }


def _speedups(seconds: Dict[str, float]) -> Dict[str, Optional[float]]:
    """Per-engine speedup over the reference engine's wall time."""
    ref = seconds["reference"]
    return {
        name: round(ref / seconds[name], 3) if seconds[name] else None
        for name in ENGINES
        if name != "reference"
    }


def bench_population(
    n_blocks: int,
    master_seed: int,
    curtail: int,
    certify: bool = True,
    failures: Optional[List[str]] = None,
) -> Dict:
    """All four engines over the synthetic corpus, interleaved per block."""
    machine = paper_simulation_machine()
    options = _engine_options(curtail)
    perf = time.perf_counter
    seconds = {name: 0.0 for name in ENGINES}
    omega = scheduled = certified = 0
    identical = True
    if failures is None:
        failures = []
    for index, gb in zip(
        range(n_blocks), sample_population(n_blocks, master_seed, PopulationSpec())
    ):
        if len(gb.block) == 0:
            continue
        dag = DependenceDAG(gb.block)
        results: Dict[str, SearchResult] = {}
        for name in ENGINES:
            t0 = perf()
            results[name] = schedule_block(dag, machine, options[name])
            seconds[name] += perf() - t0
        fast = results["fast"]
        omega += fast.omega_calls
        scheduled += 1
        base = _result_fields(fast)
        for name in _TWINS:
            if _result_fields(results[name]) != base:
                identical = False
                failures.append(
                    f"population block {index}: fast != {name} "
                    f"(nops {fast.final_nops} vs {results[name].final_nops}, "
                    f"omega {fast.omega_calls} vs "
                    f"{results[name].omega_calls})"
                )
        if certify:
            problem = _certify(dag, machine, results["native"], None)
            if problem is None:
                certified += 1
            else:
                failures.append(f"population block {index}: {problem}")
    return {
        "blocks": scheduled,
        "omega_calls": omega,
        "engines": {
            name: {
                "wall_seconds": round(seconds[name], 4),
                "omega_per_sec": round(omega / seconds[name], 1)
                if seconds[name]
                else None,
            }
            for name in ENGINES
        },
        "speedups": _speedups(seconds),
        "identical": identical,
        "certified": certified,
    }


def _kernel_dag(source: str) -> DependenceDAG:
    from ..frontend.lowering import lower_program
    from ..frontend.parser import parse_program
    from ..opt.manager import optimize_block

    block = optimize_block(lower_program(parse_program(source), "bench"))
    return DependenceDAG(block)


def bench_kernels(
    curtail: int,
    repeats: int,
    failures: Optional[List[str]] = None,
) -> Dict:
    """All engines over kernels x machine presets, repeated and interleaved."""
    options = _engine_options(curtail)
    perf = time.perf_counter
    entries = []
    totals = {name: 0.0 for name in ENGINES}
    if failures is None:
        failures = []
    for kernel in KERNELS:
        dag = _kernel_dag(kernel.source)
        for machine_name, factory in KERNEL_MACHINES:
            machine = factory()
            assignment = _assignment_for(dag, machine)
            seconds = {name: 0.0 for name in ENGINES}
            results: Dict[str, SearchResult] = {}
            for _ in range(repeats):
                for name in ENGINES:
                    t0 = perf()
                    results[name] = schedule_block(
                        dag, machine, options[name], assignment=assignment
                    )
                    seconds[name] += perf() - t0
            base = _result_fields(results["fast"])
            identical = all(
                _result_fields(results[name]) == base for name in _TWINS
            )
            if not identical:
                failures.append(
                    f"kernel {kernel.name} on {machine_name}: "
                    "engines diverge"
                )
            problem = _certify(dag, machine, results["native"], assignment)
            if problem is not None:
                failures.append(
                    f"kernel {kernel.name} on {machine_name}: {problem}"
                )
            for name in ENGINES:
                totals[name] += seconds[name]
            entries.append(
                {
                    "kernel": kernel.name,
                    "machine": machine_name,
                    "instructions": len(dag),
                    "omega_calls": results["fast"].omega_calls,
                    "seconds": {
                        name: round(seconds[name], 5) for name in ENGINES
                    },
                    "speedups": _speedups(seconds),
                    "identical": identical,
                }
            )
    return {
        "entries": entries,
        "speedups": _speedups(totals),
    }


def run_bench(
    blocks: Optional[int] = None,
    master_seed: int = 1990,
    curtail: int = DEFAULT_CURTAIL,
    repeats: int = 25,
    kernels: bool = True,
    certify: bool = True,
) -> Tuple[Dict, List[str]]:
    """Run every suite; returns ``(payload, failures)``.

    ``failures`` lists engine divergences and certificate rejections —
    empty means the fast, vector and native engines are (still)
    bit-for-bit the reference.  ``blocks`` defaults to the ``REPRO_SCALE``-sized
    population (the same corpus the experiments schedule).
    """
    if blocks is None:
        blocks = population_size()
    failures: List[str] = []
    suites: Dict[str, Dict] = {
        "population": bench_population(
            blocks, master_seed, curtail, certify=certify, failures=failures
        )
    }
    if kernels:
        suites["kernels"] = bench_kernels(curtail, repeats, failures=failures)
    payload = {
        "schema": SCHEMA,
        "config": {
            "blocks": blocks,
            "master_seed": master_seed,
            "curtail": curtail,
            "repeats": repeats if kernels else None,
            "env": bench_environment(),
        },
        "suites": suites,
        "summary": {
            "speedups": suites["population"]["speedups"],
            "identical": not failures,
            "failures": failures,
        },
    }
    return payload, failures
