"""Tracked engine benchmarks — the perf trajectory's data points.

The ROADMAP's north star is "as fast as the hardware allows"; this
package is how the repository knows whether it is getting there.  It
times the two search engines (the flattened array core in
:mod:`repro.sched.core` against the recursive reference in
:mod:`repro.sched.search`) over the synthetic population and the
realistic kernels, asserts their results are bit-for-bit identical,
certifies the fast engine's schedules through the independent checker in
:mod:`repro.verify.certificate`, and writes ``BENCH_search.json`` so the
numbers are versioned alongside the code that produced them.

Entry points: the ``repro-bench`` console script (:mod:`repro.bench.cli`)
and ``benchmarks/bench_hot_core.py`` (the pytest-benchmark view of the
same measurement).
"""

from .hot_core import SCHEMA, run_bench

__all__ = ["SCHEMA", "run_bench"]
