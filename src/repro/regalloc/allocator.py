"""Post-scheduling register assignment (section 3.4).

The paper's central structural point: scheduling happens on tuple code
*without* register names, and only afterwards "are values assigned to
specific registers".  Because spill code was created up front, this stage
is a straightforward linear scan over the *scheduled* order:

* at each instruction, the registers of operands seeing their last use
  are released first (an instruction's destination may reuse an operand's
  register — the operand is read before the result is written);
* then the result value is assigned the lowest-numbered free register.

If the machine runs out of registers the allocator raises — it never
inserts spills, because doing so "could invalidate the optimality of the
schedule".  Run :func:`repro.regalloc.spill.insert_spill_code` before
scheduling instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from .liveness import live_ranges


class AllocationError(RuntimeError):
    """Not enough registers for a spill-free allocation of this order."""


@dataclass(frozen=True)
class RegisterAllocation:
    """Mapping of value-producing tuples to register numbers (0-based)."""

    order: Tuple[int, ...]
    registers: Dict[int, int]  # tuple ident -> register number
    num_registers_used: int

    def register_of(self, ident: int) -> int:
        return self.registers[ident]


def allocate_registers(
    block: BasicBlock,
    order: Optional[Sequence[int]] = None,
    num_registers: Optional[int] = None,
) -> RegisterAllocation:
    """Linear-scan register assignment over a scheduled order.

    Parameters
    ----------
    num_registers:
        Size of the register file; ``None`` means "as many as needed"
        (the paper's simulations "simply assumed that there were always
        enough registers").
    """
    if order is None:
        order = block.idents
    order = tuple(order)
    ranges = live_ranges(block, order)

    free: List[int] = []  # recycled register numbers (min-heap by sort)
    next_fresh = 0
    assigned: Dict[int, int] = {}
    highest = 0

    import heapq

    for pos, ident in enumerate(order):
        t = block.by_ident(ident)
        # Release operands whose last use is here (before defining).
        for ref in set(t.value_refs):
            r = ranges[ref]
            if r.end == pos and ref in assigned:
                heapq.heappush(free, assigned[ref])
        if not t.op.produces_value:
            continue
        if free:
            reg = heapq.heappop(free)
        else:
            reg = next_fresh
            next_fresh += 1
        if num_registers is not None and reg >= num_registers:
            raise AllocationError(
                f"order needs more than {num_registers} registers at "
                f"tuple {ident} (position {pos}); run the spill pre-pass "
                "before scheduling"
            )
        assigned[ident] = reg
        highest = max(highest, reg + 1)
        if ranges[ident].is_dead:
            # Unused result: the register is reusable immediately after
            # this instruction writes it.
            heapq.heappush(free, reg)

    return RegisterAllocation(order, assigned, highest)
