"""Pre-scheduling spill-code creation (section 3.1).

*"Since values are not allocated to particular registers, the concept is
simply that if there are more live values than registers in the target
machine, then all values beyond the number of registers will be
explicitly re-loaded.  In other words, we insure that when registers are
actually allocated later, there will be no need to introduce new spill
instructions, since these could invalidate the optimality of the
schedule."*

The pass walks the block in program order simulating a register file of
``num_registers`` values.  When a definition would exceed the budget it
evicts the in-register value whose next use is farthest away (Belady).
Evicted values are recovered at their next use by re-loading:

* a ``Const`` is rematerialized (a fresh ``Const`` tuple) — no memory
  traffic at all;
* a value produced by a ``Load`` of a variable that is never stored
  again in the block is evicted for free — later uses re-load the
  variable;
* any other value is first stored to a fresh compiler temporary
  (``.spill<N>``, a name the source language cannot produce) and later
  uses re-load from there.

After this pass the block's program-order register pressure is at most
``num_registers`` and semantics are preserved (both property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.ops import Opcode
from ..ir.tuples import ConstOperand

#: Prefix of compiler-generated spill temporaries.  The front-end lexer
#: rejects ``.`` in identifiers, so these can never collide with source
#: variables.
SPILL_PREFIX = ".spill"

_INFINITY = float("inf")


@dataclass(frozen=True)
class SpillReport:
    """Outcome of spill-code creation."""

    block: BasicBlock
    spill_stores: int  # Store tuples inserted
    reloads: int  # Load/Const tuples inserted to recover evicted values

    @property
    def spilled(self) -> bool:
        return self.spill_stores > 0 or self.reloads > 0


def insert_spill_code(block: BasicBlock, num_registers: int) -> SpillReport:
    """Rewrite ``block`` so program-order pressure fits ``num_registers``.

    Requires ``num_registers >= 3`` (a binary operation and its result
    keep three values live simultaneously).
    """
    if num_registers < 3:
        raise ValueError("spill insertion needs at least 3 registers")

    n = len(block)
    # Use positions per original value, for Belady eviction decisions.
    uses: Dict[int, List[int]] = {t.ident: [] for t in block}
    # Position of the last Store to each variable (for free-home safety).
    last_store_pos: Dict[str, int] = {}
    for pos, t in enumerate(block):
        for ref in t.value_refs:
            uses[ref].append(pos)
        if t.op is Opcode.STORE:
            last_store_pos[t.variable] = pos

    builder = BlockBuilder(block.name)
    # Original value ident -> its current new ref, while "in a register".
    resident: Dict[int, int] = {}
    # Original value ident -> how to recover it after eviction.
    #   ("var", name)   re-load the variable
    #   ("const", c)    rematerialize the literal
    recover: Dict[int, tuple] = {}
    spill_stores = 0
    reloads = 0
    temp_counter = 0

    def next_use_after(ident: int, pos: int) -> float:
        for use in uses[ident]:
            if use > pos:
                return use
        return _INFINITY

    def free_home(ident: int) -> bool:
        """Can ``ident`` be recovered without storing it first?"""
        orig = block.by_ident(ident)
        if orig.op is Opcode.CONST:
            return True
        if orig.op is Opcode.LOAD:
            # Safe only if the variable is never stored after the load
            # itself — otherwise a re-load could observe the newer value.
            return last_store_pos.get(orig.variable, -1) < block.position_of(
                ident
            )
        return False

    def note_recovery(ident: int, new_ref: int, pos: int) -> None:
        nonlocal spill_stores, temp_counter
        if ident in recover:
            return  # already has a home from an earlier eviction
        orig = block.by_ident(ident)
        if orig.op is Opcode.CONST:
            assert isinstance(orig.alpha, ConstOperand)
            recover[ident] = ("const", orig.alpha.value)
        elif orig.op is Opcode.LOAD and free_home(ident):
            recover[ident] = ("var", orig.variable)
        else:
            temp_counter += 1
            temp = f"{SPILL_PREFIX}{temp_counter}"
            builder.emit_store(temp, new_ref)
            recover[ident] = ("var", temp)
            spill_stores += 1

    def evict_until(pos: int, budget: int, protected: Set[int]) -> None:
        while len(resident) >= budget:
            victims = [v for v in resident if v not in protected]
            if not victims:  # pragma: no cover - num_registers >= 3 guards
                raise RuntimeError("all resident values pinned by one tuple")
            victim = max(victims, key=lambda v: next_use_after(v, pos))
            new_ref = resident.pop(victim)
            if next_use_after(victim, pos) is not _INFINITY:
                note_recovery(victim, new_ref, pos)

    def materialize(ident: int, pos: int, protected: Set[int]) -> int:
        """New ref holding original value ``ident``, recovering if evicted."""
        nonlocal reloads
        if ident in resident:
            return resident[ident]
        evict_until(pos, num_registers, protected)
        kind, payload = recover[ident]
        if kind == "const":
            ref = builder.emit_const(payload)
        else:
            ref = builder.emit_load(payload)
        reloads += 1
        resident[ident] = ref
        return ref

    for pos, t in enumerate(block):
        op = t.op
        refs = t.value_refs
        protected = set(refs)
        new_refs = [materialize(r, pos, protected) for r in refs]
        # Operands seeing their last use release their slot now (an
        # instruction reads operands before writing its result).
        for r in refs:
            if next_use_after(r, pos) is _INFINITY:
                resident.pop(r, None)
        if op is Opcode.STORE:
            builder.emit_store(t.variable, new_refs[0])
            continue
        evict_until(pos, num_registers, protected)
        if op is Opcode.CONST:
            assert isinstance(t.alpha, ConstOperand)
            new_ident = builder.emit_const(t.alpha.value)
        elif op is Opcode.LOAD:
            new_ident = builder.emit_load(t.variable)
        elif op in (Opcode.COPY, Opcode.NEG):
            new_ident = builder.emit_unary(op, new_refs[0])
        else:
            new_ident = builder.emit_binary(op, new_refs[0], new_refs[1])
        if next_use_after(t.ident, pos) is not _INFINITY:
            resident[t.ident] = new_ident

    return SpillReport(builder.build(), spill_stores, reloads)
