"""Register allocation: liveness, post-scheduling linear scan, and the
pre-scheduling spill pass (sections 3.1 and 3.4)."""

from .allocator import AllocationError, RegisterAllocation, allocate_registers
from .liveness import LiveRange, live_ranges, max_live, pressure_profile
from .spill import SPILL_PREFIX, SpillReport, insert_spill_code

__all__ = [
    "LiveRange",
    "live_ranges",
    "max_live",
    "pressure_profile",
    "AllocationError",
    "RegisterAllocation",
    "allocate_registers",
    "SPILL_PREFIX",
    "SpillReport",
    "insert_spill_code",
]
