"""Live ranges and register pressure over a (scheduled) tuple order.

Values are the results of value-producing tuples.  In a single basic
block a value is live from the position where it is defined to the
position of its last use; the *register pressure* at a position is the
number of values defined at or before it whose last use lies strictly
after it, plus the value defined there.

``max_live`` over the order is exactly the number of registers a
spill-free allocation needs (section 3.1: spill code is created up front
precisely so that post-scheduling allocation never introduces new
spills).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.block import BasicBlock


@dataclass(frozen=True, slots=True)
class LiveRange:
    """Half-open-ended live range of one value, in schedule positions."""

    ident: int
    start: int  # position where the value is defined
    end: int  # position of the last use (== start when unused)

    @property
    def is_dead(self) -> bool:
        """True when nothing ever consumes the value."""
        return self.end == self.start

    def overlaps(self, other: "LiveRange") -> bool:
        """Whether the two values need distinct registers."""
        if self.is_dead or other.is_dead:
            return False
        return self.start < other.end and other.start < self.end


def live_ranges(
    block: BasicBlock, order: Optional[Sequence[int]] = None
) -> Dict[int, LiveRange]:
    """Live range of every value-producing tuple under ``order``."""
    if order is None:
        order = block.idents
    position = {ident: pos for pos, ident in enumerate(order)}
    last_use: Dict[int, int] = {}
    for ident in order:
        t = block.by_ident(ident)
        for ref in t.value_refs:
            pos = position[ident]
            if last_use.get(ref, -1) < pos:
                last_use[ref] = pos
    out: Dict[int, LiveRange] = {}
    for ident in order:
        t = block.by_ident(ident)
        if not t.op.produces_value:
            continue
        start = position[ident]
        out[ident] = LiveRange(ident, start, last_use.get(ident, start))
    return out


def pressure_profile(
    block: BasicBlock, order: Optional[Sequence[int]] = None
) -> Tuple[int, ...]:
    """Register pressure after each schedule position.

    ``profile[p]`` counts values live *across* the boundary following
    position ``p`` (defined at or before, last-used after), plus values
    defined at ``p`` itself even if never used (they still occupy the
    destination register for the instant of definition).
    """
    if order is None:
        order = block.idents
    ranges = live_ranges(block, order)
    profile: List[int] = []
    for pos in range(len(order)):
        count = 0
        for r in ranges.values():
            if r.start == pos or (r.start <= pos < r.end):
                count += 1
        profile.append(count)
    return tuple(profile)


def max_live(block: BasicBlock, order: Optional[Sequence[int]] = None) -> int:
    """The minimum number of registers for a spill-free allocation."""
    profile = pressure_profile(block, order)
    return max(profile, default=0)
