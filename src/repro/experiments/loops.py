"""Experiment L — modulo software pipelining on the loop kernels.

The straight-line experiments measure one basic block; this table
measures throughput across iterations.  For every kernel in
``repro.synth.loops`` the modulo scheduler's initiation interval is
compared against the steady state the plain list schedule settles into,
with the MII decomposition (resource vs recurrence) alongside so the
bottleneck is visible.  Every kernel is compiled through
:func:`repro.driver.compile_loop`, so each row's schedule has already
passed the independent steady-state certificate and the overlapped
stream was executed against sequential loop semantics before being
reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..driver import compile_loop
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..synth.loops import LOOP_KERNELS
from .report import format_table, to_csv


@dataclass(frozen=True)
class LoopRow:
    kernel: str
    instructions: int
    searched_ii: int
    list_ii: int
    res_mii: int
    rec_mii: int
    stages: int
    proved: bool

    @property
    def speedup(self) -> float:
        return self.list_ii / self.searched_ii

    @property
    def bottleneck(self) -> str:
        return "rec" if self.rec_mii > self.res_mii else "res"


@dataclass(frozen=True)
class LoopsResult:
    rows: List[LoopRow]
    machine_name: str

    def render(self) -> str:
        table = format_table(
            [
                "kernel",
                "instrs",
                "II",
                "list II",
                "MII (res/rec)",
                "stages",
                "speedup",
                "proved",
            ],
            [
                (
                    r.kernel,
                    r.instructions,
                    r.searched_ii,
                    r.list_ii,
                    f"{max(r.res_mii, r.rec_mii)} "
                    f"({r.res_mii}/{r.rec_mii}, {r.bottleneck}-bound)",
                    r.stages,
                    f"{r.speedup:.2f}x",
                    "yes" if r.proved else "no",
                )
                for r in self.rows
            ],
            title=(
                f"L — modulo-scheduled loop kernels on {self.machine_name} "
                "(certified)"
            ),
        )
        wins = [r for r in self.rows if r.searched_ii < r.list_ii]
        best = max(self.rows, key=lambda r: r.speedup)
        return (
            f"{table}\n"
            f"{len(wins)} of {len(self.rows)} kernels beat the list "
            f"steady state; best is {best.kernel} at {best.speedup:.2f}x "
            f"(II {best.searched_ii} vs {best.list_ii}) — cross-iteration "
            "overlap recovers throughput the acyclic scheduler cannot see"
        )

    def csv(self) -> str:
        return to_csv(
            [
                "kernel",
                "instructions",
                "searched_ii",
                "list_ii",
                "res_mii",
                "rec_mii",
                "stages",
                "speedup",
                "proved",
            ],
            [
                (
                    r.kernel,
                    r.instructions,
                    r.searched_ii,
                    r.list_ii,
                    r.res_mii,
                    r.rec_mii,
                    r.stages,
                    round(r.speedup, 3),
                    int(r.proved),
                )
                for r in self.rows
            ],
        )


def run(
    machine: Optional[MachineDescription] = None,
    kernels: tuple = LOOP_KERNELS,
) -> LoopsResult:
    if machine is None:
        machine = paper_simulation_machine()
    rows: List[LoopRow] = []
    for kernel in kernels:
        compiled = compile_loop(
            kernel.source,
            machine,
            verify_memory=kernel.memory,
            name=kernel.name,
        )
        result = compiled.result
        rows.append(
            LoopRow(
                kernel=kernel.name,
                instructions=len(compiled.loop.body),
                searched_ii=result.ii,
                list_ii=result.list_ii,
                res_mii=result.res_mii,
                rec_mii=result.rec_mii,
                stages=result.stage_count,
                proved=result.completed,
            )
        )
    return LoopsResult(rows, machine.name)
