"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's tables and figures (plus the ablations and
extensions) and prints them as text; ``--csv DIR`` additionally writes
machine-readable CSVs.

Examples::

    repro-experiments all
    repro-experiments table7 --blocks 2000
    repro-experiments table1 fig4 --csv results/
    repro-experiments table7 --workers 8 --stats-json stats.json
    REPRO_SCALE=1 repro-experiments all --workers 0   # full run, all cores

Fault tolerance (see docs/architecture.md, "Fault tolerance")::

    repro-experiments table7 --journal run.journal     # checkpoint as you go
    repro-experiments table7 --resume run.journal      # continue after a crash
    repro-experiments table7 --run-timeout 600         # degrade, don't overrun
    repro-experiments table7 --workers 4 --chaos crash=0.1,hang=0.05,seed=7
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..ioutil import atomic_write_text
from ..resilience.budget import BudgetManager
from ..resilience.faults import FaultPlan
from ..resilience.journal import Journal, JournalError
from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from . import (
    ablation,
    extension,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    kernels,
    loops,
    machines,
    prepass,
    stalls,
    table1,
    table7,
)
from .parallel import run_population_parallel
from .runner import population_size

#: Experiments that share the single population run.
POPULATION_EXPERIMENTS = ("table7", "fig1", "fig4", "fig5", "fig6", "fig7")
ALL_EXPERIMENTS = ("table1",) + POPULATION_EXPERIMENTS + (
    "ablation-a1",
    "ablation-a2",
    "ablation-a3",
    "kernels",
    "loops",
    "stalls",
    "machines",
    "extension-x1",
    "extension-x2",
)


def _write_csv(directory: str, name: str, text: str) -> None:
    os.makedirs(directory, exist_ok=True)
    atomic_write_text(os.path.join(directory, f"{name}.csv"), text)


def build_parser(prog: str = "repro-experiments") -> argparse.ArgumentParser:
    from ..cliutil import common_flags

    parser = argparse.ArgumentParser(
        prog=prog,
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[
            common_flags(
                (
                    "curtail",
                    "seed",
                    "engine",
                    "verify",
                    "stats-json",
                    "block-timeout",
                    "run-timeout",
                    "run-omega-budget",
                ),
                overrides={
                    "stats-json": dict(
                        help="write aggregated search telemetry (prune "
                        "counters, phase times) to PATH as JSON"
                    ),
                },
            )
        ],
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"which experiments to run: all, {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help="population size for the table7/figure experiments "
        "(default: 16000 * REPRO_SCALE)",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also write CSVs to DIR"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="schedule the population across N worker processes "
        "(0 = all cores; default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="checkpoint the population run: append each completed block "
        "record to PATH (fsync'd) so an interrupted run can --resume",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume the population run from a checkpoint journal: "
        "journaled blocks are merged back, only unfinished ones are "
        "scheduled; new records keep appending to PATH",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="canonical-form result store (repro.service): population "
        "blocks whose problem was already solved — this run, an earlier "
        "run, or the scheduling daemon sharing DIR — are served from the "
        "cache, bit-for-bit identical to a cold search",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection for the parallel engine, e.g. "
        "'crash=0.1,hang=0.05,seed=7' (testing the supervisor; see "
        "repro.resilience.faults)",
    )
    return parser


def main(argv: Optional[List[str]] = None, prog: str = "repro-experiments") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.stats_json:
        # Fail now, not after a possibly hours-long population run.
        try:
            with open(args.stats_json, "a"):
                pass
        except OSError as exc:
            parser.error(f"cannot write --stats-json {args.stats_json}: {exc}")

    if args.workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    elif args.workers == 0:
        workers = os.cpu_count() or 1
    else:
        workers = args.workers
    if workers < 1:
        parser.error("--workers must be >= 0")

    if args.journal and args.resume and args.journal != args.resume:
        parser.error("--journal and --resume must name the same file")
    fault_plan = None
    if args.chaos:
        try:
            fault_plan = FaultPlan.parse(args.chaos)
        except ValueError as exc:
            parser.error(str(exc))
    budget = None
    if args.run_timeout is not None or args.run_omega_budget is not None:
        try:
            budget = BudgetManager(
                run_wall_clock=args.run_timeout,
                run_omega_cap=args.run_omega_budget,
            )
        except ValueError as exc:
            parser.error(str(exc))
    cache = None
    if args.cache:
        from ..service.cache import ScheduleCache

        cache = ScheduleCache(path=args.cache)

    telemetry = Telemetry()
    results = {}
    records = None
    journal = None
    journal_path = args.resume or args.journal

    def write_stats(partial: bool = False) -> None:
        if not args.stats_json:
            return
        telemetry.write_json(
            args.stats_json,
            meta={
                "experiments": wanted,
                "blocks": len(records) if records is not None else 0,
                "curtail": args.curtail,
                "engine": args.engine,
                "master_seed": args.seed,
                "workers": workers,
                "block_timeout": args.block_timeout,
                "verify": args.verify,
                "partial": partial,
            },
        )
        state = "partial telemetry" if partial else "telemetry"
        print(f"[stats] {state} written to {args.stats_json}")

    try:
        if any(w in POPULATION_EXPERIMENTS for w in wanted):
            n_blocks = (
                args.blocks if args.blocks is not None else population_size()
            )
            done = None
            if journal_path:
                # The fingerprint pins everything that shapes the records;
                # a journal from differently-parameterized runs is rejected.
                config = {
                    "blocks": n_blocks,
                    "curtail": args.curtail,
                    "master_seed": args.seed,
                    "engine": args.engine,
                    "verify": args.verify,
                    "block_timeout": args.block_timeout,
                }
                if args.resume:
                    journal, done = Journal.resume(journal_path, config)
                    if done:
                        print(
                            f"[population] resuming: {len(done):,} of "
                            f"{n_blocks:,} blocks recovered from "
                            f"{journal_path}"
                        )
                else:
                    journal = Journal.create(journal_path, config)
            verified = ", verified" if args.verify else ""
            print(
                f"[population] scheduling {n_blocks:,} synthetic blocks "
                f"(lambda={args.curtail:,}, seed={args.seed}, "
                f"workers={workers}{verified}) ...",
                flush=True,
            )
            start = time.perf_counter()
            with telemetry.phase("population"):
                records = run_population_parallel(
                    n_blocks,
                    args.curtail,
                    args.seed,
                    options=SearchOptions(
                        curtail=args.curtail, engine=args.engine
                    ),
                    workers=workers,
                    block_timeout=args.block_timeout,
                    telemetry=telemetry,
                    verify=args.verify,
                    done=done,
                    on_records=None if journal is None else journal.append,
                    budget=budget,
                    fault_plan=fault_plan,
                    cache=cache,
                )
            print(f"[population] done in {time.perf_counter() - start:.1f}s", end="")
            if cache is not None:
                hits = telemetry.counters.get("service.cache.hits", 0)
                misses = telemetry.counters.get("service.cache.misses", 0)
                bypass = telemetry.counters.get("service.cache.bypass", 0)
                print(
                    f" (cache: {hits:,} hits, {misses:,} misses, "
                    f"{bypass:,} bypassed)",
                    end="",
                )
            print("\n")
    except JournalError as exc:
        print(f"repro-experiments: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The journal is fsync'd per chunk, so everything finished is
        # already durable; flush partial stats and report how to resume.
        if journal is not None:
            journal.close()
            print(
                f"\nrepro-experiments: interrupted — {journal.appended:,} "
                f"block records journaled to {journal.path}; rerun with "
                f"--resume {journal.path} to continue",
                file=sys.stderr,
            )
        else:
            print(
                "\nrepro-experiments: interrupted (no --journal; "
                "population progress lost)",
                file=sys.stderr,
            )
        write_stats(partial=True)
        return 130
    finally:
        if journal is not None:
            journal.close()

    try:
        _render_experiments(wanted, args, records, results)
    except KeyboardInterrupt:
        print(
            "\nrepro-experiments: interrupted while rendering experiments",
            file=sys.stderr,
        )
        write_stats(partial=True)
        return 130

    write_stats()
    if journal is not None:
        print(f"[journal] {journal.appended:,} block records in {journal.path}")

    return 0


def _render_experiments(wanted, args, records, results) -> None:
    for name in wanted:
        start = time.perf_counter()
        if name == "table1":
            result = table1.run()
        elif name == "table7":
            result = table7.run_from_records(records, args.curtail)
        elif name == "fig1":
            result = fig1.run_from_records(records)
        elif name == "fig4":
            result = fig4.run_from_records(records)
        elif name == "fig5":
            result = fig5.run_from_records(records)
        elif name == "fig6":
            result = fig6.run_from_records(records)
        elif name == "fig7":
            result = fig7.run_from_records(records)
        elif name == "ablation-a1":
            result = ablation.run_a1()
        elif name == "ablation-a2":
            result = ablation.run_a2()
        elif name == "ablation-a3":
            result = prepass.run_a3()
        elif name == "kernels":
            result = kernels.run()
        elif name == "loops":
            result = loops.run()
        elif name == "stalls":
            result = stalls.run()
        elif name == "machines":
            result = machines.run()
        elif name == "extension-x1":
            result = extension.run_x1()
        elif name == "extension-x2":
            result = extension.run_x2()
        else:  # pragma: no cover
            raise AssertionError(name)
        elapsed = time.perf_counter() - start
        print(f"=== {name} ({elapsed:.1f}s) " + "=" * max(0, 50 - len(name)))
        print(result.render())
        print()
        results[name] = result
        if args.csv:
            _write_csv(args.csv, name, result.csv())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
