"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's tables and figures (plus the ablations and
extensions) and prints them as text; ``--csv DIR`` additionally writes
machine-readable CSVs.

Examples::

    repro-experiments all
    repro-experiments table7 --blocks 2000
    repro-experiments table1 fig4 --csv results/
    repro-experiments table7 --workers 8 --stats-json stats.json
    REPRO_SCALE=1 repro-experiments all --workers 0   # full run, all cores
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..sched.search import SearchOptions
from ..telemetry import Telemetry
from . import (
    ablation,
    extension,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    kernels,
    machines,
    prepass,
    stalls,
    table1,
    table7,
)
from .parallel import run_population_parallel
from .runner import DEFAULT_CURTAIL, population_size

#: Experiments that share the single population run.
POPULATION_EXPERIMENTS = ("table7", "fig1", "fig4", "fig5", "fig6", "fig7")
ALL_EXPERIMENTS = ("table1",) + POPULATION_EXPERIMENTS + (
    "ablation-a1",
    "ablation-a2",
    "ablation-a3",
    "kernels",
    "stalls",
    "machines",
    "extension-x1",
    "extension-x2",
)


def _write_csv(directory: str, name: str, text: str) -> None:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    with open(path, "w") as fh:
        fh.write(text)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"which experiments to run: all, {', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=None,
        help="population size for the table7/figure experiments "
        "(default: 16000 * REPRO_SCALE)",
    )
    parser.add_argument(
        "--curtail",
        type=int,
        default=DEFAULT_CURTAIL,
        help=f"search curtail point lambda (default {DEFAULT_CURTAIL:,})",
    )
    parser.add_argument("--seed", type=int, default=1990, help="master seed")
    parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="search engine for the population run: the flattened array "
        "core (fast) or the recursive reference — bit-for-bit identical "
        "results",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also write CSVs to DIR"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="schedule the population across N worker processes "
        "(0 = all cores; default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--block-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-block wall-clock budget; blocks over budget degrade to "
        "their list-schedule seed instead of stalling the run",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-derive every published schedule through the independent "
        "certificate checker (repro.verify); any Ω-accounting mismatch "
        "aborts the run",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="write aggregated search telemetry (prune counters, phase "
        "times) to PATH as JSON",
    )
    args = parser.parse_args(argv)

    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.stats_json:
        # Fail now, not after a possibly hours-long population run.
        try:
            with open(args.stats_json, "a"):
                pass
        except OSError as exc:
            parser.error(f"cannot write --stats-json {args.stats_json}: {exc}")

    if args.workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    elif args.workers == 0:
        workers = os.cpu_count() or 1
    else:
        workers = args.workers
    if workers < 1:
        parser.error("--workers must be >= 0")

    telemetry = Telemetry()
    results = {}
    records = None
    if any(w in POPULATION_EXPERIMENTS for w in wanted):
        n_blocks = args.blocks if args.blocks is not None else population_size()
        verified = ", verified" if args.verify else ""
        print(
            f"[population] scheduling {n_blocks:,} synthetic blocks "
            f"(lambda={args.curtail:,}, seed={args.seed}, "
            f"workers={workers}{verified}) ...",
            flush=True,
        )
        start = time.perf_counter()
        with telemetry.phase("population"):
            records = run_population_parallel(
                n_blocks,
                args.curtail,
                args.seed,
                options=SearchOptions(curtail=args.curtail, engine=args.engine),
                workers=workers,
                block_timeout=args.block_timeout,
                telemetry=telemetry,
                verify=args.verify,
            )
        print(f"[population] done in {time.perf_counter() - start:.1f}s\n")

    for name in wanted:
        start = time.perf_counter()
        if name == "table1":
            result = table1.run()
        elif name == "table7":
            result = table7.run_from_records(records, args.curtail)
        elif name == "fig1":
            result = fig1.run_from_records(records)
        elif name == "fig4":
            result = fig4.run_from_records(records)
        elif name == "fig5":
            result = fig5.run_from_records(records)
        elif name == "fig6":
            result = fig6.run_from_records(records)
        elif name == "fig7":
            result = fig7.run_from_records(records)
        elif name == "ablation-a1":
            result = ablation.run_a1()
        elif name == "ablation-a2":
            result = ablation.run_a2()
        elif name == "ablation-a3":
            result = prepass.run_a3()
        elif name == "kernels":
            result = kernels.run()
        elif name == "stalls":
            result = stalls.run()
        elif name == "machines":
            result = machines.run()
        elif name == "extension-x1":
            result = extension.run_x1()
        elif name == "extension-x2":
            result = extension.run_x2()
        else:  # pragma: no cover
            raise AssertionError(name)
        elapsed = time.perf_counter() - start
        print(f"=== {name} ({elapsed:.1f}s) " + "=" * max(0, 50 - len(name)))
        print(result.render())
        print()
        results[name] = result
        if args.csv:
            _write_csv(args.csv, name, result.csv())

    if args.stats_json:
        telemetry.write_json(
            args.stats_json,
            meta={
                "experiments": wanted,
                "blocks": len(records) if records is not None else 0,
                "curtail": args.curtail,
                "engine": args.engine,
                "master_seed": args.seed,
                "workers": workers,
                "block_timeout": args.block_timeout,
                "verify": args.verify,
            },
        )
        print(f"[stats] telemetry written to {args.stats_json}")

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
