"""Figure 7 — percentage of runs finding provably optimal schedules vs
block size.

The paper: "common block sizes are easily scheduled within a reasonable
compile time, and usually can be optimally scheduled within that time" —
the completion percentage sits at 100% for small blocks and dips only in
the large-block tail (the overall rate is Table 7's 98.83%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .report import format_table, to_csv
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    bucket_by_size,
    population_size,
    run_population,
)


@dataclass(frozen=True)
class Fig7Result:
    records: List[BlockRecord]
    bucket: int = 4

    def series(self) -> List[Tuple[int, float, int]]:
        out = []
        for start, rs in bucket_by_size(self.records, self.bucket).items():
            pct = 100.0 * sum(r.completed for r in rs) / len(rs)
            out.append((start, pct, len(rs)))
        return out

    @property
    def overall_percentage(self) -> float:
        return 100.0 * sum(r.completed for r in self.records) / len(self.records)

    def render(self) -> str:
        rows = []
        for start, pct, count in self.series():
            bar = "#" * round(pct / 2)
            rows.append((f"{start}-{start + self.bucket - 1}", f"{pct:.1f}%", count, bar))
        table = format_table(
            ["block size", "optimal", "runs", ""],
            rows,
            title="Figure 7 — % provably optimal vs block size",
            align_right=False,
        )
        return (
            f"{table}\n"
            f"overall: {self.overall_percentage:.2f}% optimal "
            "(paper: 98.83%, dipping only beyond ~30 instructions)"
        )

    def csv(self) -> str:
        return to_csv(
            ["bucket_start", "percent_optimal", "runs"],
            [(s, p, c) for s, p, c in self.series()],
        )


def run(
    n_blocks: Optional[int] = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Fig7Result:
    if n_blocks is None:
        n_blocks = population_size()
    return Fig7Result(run_population(n_blocks, curtail, master_seed))


def run_from_records(records: List[BlockRecord]) -> Fig7Result:
    return Fig7Result(records)
