"""Figure 6 — average scheduling runtime vs block size.

The paper shows per-block wall-clock (Sun 3/50) staying negligible up to
~20-instruction blocks and climbing only for the rare large blocks whose
searches hit the curtail point.  Absolute 1990 numbers are meaningless on
modern hardware; the reproduced shape is the flat-then-rising curve and
the throughput claim ("schedules about 100 typical blocks per second" —
section 6), which this experiment reports directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .report import format_table, to_csv
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    bucket_by_size,
    mean,
    population_size,
    run_population,
)


@dataclass(frozen=True)
class Fig6Result:
    records: List[BlockRecord]
    bucket: int = 4

    def series(self) -> List[Tuple[float, float, int]]:
        out = []
        for start, rs in bucket_by_size(self.records, self.bucket).items():
            out.append(
                (start + self.bucket / 2, mean(r.elapsed_seconds for r in rs), len(rs))
            )
        return out

    @property
    def blocks_per_second(self) -> float:
        total = sum(r.elapsed_seconds for r in self.records)
        return len(self.records) / total if total else float("inf")

    def render(self) -> str:
        table = format_table(
            ["block size", "mean seconds", "runs"],
            [(f"{x - self.bucket/2:.0f}+", f"{secs:.4f}", count)
             for x, secs, count in self.series()],
            title="Figure 6 — average runtime vs block size",
        )
        return (
            f"{table}\n"
            f"throughput: {self.blocks_per_second:,.0f} blocks/second "
            "(paper, Sun 3/50: ~100 blocks/second; ~0.1 s/complete search)"
        )

    def csv(self) -> str:
        return to_csv(
            ["size", "elapsed_seconds", "completed"],
            [(r.size, r.elapsed_seconds, int(r.completed)) for r in self.records],
        )


def run(
    n_blocks: Optional[int] = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Fig6Result:
    if n_blocks is None:
        n_blocks = population_size()
    return Fig6Result(run_population(n_blocks, curtail, master_seed))


def run_from_records(records: List[BlockRecord]) -> Fig6Result:
    return Fig6Result(records)
