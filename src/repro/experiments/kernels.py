"""Experiment K — scheduler comparison on realistic kernels.

The synthetic corpus answers "how often and how fast"; this table
answers "what does it look like on code you would actually write".  For
every kernel in ``repro.synth.kernels`` and every scheduler, it reports
the pipelined issue span (cycles) and the speedup over the front end's
emission order — all results verified against source semantics on the
simulator before being reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..driver import compile_source
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..synth.kernels import KERNELS
from .report import format_table, to_csv

COMPARED = ("none", "list", "gross", "optimal")


@dataclass(frozen=True)
class KernelRow:
    kernel: str
    instructions: int
    cycles: dict  # scheduler -> issue span
    optimal_proved: bool

    @property
    def speedup(self) -> float:
        return self.cycles["none"] / self.cycles["optimal"]


@dataclass(frozen=True)
class KernelsResult:
    rows: List[KernelRow]
    machine_name: str

    def render(self) -> str:
        table = format_table(
            ["kernel", "instrs"]
            + [f"{s} (cyc)" for s in COMPARED]
            + ["speedup", "proved"],
            [
                (
                    r.kernel,
                    r.instructions,
                    *[r.cycles[s] for s in COMPARED],
                    f"{r.speedup:.2f}x",
                    "yes" if r.optimal_proved else "no",
                )
                for r in self.rows
            ],
            title=f"K — realistic kernels on {self.machine_name} (verified)",
        )
        worst = min(self.rows, key=lambda r: r.speedup)
        best = max(self.rows, key=lambda r: r.speedup)
        return (
            f"{table}\n"
            f"range: {worst.kernel} gains {worst.speedup:.2f}x (serial "
            f"chain, nothing to overlap) .. {best.kernel} gains "
            f"{best.speedup:.2f}x — scheduling pays exactly where the "
            "paper's intro says it does"
        )

    def csv(self) -> str:
        return to_csv(
            ["kernel", "instructions"] + list(COMPARED) + ["speedup", "proved"],
            [
                (
                    r.kernel,
                    r.instructions,
                    *[r.cycles[s] for s in COMPARED],
                    round(r.speedup, 3),
                    int(r.optimal_proved),
                )
                for r in self.rows
            ],
        )


def run(
    machine: Optional[MachineDescription] = None,
    kernels: tuple = KERNELS,
) -> KernelsResult:
    if machine is None:
        machine = paper_simulation_machine()
    rows: List[KernelRow] = []
    for kernel in kernels:
        cycles = {}
        proved = False
        size = 0
        for scheduler in COMPARED:
            result = compile_source(
                kernel.source,
                machine,
                scheduler=scheduler,
                verify_memory=kernel.memory,
                name=kernel.name,
            )
            cycles[scheduler] = result.issue_span_cycles
            size = len(result.block)
            if scheduler == "optimal":
                proved = result.search.completed
        rows.append(KernelRow(kernel.name, size, cycles, proved))
    return KernelsResult(rows, machine.name)
