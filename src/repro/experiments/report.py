"""Plain-text rendering for experiment results.

The paper's artifacts are tables and simple scatter/line/histogram
figures; everything here renders to monospace text (and CSV) so results
live in terminals, logs, and EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render an aligned monospace table."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if align_right else cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """ASCII scatter plot (the paper's Figures 1, 4, 6, 7 style)."""
    import math

    if not points:
        return f"{title or 'scatter'}: (no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        ys = [math.log10(max(y, 0.5)) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"1e{y_hi:.1f}" if log_y else _cell(y_hi)
    y_lo_label = f"1e{y_lo:.1f}" if log_y else _cell(y_lo)
    lines.append(f"{y_label} (top={y_hi_label}, bottom={y_lo_label})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {_cell(x_lo)} .. {_cell(x_hi)}")
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Multiple named (x, y) series as one aligned table (Figure 4 style:
    two curves over a shared x axis)."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {
        name: {x: y for x, y in pts} for name, pts in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            row.append(lookup[name].get(x, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title)


def format_histogram(
    buckets: Sequence[Tuple[int, int]],
    bucket_width: int,
    title: Optional[str] = None,
    bar_scale: int = 50,
) -> str:
    """ASCII histogram (Figure 5 style)."""
    if not buckets:
        return f"{title or 'histogram'}: (no data)"
    peak = max(count for _, count in buckets) or 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for start, count in buckets:
        bar = "#" * max(1 if count else 0, round(count / peak * bar_scale))
        label = f"{start:>3}-{start + bucket_width - 1:<3}"
        lines.append(f"{label} {count:>6}  {bar}")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV text for machine-readable result capture."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def comparison_note(paper: str, measured: str) -> str:
    """A standard two-line paper-vs-measured footer."""
    return f"paper:    {paper}\nmeasured: {measured}"
