"""Figure 5 — distribution of sample block sizes.

The paper's population is deliberately *larger*-blocked than real
programs: "Studies have shown that on average a basic block in real
programs has less than ten instructions, however, our average sample
block had 20.6; this yields overly conservative results ... Though
programs with basic blocks that have more than forty instructions are
very rare, we have even included such blocks."

The shape to match: right-skewed histogram, mean ≈ 20.6, thin tail past
40.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .report import format_histogram, to_csv
from .runner import DEFAULT_CURTAIL, BlockRecord, mean, population_size, run_population

BUCKET = 5


@dataclass(frozen=True)
class Fig5Result:
    records: List[BlockRecord]

    def histogram(self) -> List[Tuple[int, int]]:
        counts: dict[int, int] = {}
        for r in self.records:
            start = (r.size // BUCKET) * BUCKET
            counts[start] = counts.get(start, 0) + 1
        return sorted(counts.items())

    def render(self) -> str:
        sizes = [r.size for r in self.records]
        body = format_histogram(
            self.histogram(),
            BUCKET,
            title=(
                f"Figure 5 — distribution of sample block sizes "
                f"({len(sizes):,} blocks)"
            ),
        )
        over_40 = 100.0 * sum(s > 40 for s in sizes) / len(sizes)
        return (
            f"{body}\n"
            f"mean {mean(sizes):.1f} (paper: 20.6), "
            f"{over_40:.1f}% of blocks exceed 40 instructions (paper: 'very rare')"
        )

    def csv(self) -> str:
        return to_csv(["bucket_start", "count"], self.histogram())


def run(
    n_blocks: Optional[int] = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Fig5Result:
    if n_blocks is None:
        n_blocks = population_size()
    return Fig5Result(run_population(n_blocks, curtail, master_seed))


def run_from_records(records: List[BlockRecord]) -> Fig5Result:
    return Fig5Result(records)
