"""Shared experiment machinery.

One pass over a synthetic block population produces the per-block records
that Table 7 and Figures 1, 4, 5, 6 and 7 are all views of; this module
owns that pass so the experiments stay cheap and mutually consistent.

Scale: the paper schedules 16,000 blocks.  ``population_size()`` reads
``REPRO_SCALE`` (a fraction of paper scale, default 0.125 ⇒ 2,000 blocks)
so benchmarks stay tractable in pure Python while ``REPRO_SCALE=1``
reproduces the full run.  Results are shape-stable across scales.

The serial pass lives here; ``repro.experiments.parallel`` fans the same
per-block step (:func:`schedule_generated_block`) out over a process
pool.  Both paths build records through the same function, which is what
makes the parallel engine's output bit-identical to the serial one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Mapping, Optional

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..resilience.budget import (
    STEP_CURTAILED,
    STEP_LIST_SEED,
    STEP_OPTIMAL,
    STEP_SPLIT,
    BudgetManager,
)
from ..sched.list_scheduler import list_schedule, program_order
from ..sched.nop_insertion import ScheduleTiming, compute_timing
from ..sched.search import SearchOptions, SearchResult, schedule_block
from ..sched.splitting import schedule_block_split
from ..synth.generator import GeneratedBlock
from ..synth.population import (
    PopulationSpec,
    generate_from_params,
    sample_population_params,
)
from ..telemetry import Telemetry

#: The paper's population size.
PAPER_BLOCKS = 16_000

#: The paper's curtail points were "always large relative to the number of
#: items searched for an optimal search of an average block"; its truncated
#: searches averaged ~54,000 Ω calls, placing λ in the 50k range.  Typical
#: complete searches here cost ~400 calls, so this is >100x headroom.
DEFAULT_CURTAIL = 50_000


def population_size(default_scale: float = 0.125) -> int:
    """Blocks to run, honouring the ``REPRO_SCALE`` environment knob."""
    scale = float(os.environ.get("REPRO_SCALE", default_scale))
    return max(1, round(PAPER_BLOCKS * scale))


@dataclass(frozen=True)
class BlockRecord:
    """Everything the experiments need to know about one scheduled block.

    ``elapsed_seconds`` is excluded from equality/hashing: two runs of
    the same population are *the same result* regardless of wall clock,
    which is what lets the parallel engine assert record-identity against
    the serial runner.
    """

    index: int
    size: int  # instructions (tuples) in the block
    statements: int
    initial_nops: int  # mu of the front end's program order (Figure 4 "initial")
    seed_nops: int  # mu of the list schedule (step [1]'s incumbent)
    final_nops: int  # mu of the search's best schedule
    omega_calls: int
    completed: bool  # condition [1]: provably optimal
    #: The search hit its wall-clock deadline (or the run budget was
    #: exhausted, or the block was quarantined after repeated worker
    #: failures) and ``final_nops`` is a deterministic fallback — the
    #: split-windows schedule or the list-schedule seed — not the search
    #: incumbent.  Degraded records are never ``completed`` — Table 7 and
    #: the verify oracle must count them as truncated, never as optimal.
    degraded: bool = False
    #: Which rung of the degradation ladder published this record — one
    #: of ``repro.resilience.budget.LADDER`` (``""`` only on records
    #: predating the resilience layer).
    ladder: str = ""
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def nops_removed(self) -> int:
        return self.initial_nops - self.final_nops


class VerificationError(AssertionError):
    """A population schedule failed its independent certificate check."""


def _empty_record(index: int, gb: GeneratedBlock, telemetry) -> BlockRecord:
    """The zero-size record for a block the optimizer folded away."""
    if telemetry is not None:
        telemetry.count("blocks.empty")
        telemetry.count(f"resilience.ladder.{STEP_OPTIMAL}")
    return BlockRecord(
        index=index,
        size=0,
        statements=gb.statements,
        initial_nops=0,
        seed_nops=0,
        final_nops=0,
        omega_calls=0,
        completed=True,
        degraded=False,
        ladder=STEP_OPTIMAL,
        elapsed_seconds=0.0,
    )


def list_seed_record(
    index: int,
    gb: GeneratedBlock,
    machine: MachineDescription,
    telemetry: Optional[Telemetry] = None,
) -> BlockRecord:
    """The bottom rung of the degradation ladder: no search at all.

    Publishes the deterministic list-schedule seed.  Used when the
    run-level budget is already exhausted before a block starts and when
    a poisoned worker chunk is quarantined — the two situations where a
    record is still owed but searching is off the table.
    ``omega_calls=0`` records honestly that no search ran.
    """
    block = gb.block
    if len(block) == 0:
        return _empty_record(index, gb, telemetry)
    start = time.perf_counter()
    dag = DependenceDAG(block)
    initial = compute_timing(dag, program_order(dag), machine)
    seed = compute_timing(dag, list_schedule(dag), machine)
    if telemetry is not None:
        telemetry.count("blocks.degraded")
        telemetry.count(f"resilience.ladder.{STEP_LIST_SEED}")
    return BlockRecord(
        index=index,
        size=len(block),
        statements=gb.statements,
        initial_nops=initial.total_nops,
        seed_nops=seed.total_nops,
        final_nops=seed.total_nops,
        omega_calls=0,
        completed=False,
        degraded=True,
        ladder=STEP_LIST_SEED,
        elapsed_seconds=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class LadderOutcome:
    """What one trip down the degradation ladder published.

    ``result`` is the raw search outcome; ``timing``/``final_nops`` are
    what the chosen rung actually publishes (the search incumbent, the
    split-windows schedule, or the list seed).  ``cache_status`` is the
    cache provenance (``"hit"``/``"miss"``/``"bypass"``) when a
    :class:`repro.service.cache.ScheduleCache` drove the search, else
    ``None``.
    """

    result: SearchResult
    timing: ScheduleTiming
    final_nops: int
    omega_calls: int
    ladder: str
    degraded: bool
    cache_status: Optional[str] = None


def ladder_schedule(
    dag: DependenceDAG,
    machine: MachineDescription,
    options: SearchOptions,
    telemetry: Optional[Telemetry] = None,
    budget: Optional[BudgetManager] = None,
    cache=None,
) -> LadderOutcome:
    """Search one block and walk the degradation ladder on a timeout.

    The shared per-block step behind :func:`schedule_generated_block`
    and the batch scheduling daemon (:mod:`repro.service.server`): run
    the branch-and-bound (through ``cache`` when given — a
    :class:`repro.service.cache.ScheduleCache` — so solved canonical
    forms are served instead of recomputed), and degrade a
    deadline-truncated search to the split-windows schedule (when
    ``budget`` enables it and it beats the seed) or the list seed.
    """
    if cache is not None:
        result, cache_status = cache.schedule_with_status(
            dag, machine, options, telemetry=telemetry
        )
    else:
        result = schedule_block(dag, machine, options, telemetry=telemetry)
        cache_status = None
    # Deadline-truncated searches degrade: the incumbent they stopped on
    # depends on wall clock, the fallback rungs below do not.
    degraded = result.timed_out
    omega_calls = result.omega_calls
    if not degraded:
        ladder = STEP_OPTIMAL if result.completed else STEP_CURTAILED
        timing = result.best
        final_nops = result.final_nops
    else:
        ladder = STEP_LIST_SEED
        timing = result.initial
        final_nops = result.initial_nops
        if budget is not None and budget.split_fallback and len(dag) > 1:
            split = schedule_block_split(
                dag,
                machine,
                window=budget.split_window,
                curtail_per_window=budget.split_curtail,
                telemetry=telemetry,
                engine=options.engine,
            )
            omega_calls += split.omega_calls
            if split.total_nops < result.initial_nops:
                ladder = STEP_SPLIT
                timing = split.timing
                final_nops = split.total_nops
    return LadderOutcome(
        result=result,
        timing=timing,
        final_nops=final_nops,
        omega_calls=omega_calls,
        ladder=ladder,
        degraded=degraded,
        cache_status=cache_status,
    )


def schedule_generated_block(
    index: int,
    gb: GeneratedBlock,
    machine: MachineDescription,
    options: SearchOptions,
    telemetry: Optional[Telemetry] = None,
    block_timeout: Optional[float] = None,
    verify: bool = False,
    budget: Optional[BudgetManager] = None,
    cache=None,
) -> BlockRecord:
    """Schedule one population member and build its record.

    Empty blocks (the optimizer occasionally folds a whole program away)
    produce a zero-size record instead of a gap, so ``BlockRecord.index``
    stays dense and the record count always equals the population size.

    ``block_timeout`` bounds the wall-clock spent searching this block; a
    block that exceeds it walks down the degradation ladder (see
    :mod:`repro.resilience.budget`): with a ``budget`` manager whose
    split fallback is enabled, the section-5.3 windowed scheduler gets a
    small deterministic Ω budget to beat the list seed
    (``ladder="split-windows"``); otherwise — and when the windows do
    not improve on it — the block publishes its list-schedule seed
    (``ladder="list-seed"``).  Either way the record is marked
    ``degraded=True, completed=False`` instead of stalling the run.

    ``budget`` additionally clamps the block's curtail point and memo cap
    and enforces the run-level budgets: once those are exhausted, blocks
    skip the search entirely and publish their list seeds.

    ``verify`` re-derives the *published* schedule's legality and NOP
    count through :mod:`repro.verify.certificate` (an implementation that
    shares no code with the schedulers) and raises
    :class:`VerificationError` on any mismatch — an Ω-accounting bug in
    the search can then never silently contaminate the experiment data.

    ``cache`` is an optional :class:`repro.service.cache.ScheduleCache`:
    blocks whose canonical form was already solved (this run or any
    earlier run sharing the store) are served from it, bit-for-bit
    identical to a cold search.  Searches running under a wall-clock
    ``block_timeout`` bypass the cache (the outcome is not a pure
    function of the problem), so records stay byte-identical either way.
    """
    block = gb.block
    if len(block) == 0:
        return _empty_record(index, gb, telemetry)
    if budget is not None:
        if budget.run_exhausted() is not None:
            if telemetry is not None:
                telemetry.count("resilience.run_budget_exhausted")
            return list_seed_record(index, gb, machine, telemetry)
        options = budget.options_for_block(options)
    if block_timeout is not None:
        limit = (
            block_timeout
            if options.time_limit is None
            else min(options.time_limit, block_timeout)
        )
        options = replace(options, time_limit=limit)
    dag = DependenceDAG(block)
    initial = compute_timing(dag, program_order(dag), machine)
    start = time.perf_counter()
    out = ladder_schedule(
        dag, machine, options, telemetry=telemetry, budget=budget, cache=cache
    )
    elapsed = time.perf_counter() - start
    if budget is not None:
        budget.charge(out.omega_calls)
    if telemetry is not None:
        if out.degraded:
            telemetry.count("blocks.degraded")
        telemetry.count(f"resilience.ladder.{out.ladder}")
    if verify:
        _verify_record(block, dag, machine, out.timing, out.final_nops, telemetry)
    return BlockRecord(
        index=index,
        size=len(block),
        statements=gb.statements,
        initial_nops=initial.total_nops,
        seed_nops=out.result.initial_nops,
        final_nops=out.final_nops,
        omega_calls=out.omega_calls,
        completed=out.result.completed and not out.degraded,
        degraded=out.degraded,
        ladder=out.ladder,
        elapsed_seconds=elapsed,
    )


def _verify_record(block, dag, machine, timing, final_nops, telemetry):
    """Certify the schedule a record is about to publish.

    ``timing`` is whatever the degradation ladder published — the search
    optimum, a curtailed incumbent, the split-windows schedule, or the
    list seed — because that is the schedule the record reports;
    verifying an abandoned incumbent would check a schedule nobody sees.
    """
    from ..sched.multi import first_pipeline_assignment
    from ..verify.certificate import check_schedule

    assignment = first_pipeline_assignment(dag, machine)
    cert = check_schedule(
        block, machine, timing.order, timing.etas, assignment=assignment
    )
    if telemetry is not None:
        telemetry.count("verify.schedules_checked")
    if not cert.ok:
        if telemetry is not None:
            telemetry.count("verify.certificate_failures")
        raise VerificationError(
            f"block {block.name!r} on {machine.name}: {cert.summary()}"
        )
    if cert.required_nops != final_nops:
        if telemetry is not None:
            telemetry.count("verify.certificate_failures")
        raise VerificationError(
            f"block {block.name!r} on {machine.name}: record publishes "
            f"{final_nops} NOPs but the certificate re-derives "
            f"{cert.required_nops}"
        )


def run_population(
    n_blocks: int,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
    options: Optional[SearchOptions] = None,
    telemetry: Optional[Telemetry] = None,
    block_timeout: Optional[float] = None,
    verify: bool = False,
    done: Optional[Mapping[int, BlockRecord]] = None,
    on_record: Optional[Callable[[BlockRecord], None]] = None,
    budget: Optional[BudgetManager] = None,
    cache=None,
) -> List[BlockRecord]:
    """Schedule ``n_blocks`` synthetic blocks; one record per block.

    ``initial_nops`` is the NOP count of the block *as emitted* (program
    order) — the quantity Figure 4 shows growing linearly with block size;
    ``seed_nops`` is the list schedule's count (the search's incumbent).
    With ``verify=True`` every published schedule is certified through
    the independent checker (see :func:`schedule_generated_block`).

    Resilience hooks (all optional, all no-ops by default):

    * ``done`` — records already finished by an earlier, interrupted run
      (from a checkpoint journal).  Their blocks are skipped — only the
      cheap parameter stream is replayed, not generation or search — and
      the journaled records slot back in at their indexes, so a resumed
      run returns exactly what an uninterrupted one would.
    * ``on_record`` — called with each *freshly scheduled* record the
      moment it exists (not with journal-replayed ones); the CLI points
      this at :meth:`repro.resilience.journal.Journal.append`.
    * ``budget`` — a started :class:`BudgetManager` enforcing run-level
      wall-clock/Ω budgets and per-block clamps, enabling the
      split-windows ladder rung (see :func:`schedule_generated_block`).
    * ``cache`` — a :class:`repro.service.cache.ScheduleCache`; blocks
      whose canonical form is already in the (possibly shared, possibly
      disk-backed) store are served from it instead of re-searched.
    """
    if machine is None:
        machine = paper_simulation_machine()
    if options is None:
        options = SearchOptions(curtail=curtail)
    if budget is not None:
        budget.start()
    records: List[BlockRecord] = []
    skipped = 0
    generated = 0.0
    for params in sample_population_params(n_blocks, master_seed, spec):
        if done is not None and params.index in done:
            records.append(done[params.index])
            skipped += 1
            continue
        t0 = time.perf_counter()
        gb = generate_from_params(params, spec)
        generated += time.perf_counter() - t0
        record = schedule_generated_block(
            params.index,
            gb,
            machine,
            options,
            telemetry,
            block_timeout,
            verify,
            budget=budget,
            cache=cache,
        )
        records.append(record)
        if on_record is not None:
            on_record(record)
    assert len(records) == n_blocks, (
        f"population run produced {len(records)} records for "
        f"{n_blocks} blocks"
    )
    if telemetry is not None:
        telemetry.count("blocks.scheduled", len(records) - skipped)
        if skipped:
            telemetry.count("resilience.journal_blocks_skipped", skipped)
        telemetry.add_time("phase.generate", generated)
    return records


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def bucket_by_size(
    records: List[BlockRecord], bucket: int = 2
) -> dict[int, List[BlockRecord]]:
    """Group records by block-size bucket (for the per-size figures)."""
    out: dict[int, List[BlockRecord]] = {}
    for r in records:
        out.setdefault((r.size // bucket) * bucket, []).append(r)
    return dict(sorted(out.items()))
