"""Shared experiment machinery.

One pass over a synthetic block population produces the per-block records
that Table 7 and Figures 1, 4, 5, 6 and 7 are all views of; this module
owns that pass so the experiments stay cheap and mutually consistent.

Scale: the paper schedules 16,000 blocks.  ``population_size()`` reads
``REPRO_SCALE`` (a fraction of paper scale, default 0.125 ⇒ 2,000 blocks)
so benchmarks stay tractable in pure Python while ``REPRO_SCALE=1``
reproduces the full run.  Results are shape-stable across scales.

The serial pass lives here; ``repro.experiments.parallel`` fans the same
per-block step (:func:`schedule_generated_block`) out over a process
pool.  Both paths build records through the same function, which is what
makes the parallel engine's output bit-identical to the serial one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..sched.list_scheduler import program_order
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions, schedule_block
from ..synth.generator import GeneratedBlock
from ..synth.population import PopulationSpec, sample_population
from ..telemetry import Telemetry

#: The paper's population size.
PAPER_BLOCKS = 16_000

#: The paper's curtail points were "always large relative to the number of
#: items searched for an optimal search of an average block"; its truncated
#: searches averaged ~54,000 Ω calls, placing λ in the 50k range.  Typical
#: complete searches here cost ~400 calls, so this is >100x headroom.
DEFAULT_CURTAIL = 50_000


def population_size(default_scale: float = 0.125) -> int:
    """Blocks to run, honouring the ``REPRO_SCALE`` environment knob."""
    scale = float(os.environ.get("REPRO_SCALE", default_scale))
    return max(1, round(PAPER_BLOCKS * scale))


@dataclass(frozen=True)
class BlockRecord:
    """Everything the experiments need to know about one scheduled block.

    ``elapsed_seconds`` is excluded from equality/hashing: two runs of
    the same population are *the same result* regardless of wall clock,
    which is what lets the parallel engine assert record-identity against
    the serial runner.
    """

    index: int
    size: int  # instructions (tuples) in the block
    statements: int
    initial_nops: int  # mu of the front end's program order (Figure 4 "initial")
    seed_nops: int  # mu of the list schedule (step [1]'s incumbent)
    final_nops: int  # mu of the search's best schedule
    omega_calls: int
    completed: bool  # condition [1]: provably optimal
    #: The search hit its wall-clock deadline and ``final_nops`` is the
    #: deterministic list-schedule seed, not the search incumbent.
    #: Degraded records are never ``completed`` — Table 7 and the verify
    #: oracle must count them as truncated, never as optimal.
    degraded: bool = False
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def nops_removed(self) -> int:
        return self.initial_nops - self.final_nops


class VerificationError(AssertionError):
    """A population schedule failed its independent certificate check."""


def schedule_generated_block(
    index: int,
    gb: GeneratedBlock,
    machine: MachineDescription,
    options: SearchOptions,
    telemetry: Optional[Telemetry] = None,
    block_timeout: Optional[float] = None,
    verify: bool = False,
) -> BlockRecord:
    """Schedule one population member and build its record.

    Empty blocks (the optimizer occasionally folds a whole program away)
    produce a zero-size record instead of a gap, so ``BlockRecord.index``
    stays dense and the record count always equals the population size.

    ``block_timeout`` bounds the wall-clock spent searching this block;
    a block that exceeds it degrades to its list-schedule seed (recorded
    with ``degraded=True, completed=False``) instead of stalling the
    whole run.

    ``verify`` re-derives the recorded schedule's legality and NOP count
    through :mod:`repro.verify.certificate` (an implementation that
    shares no code with the schedulers) and raises
    :class:`VerificationError` on any mismatch — an Ω-accounting bug in
    the search can then never silently contaminate the experiment data.
    """
    block = gb.block
    if len(block) == 0:
        if telemetry is not None:
            telemetry.count("blocks.empty")
        return BlockRecord(
            index=index,
            size=0,
            statements=gb.statements,
            initial_nops=0,
            seed_nops=0,
            final_nops=0,
            omega_calls=0,
            completed=True,
            degraded=False,
            elapsed_seconds=0.0,
        )
    if block_timeout is not None:
        limit = (
            block_timeout
            if options.time_limit is None
            else min(options.time_limit, block_timeout)
        )
        options = replace(options, time_limit=limit)
    dag = DependenceDAG(block)
    initial = compute_timing(dag, program_order(dag), machine)
    start = time.perf_counter()
    result = schedule_block(dag, machine, options, telemetry=telemetry)
    elapsed = time.perf_counter() - start
    # Deadline-truncated searches degrade to the list-schedule seed: the
    # incumbent they stopped on depends on wall clock, the seed does not.
    degraded = result.timed_out
    final_nops = result.initial_nops if degraded else result.final_nops
    if telemetry is not None and degraded:
        telemetry.count("blocks.degraded")
    if verify:
        _verify_record(
            block, dag, machine, result, final_nops, degraded, telemetry
        )
    return BlockRecord(
        index=index,
        size=len(block),
        statements=gb.statements,
        initial_nops=initial.total_nops,
        seed_nops=result.initial_nops,
        final_nops=final_nops,
        omega_calls=result.omega_calls,
        completed=result.completed and not degraded,
        degraded=degraded,
        elapsed_seconds=elapsed,
    )


def _verify_record(block, dag, machine, result, final_nops, degraded, telemetry):
    """Certify the schedule a record is about to publish.

    Degraded records publish the list-schedule seed (``result.initial``),
    so that is the schedule certified — verifying the abandoned incumbent
    would check a schedule nobody reports.
    """
    from ..sched.multi import first_pipeline_assignment
    from ..verify.certificate import check_schedule

    timing = result.initial if degraded else result.best
    assignment = first_pipeline_assignment(dag, machine)
    cert = check_schedule(
        block, machine, timing.order, timing.etas, assignment=assignment
    )
    if telemetry is not None:
        telemetry.count("verify.schedules_checked")
    if not cert.ok:
        if telemetry is not None:
            telemetry.count("verify.certificate_failures")
        raise VerificationError(
            f"block {block.name!r} on {machine.name}: {cert.summary()}"
        )
    if cert.required_nops != final_nops:
        if telemetry is not None:
            telemetry.count("verify.certificate_failures")
        raise VerificationError(
            f"block {block.name!r} on {machine.name}: record publishes "
            f"{final_nops} NOPs but the certificate re-derives "
            f"{cert.required_nops}"
        )


def run_population(
    n_blocks: int,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
    options: Optional[SearchOptions] = None,
    telemetry: Optional[Telemetry] = None,
    block_timeout: Optional[float] = None,
    verify: bool = False,
) -> List[BlockRecord]:
    """Schedule ``n_blocks`` synthetic blocks; one record per block.

    ``initial_nops`` is the NOP count of the block *as emitted* (program
    order) — the quantity Figure 4 shows growing linearly with block size;
    ``seed_nops`` is the list schedule's count (the search's incumbent).
    With ``verify=True`` every published schedule is certified through
    the independent checker (see :func:`schedule_generated_block`).
    """
    if machine is None:
        machine = paper_simulation_machine()
    if options is None:
        options = SearchOptions(curtail=curtail)
    records: List[BlockRecord] = []
    blocks = sample_population(n_blocks, master_seed, spec)
    generated = 0.0
    for index in range(n_blocks):
        t0 = time.perf_counter()
        gb = next(blocks)
        generated += time.perf_counter() - t0
        records.append(
            schedule_generated_block(
                index, gb, machine, options, telemetry, block_timeout, verify
            )
        )
    assert len(records) == n_blocks, (
        f"population run produced {len(records)} records for "
        f"{n_blocks} blocks"
    )
    if telemetry is not None:
        telemetry.count("blocks.scheduled", len(records))
        telemetry.add_time("phase.generate", generated)
    return records


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def bucket_by_size(
    records: List[BlockRecord], bucket: int = 2
) -> dict[int, List[BlockRecord]]:
    """Group records by block-size bucket (for the per-size figures)."""
    out: dict[int, List[BlockRecord]] = {}
    for r in records:
        out.setdefault((r.size // bucket) * bucket, []).append(r)
    return dict(sorted(out.items()))
