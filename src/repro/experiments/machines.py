"""Experiment M — performance across pipeline structures (§6's ongoing
work).

"Ongoing work examines performance using various (more complex) pipeline
structures than the work presented here."  This sweep runs the corpus
over a grid of multiplier latencies and enqueue times (plus the preset
machines) and reports, per structure: naive stalls, optimal stalls, the
fraction of latency hidden, and the completion rate — the compiler-side
view of a hardware design space.

The robust finding: the scheduler hides 70-97% of naive stalls across
the whole grid, degrading gracefully as units get deeper and busier;
unpipelined (enqueue == latency) units are the hardest case because
conflicts, unlike dependences, cannot be hidden behind other work on the
same unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ir.dag import DependenceDAG
from ..ir.ops import Opcode
from ..machine.machine import MachineDescription
from ..machine.pipeline import PipelineDesc
from ..machine.presets import (
    deep_memory_machine,
    paper_simulation_machine,
    unpipelined_units_machine,
)
from ..sched.list_scheduler import program_order
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions, schedule_block
from ..synth.population import PopulationSpec, sample_population
from .report import format_table, to_csv
from .runner import mean


def _grid_machine(latency: int, enqueue: int) -> MachineDescription:
    return MachineDescription(
        name=f"mul-l{latency}-e{enqueue}",
        pipelines=[
            PipelineDesc("loader", 1, latency=2, enqueue_time=1),
            PipelineDesc("multiplier", 2, latency, enqueue),
        ],
        op_map={Opcode.LOAD: {1}, Opcode.MUL: {2}, Opcode.DIV: {2}},
    )


def sweep_machines() -> List[MachineDescription]:
    """The default design-space: a multiplier grid plus the presets."""
    grid = []
    for latency in (2, 4, 6, 8):
        for enqueue in sorted({1, 2, latency}):
            grid.append(_grid_machine(latency, enqueue))
    grid.append(paper_simulation_machine())
    grid.append(deep_memory_machine())
    grid.append(unpipelined_units_machine())
    return grid


@dataclass(frozen=True)
class MachineRow:
    machine: str
    avg_naive_nops: float
    avg_optimal_nops: float
    hidden_pct: float
    complete_pct: float


@dataclass(frozen=True)
class MachinesResult:
    rows: List[MachineRow]
    n_blocks: int

    def render(self) -> str:
        table = format_table(
            ["machine", "naive NOPs", "optimal NOPs", "hidden", "% optimal proofs"],
            [
                (r.machine, r.avg_naive_nops, r.avg_optimal_nops,
                 f"{r.hidden_pct:.1f}%", f"{r.complete_pct:.1f}")
                for r in self.rows
            ],
            title=(
                f"M — scheduling across pipeline structures "
                f"({self.n_blocks} blocks each)"
            ),
        )
        worst = min(self.rows, key=lambda r: r.hidden_pct)
        return (
            f"{table}\n"
            "section 6's 'ongoing work', run: most of the naive stall "
            "budget is hidden on every structure; the floor is "
            f"{worst.machine} ({worst.hidden_pct:.0f}% hidden) — "
            "unpipelined units conflict, and conflicts cannot be hidden "
            "behind other work on the same unit"
        )

    def csv(self) -> str:
        return to_csv(
            ["machine", "naive_nops", "optimal_nops", "hidden_pct", "complete_pct"],
            [
                (r.machine, r.avg_naive_nops, r.avg_optimal_nops,
                 round(r.hidden_pct, 2), round(r.complete_pct, 2))
                for r in self.rows
            ],
        )


def run(
    n_blocks: int = 120,
    curtail: int = 20_000,
    master_seed: int = 1990,
    machines: Optional[Sequence[MachineDescription]] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> MachinesResult:
    if machines is None:
        machines = sweep_machines()
    options = SearchOptions(curtail=curtail)
    dags = [
        DependenceDAG(gb.block)
        for gb in sample_population(n_blocks, master_seed, spec)
        if len(gb.block) > 1
    ]
    rows: List[MachineRow] = []
    for machine in machines:
        naive: List[int] = []
        optimal: List[int] = []
        complete = 0
        for dag in dags:
            naive.append(
                compute_timing(dag, program_order(dag), machine).total_nops
            )
            result = schedule_block(dag, machine, options)
            optimal.append(result.final_nops)
            complete += result.completed
        naive_avg = mean(naive)
        optimal_avg = mean(optimal)
        hidden = (
            100.0 * (naive_avg - optimal_avg) / naive_avg if naive_avg else 100.0
        )
        rows.append(
            MachineRow(
                machine=machine.name,
                avg_naive_nops=naive_avg,
                avg_optimal_nops=optimal_avg,
                hidden_pct=hidden,
                complete_pct=100.0 * complete / len(dags),
            )
        )
    return MachinesResult(rows, len(dags))
