"""Table 1 — search-space size for representative example blocks.

Paper::

    Instructions  Exhaustive     Pruning Illegal  Proposed Pruning
    In Block      Search Calls   Calls            Calls
    8             40,320         163              76
    11            39,916,800     9,039            12
    13            6.2x10^9       65,105           394
    13            6.2x10^9       40,240           21
    14            8.7x10^10      175,384          1,676
    16            2.1x10^13      27,487           17
    16            2.1x10^13      5,800,000        66,890
    16            2.1x10^13      92,228,324       5,434
    20            2.4x10^18      12,872           334
    21            5.1x10^19      58,581           202
    22            1.1x10^21      >9,999,000       119

Reproduction: representative synthetic blocks of the same sizes (two or
three per size, different dependence structures), reporting

* ``n!`` — the unpruned exhaustive search (computed, not run);
* the count of *legal* schedules (topological orders), capped at 10^7 and
  reported as ``>9,999,000`` beyond it, exactly as the paper does;
* the Ω calls of the proposed search (``SearchOptions.paper()`` so the
  prune set matches the published algorithm; the full-prune count is also
  shown).

The shape to match: legal-only pruning leaves 10^2..10^8 schedules with
no size correlation (structure, not size, governs the space — section
2.3's closing remark), while the proposed search touches only 10^1..10^5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.dag import COUNT_CAPPED, DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..sched.exhaustive import LEGAL_COUNT_CAP, exhaustive_search_size
from ..sched.search import SearchOptions, schedule_block
from ..synth.population import sample_population
from .report import format_table, to_csv

#: Block sizes of the paper's representative examples.
PAPER_SIZES = (8, 11, 13, 13, 14, 16, 16, 16, 20, 21, 22)


@dataclass(frozen=True)
class Table1Row:
    size: int
    exhaustive_calls: int
    legal_calls: int  # COUNT_CAPPED when above the cap
    proposed_calls_paper_prunes: int
    proposed_calls_all_prunes: int
    optimal_nops: int

    def cells(self) -> Tuple[object, ...]:
        legal = (
            f">{LEGAL_COUNT_CAP - 1_000:,}"
            if self.legal_calls == COUNT_CAPPED
            else self.legal_calls
        )
        return (
            self.size,
            _sci(self.exhaustive_calls),
            legal,
            self.proposed_calls_paper_prunes,
            self.proposed_calls_all_prunes,
        )


def _sci(value: int) -> str:
    if value < 10**9:
        return f"{value:,}"
    text = f"{value:.1e}"
    mantissa, exponent = text.split("e")
    return f"{mantissa}x10^{int(exponent)}"


@dataclass(frozen=True)
class Table1Result:
    rows: List[Table1Row]

    def render(self) -> str:
        table = format_table(
            [
                "Instructions",
                "Exhaustive Calls",
                "Legal-Only Calls",
                "Proposed (paper prunes)",
                "Proposed (all prunes)",
            ],
            [r.cells() for r in self.rows],
            title="Table 1 — search space for representative examples",
        )
        return (
            table
            + "\npaper:    proposed pruning visits 12..66,890 schedules "
            "where legal-only needs 10^4..10^8"
        )

    def csv(self) -> str:
        return to_csv(
            [
                "size",
                "exhaustive",
                "legal",
                "proposed_paper_prunes",
                "proposed_all_prunes",
                "optimal_nops",
            ],
            [
                (
                    r.size,
                    r.exhaustive_calls,
                    r.legal_calls,
                    r.proposed_calls_paper_prunes,
                    r.proposed_calls_all_prunes,
                    r.optimal_nops,
                )
                for r in self.rows
            ],
        )


def _blocks_of_sizes(
    sizes: Tuple[int, ...], master_seed: int
) -> List[DependenceDAG]:
    """Fish representative blocks of the requested sizes out of the
    population stream (same generator as every other experiment)."""
    wanted: List[int] = list(sizes)
    found: List[Optional[DependenceDAG]] = [None] * len(wanted)
    for gb in sample_population(50_000, master_seed):
        size = len(gb.block)
        for slot, want in enumerate(wanted):
            if found[slot] is None and size == want:
                found[slot] = DependenceDAG(gb.block)
                break
        if all(f is not None for f in found):
            break
    return [f for f in found if f is not None]


def run(
    sizes: Tuple[int, ...] = PAPER_SIZES,
    master_seed: int = 1701,
    machine: Optional[MachineDescription] = None,
    curtail: int = 200_000,
) -> Table1Result:
    """Run the Table 1 experiment."""
    if machine is None:
        machine = paper_simulation_machine()
    rows: List[Table1Row] = []
    for dag in _blocks_of_sizes(sizes, master_seed):
        n = len(dag)
        legal = dag.count_legal_orders(LEGAL_COUNT_CAP)
        paper_result = schedule_block(
            dag, machine, SearchOptions.paper(curtail=curtail)
        )
        full_result = schedule_block(
            dag, machine, SearchOptions(curtail=curtail)
        )
        rows.append(
            Table1Row(
                size=n,
                exhaustive_calls=exhaustive_search_size(n),
                legal_calls=legal,
                proposed_calls_paper_prunes=paper_result.omega_calls,
                proposed_calls_all_prunes=full_result.omega_calls,
                optimal_nops=full_result.final_nops,
            )
        )
    rows.sort(key=lambda r: r.size)
    return Table1Result(rows)
