"""Experiments reproducing every table and figure of the paper's
evaluation (plus ablations and extensions).  See DESIGN.md §3 for the
index and ``repro-experiments --help`` for the CLI."""

from . import (
    ablation,
    extension,
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    kernels,
    loops,
    machines,
    prepass,
    stalls,
    table1,
    table7,
)
from .parallel import default_workers, run_population_parallel
from .runner import (
    DEFAULT_CURTAIL,
    PAPER_BLOCKS,
    BlockRecord,
    population_size,
    run_population,
    schedule_generated_block,
)

__all__ = [
    "ablation",
    "prepass",
    "kernels",
    "loops",
    "stalls",
    "machines",
    "extension",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table7",
    "BlockRecord",
    "DEFAULT_CURTAIL",
    "PAPER_BLOCKS",
    "default_workers",
    "population_size",
    "run_population",
    "run_population_parallel",
    "schedule_generated_block",
]
