"""Figure 1 — schedules searched vs block size, complete runs only.

The paper plots the Ω-call count of every search that terminated on
condition [1] (provably optimal) against block size: a cloud that is
bounded by ~10^2..10^5 with no strong size trend, demonstrating that the
searched space depends on dependence/conflict structure rather than on
block size (section 2.3's closing observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .report import format_scatter, format_table, to_csv
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    bucket_by_size,
    mean,
    population_size,
    run_population,
)


@dataclass(frozen=True)
class Fig1Result:
    records: List[BlockRecord]

    @property
    def complete(self) -> List[BlockRecord]:
        return [r for r in self.records if r.completed]

    def points(self) -> List[Tuple[float, float]]:
        return [(r.size, r.omega_calls) for r in self.complete]

    def render(self) -> str:
        scatter = format_scatter(
            self.points(),
            x_label="instructions per block",
            y_label="omega calls (log10)",
            log_y=True,
            title=(
                f"Figure 1 — schedules searched vs block size "
                f"({len(self.complete):,} complete runs)"
            ),
        )
        buckets = bucket_by_size(self.complete, bucket=5)
        table = format_table(
            ["block size", "runs", "mean omega", "max omega"],
            [
                (
                    f"{start}-{start + 4}",
                    len(rs),
                    mean(r.omega_calls for r in rs),
                    max(r.omega_calls for r in rs),
                )
                for start, rs in buckets.items()
            ],
            title="per-size summary",
        )
        return f"{scatter}\n\n{table}"

    def csv(self) -> str:
        return to_csv(
            ["size", "omega_calls"],
            [(r.size, r.omega_calls) for r in self.complete],
        )


def run(
    n_blocks: Optional[int] = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Fig1Result:
    if n_blocks is None:
        n_blocks = population_size()
    return Fig1Result(run_population(n_blocks, curtail, master_seed))


def run_from_records(records: List[BlockRecord]) -> Fig1Result:
    return Fig1Result(records)
