"""Figure 4 — initial and final NOPs vs block size.

The paper's headline picture: *"the initial number of NOPs grow linearly
with the number of instructions, but the final number of NOPs remains
nearly constant."*  Initial is the code as emitted by the front end
(program order — on-demand loading leaves a dependence stall behind most
loads and multiplies); final is the optimal schedule's count.  We plot
the list-schedule seed as a third series for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .report import format_series, to_csv
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    bucket_by_size,
    mean,
    population_size,
    run_population,
)


@dataclass(frozen=True)
class Fig4Result:
    records: List[BlockRecord]
    bucket: int = 4

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        buckets = bucket_by_size(self.records, self.bucket)
        initial = []
        seeded = []
        final = []
        for start, rs in buckets.items():
            x = start + self.bucket / 2
            initial.append((x, mean(r.initial_nops for r in rs)))
            seeded.append((x, mean(r.seed_nops for r in rs)))
            final.append((x, mean(r.final_nops for r in rs)))
        return {
            "initial NOPs": initial,
            "list-schedule NOPs": seeded,
            "final NOPs": final,
        }

    def linear_fit(self) -> Tuple[float, float]:
        """Least-squares slope/intercept of initial NOPs vs size."""
        xs = [float(r.size) for r in self.records]
        ys = [float(r.initial_nops) for r in self.records]
        n = len(xs)
        mx, my = sum(xs) / n, sum(ys) / n
        sxx = sum((x - mx) ** 2 for x in xs)
        sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        slope = sxy / sxx if sxx else 0.0
        return slope, my - slope * mx

    def render(self) -> str:
        slope, _ = self.linear_fit()
        final_overall = mean(r.final_nops for r in self.records)
        body = format_series(
            self.series(),
            x_label="block size",
            title="Figure 4 — initial and final NOPs vs block size (bucket means)",
        )
        return (
            f"{body}\n"
            f"initial NOPs grow ~{slope:.2f} per instruction (paper: linear, "
            f"~0.46); final NOPs average {final_overall:.2f} across all sizes "
            "(paper: 'nearly constant', 0.67 overall)"
        )

    def csv(self) -> str:
        return to_csv(
            ["size", "initial_nops", "seed_nops", "final_nops"],
            [
                (r.size, r.initial_nops, r.seed_nops, r.final_nops)
                for r in self.records
            ],
        )


def run(
    n_blocks: Optional[int] = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Fig4Result:
    if n_blocks is None:
        n_blocks = population_size()
    return Fig4Result(run_population(n_blocks, curtail, master_seed))


def run_from_records(records: List[BlockRecord]) -> Fig4Result:
    return Fig4Result(records)
