"""Table 7 — statistics for scheduling the synthetic block population.

Paper (16,000 blocks, Sun 3/50)::

                              Complete    Truncated     Totals
    Number of Runs              15,812          188     16,000
    Percentage of Runs          98.83%        1.17%
    Avg. Instructions/Block      20.50        32.28
    Avg. Initial NOPs             9.50        14.34
    Avg. Final NOPs               0.67         4.03
    Avg. Omega Calls             427.4       54,150
    Avg. Search Time            ~0.1 s        ~15 s

Reproduction: same columns over a (scaled) population; the shape to match
is  (a) ~99% of searches complete, (b) truncated blocks are markedly
larger, (c) final NOPs collapse to below ~1 for complete runs while
initial NOPs sit near half the block size, (d) complete searches cost
order-10^2..10^3 Ω calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .report import comparison_note, format_table, to_csv
from .runner import DEFAULT_CURTAIL, BlockRecord, mean, population_size, run_population

#: The paper's Table 7, for side-by-side rendering.
PAPER_ROWS = {
    "runs": (15_812, 188, 16_000),
    "percentage": (98.83, 1.17, 100.0),
    "avg_instructions": (20.50, 32.28, None),
    "avg_initial_nops": (9.50, 14.34, None),
    "avg_final_nops": (0.67, 4.03, None),
    "avg_omega_calls": (427.4, 54_150.0, None),
    "avg_search_seconds": (0.1, 15.0, None),
}


@dataclass(frozen=True)
class Table7Result:
    records: List[BlockRecord]
    curtail: int

    # ------------------------------------------------------------------
    @property
    def complete(self) -> List[BlockRecord]:
        return [r for r in self.records if r.completed]

    @property
    def truncated(self) -> List[BlockRecord]:
        return [r for r in self.records if not r.completed]

    def column(self, records: List[BlockRecord]) -> dict:
        return {
            "runs": len(records),
            "percentage": 100.0 * len(records) / max(1, len(self.records)),
            "avg_instructions": mean(r.size for r in records),
            "avg_initial_nops": mean(r.initial_nops for r in records),
            "avg_final_nops": mean(r.final_nops for r in records),
            "avg_omega_calls": mean(r.omega_calls for r in records),
            "avg_search_seconds": mean(r.elapsed_seconds for r in records),
        }

    def rows(self) -> List[Tuple[object, ...]]:
        complete = self.column(self.complete)
        truncated = self.column(self.truncated)
        labels = {
            "runs": "Number of Runs",
            "percentage": "Percentage of Runs",
            "avg_instructions": "Avg. Instructions/Block",
            "avg_initial_nops": "Avg. Initial NOPs",
            "avg_final_nops": "Avg. Final NOPs",
            "avg_omega_calls": "Avg. Omega Calls",
            "avg_search_seconds": "Avg. Search Time (s)",
        }
        out: List[Tuple[object, ...]] = []
        for key, label in labels.items():
            paper_c, paper_t, _ = PAPER_ROWS[key]
            out.append(
                (label, complete[key], truncated[key], paper_c, paper_t)
            )
        return out

    def render(self) -> str:
        table = format_table(
            [
                "Statistic",
                "Complete (measured)",
                "Truncated (measured)",
                "Complete (paper)",
                "Truncated (paper)",
            ],
            self.rows(),
            title=(
                f"Table 7 — scheduling {len(self.records):,} blocks "
                f"(lambda = {self.curtail:,})"
            ),
        )
        note = comparison_note(
            "98.83% complete; final NOPs 0.67 vs initial 9.50; 427 omega calls avg",
            self.summary_line(),
        )
        return f"{table}\n{note}"

    def summary_line(self) -> str:
        c = self.column(self.complete)
        return (
            f"{c['percentage']:.2f}% complete; final NOPs "
            f"{c['avg_final_nops']:.2f} vs initial {c['avg_initial_nops']:.2f}; "
            f"{c['avg_omega_calls']:.0f} omega calls avg"
        )

    def csv(self) -> str:
        return to_csv(
            ["statistic", "complete", "truncated", "paper_complete", "paper_truncated"],
            self.rows(),
        )


def run(
    n_blocks: int = None,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
) -> Table7Result:
    """Run the Table 7 experiment (scaled by ``REPRO_SCALE`` by default)."""
    if n_blocks is None:
        n_blocks = population_size()
    records = run_population(n_blocks, curtail=curtail, master_seed=master_seed)
    return Table7Result(records, curtail)


def run_from_records(records: List[BlockRecord], curtail: int) -> Table7Result:
    """Build the result from an existing population run (shared with the
    figure experiments)."""
    return Table7Result(records, curtail)
