"""Parallel population scheduling — process-pool fan-out of the corpus run.

The paper's headline experiment schedules 16,000 synthetic blocks; the
serial pass in :mod:`repro.experiments.runner` is embarrassingly
parallel across blocks but bottlenecked on one core.  This module fans
it out:

1. The parent samples the population *parameter* stream (a few RNG draws
   per block — no front end work) via
   :func:`repro.synth.population.sample_population_params`.
2. The parameters are striped round-robin into chunks, so the cost of
   large blocks spreads evenly across workers.
3. Each worker process rebuilds its blocks with
   :func:`generate_from_params` and schedules them through the same
   :func:`schedule_generated_block` step the serial runner uses,
   accumulating its own telemetry registry.
4. The parent merges records back into deterministic block-index order
   and folds every worker's telemetry into the caller's registry.

Because workers and the serial runner share one per-block code path and
the parameter stream reproduces the population bit for bit, the merged
records are identical to ``run_population``'s (wall-clock fields aside —
``BlockRecord`` equality already excludes those).

Degradation, not hangs: ``block_timeout`` bounds the wall-clock any one
block may spend in the branch-and-bound; a block that exceeds it falls
back to its list-schedule seed and is recorded ``completed=False``.
Robustness, not ceremony: ``workers=1`` — or any failure to stand the
pool up (sandboxed environments without process support, broken pools
mid-flight) — falls back to the serial runner, which produces the same
records.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple

from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..sched.search import SearchOptions
from ..synth.population import (
    BlockParams,
    PopulationSpec,
    generate_from_params,
    sample_population_params,
)
from ..telemetry import Telemetry
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    run_population,
    schedule_generated_block,
)

#: Chunks per worker: small enough to amortize submission overhead,
#: large enough that round-robin striping levels the block-size skew.
CHUNKS_PER_WORKER = 8


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the machine's cores."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _run_chunk(
    payload: Tuple[
        Sequence[BlockParams],
        MachineDescription,
        PopulationSpec,
        SearchOptions,
        Optional[float],
        bool,
    ],
) -> Tuple[List[BlockRecord], dict]:
    """Worker entry point: schedule one parameter chunk.

    Must stay a module-level function (pickled by the process pool).
    Returns the chunk's records plus the worker telemetry as a plain
    payload dict, which the parent merges.
    """
    params_chunk, machine, spec, options, block_timeout, verify = payload
    telemetry = Telemetry()
    records: List[BlockRecord] = []
    for params in params_chunk:
        gb = generate_from_params(params, spec)
        records.append(
            schedule_generated_block(
                params.index, gb, machine, options, telemetry, block_timeout,
                verify,
            )
        )
    return records, telemetry.as_dict()


def run_population_parallel(
    n_blocks: int,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
    options: Optional[SearchOptions] = None,
    workers: Optional[int] = None,
    block_timeout: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    verify: bool = False,
) -> List[BlockRecord]:
    """Schedule ``n_blocks`` synthetic blocks across a process pool.

    Drop-in parallel equivalent of :func:`run_population`: same
    parameters plus ``workers`` (default: ``REPRO_WORKERS`` or the CPU
    count) and the same record list, in block-index order.  Serial
    fallback when ``workers=1`` or the pool cannot be used.  With
    ``verify=True`` each worker certifies every published schedule
    through the independent checker; a certificate failure raises
    :class:`repro.experiments.runner.VerificationError` in the parent.
    """
    if workers is None:
        workers = default_workers()
    if machine is None:
        machine = paper_simulation_machine()
    if options is None:
        options = SearchOptions(curtail=curtail)

    def serial() -> List[BlockRecord]:
        return run_population(
            n_blocks,
            curtail,
            master_seed,
            machine,
            spec,
            options,
            telemetry,
            block_timeout,
            verify,
        )

    if workers <= 1 or n_blocks <= 1:
        return serial()

    params = list(sample_population_params(n_blocks, master_seed, spec))
    n_chunks = min(len(params), workers * CHUNKS_PER_WORKER)
    # Round-robin striping: block cost is size-skewed and sizes drift
    # along the stream, so contiguous spans would load-balance poorly.
    chunks = [params[i::n_chunks] for i in range(n_chunks)]
    payloads = [
        (chunk, machine, spec, options, block_timeout, verify)
        for chunk in chunks
    ]

    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_chunk, payloads))
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError):
        # No usable process pool (restricted sandbox, missing /dev/shm,
        # a worker killed mid-flight, ...): the records are deterministic,
        # so redoing the run serially is always safe.
        if telemetry is not None:
            telemetry.count("parallel.fallbacks")
        return serial()

    records: List[BlockRecord] = []
    for chunk_records, worker_stats in outcomes:
        records.extend(chunk_records)
        if telemetry is not None:
            telemetry.merge(worker_stats)
    records.sort(key=lambda r: r.index)
    assert len(records) == n_blocks and all(
        r.index == i for i, r in enumerate(records)
    ), "parallel merge lost or duplicated block records"
    if telemetry is not None:
        telemetry.count("blocks.scheduled", len(records))
        telemetry.count("parallel.runs")
        telemetry.count("parallel.workers", workers)
        telemetry.count("parallel.chunks", len(chunks))
    return records
