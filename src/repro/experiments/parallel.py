"""Parallel population scheduling — supervised fan-out of the corpus run.

The paper's headline experiment schedules 16,000 synthetic blocks; the
serial pass in :mod:`repro.experiments.runner` is embarrassingly
parallel across blocks but bottlenecked on one core.  This module fans
it out:

1. The parent samples the population *parameter* stream (a few RNG draws
   per block — no front end work) via
   :func:`repro.synth.population.sample_population_params`.
2. The parameters are striped round-robin into chunks, so the cost of
   large blocks spreads evenly across workers.
3. Each chunk runs in its own supervised worker process
   (:func:`_chunk_worker`): the worker rebuilds its blocks with
   :func:`generate_from_params`, schedules them through the same
   :func:`schedule_generated_block` step the serial runner uses, sends a
   heartbeat per finished block, and delivers its records plus its own
   telemetry registry in one final message.
4. The parent merges records back into deterministic block-index order
   and folds every worker's telemetry into the caller's registry.

Because workers and the serial runner share one per-block code path and
the parameter stream reproduces the population bit for bit, the merged
records are identical to ``run_population``'s (wall-clock fields aside —
``BlockRecord`` equality already excludes those).

Fault tolerance (see :mod:`repro.resilience`): each worker owns exactly
one chunk, so a crashed process (stale pipe + dead process object), a
hung one (stale heartbeat), or one returning records that fail
:func:`repro.resilience.supervisor.validate_records` blames exactly one
chunk.  Failed chunks are requeued with capped exponential backoff; a
chunk that keeps failing is **poisoned** — the parent quarantines it and
publishes its blocks' deterministic list-schedule seeds (the bottom rung
of the degradation ladder) instead of aborting the run.  Only a clean
``done`` message carries records, so a fault can never leak partial
work.  :class:`VerificationError` is the one exception that must *not*
be retried: a failed schedule certificate means the data is wrong, not
the worker, so it aborts the run.

Degradation, not hangs: ``block_timeout`` bounds the wall-clock any one
block may spend in the branch-and-bound; a block that exceeds it walks
down the degradation ladder and is recorded ``completed=False``.
Robustness, not ceremony: ``workers=1`` — or any failure to stand
worker processes up (sandboxed environments without process support) —
falls back to the serial runner, which produces the same records.
"""

from __future__ import annotations

import dataclasses
import os
import time
from multiprocessing import Pipe, Process
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..resilience.budget import BudgetManager
from ..resilience.faults import FaultPlan
from ..resilience.supervisor import (
    ChunkSupervisor,
    SupervisorConfig,
    validate_records,
)
from ..sched.search import SearchOptions
from ..synth.population import (
    BlockParams,
    PopulationSpec,
    generate_from_params,
    sample_population_params,
)
from ..telemetry import Telemetry
from .runner import (
    DEFAULT_CURTAIL,
    BlockRecord,
    VerificationError,
    list_seed_record,
    run_population,
    schedule_generated_block,
)

#: Chunks per worker: small enough to amortize submission overhead,
#: large enough that round-robin striping levels the block-size skew —
#: and, under supervision, the unit of loss: a crash costs at most one
#: chunk's worth of work.
CHUNKS_PER_WORKER = 8


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else the machine's cores."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _corrupt_records(records: List[BlockRecord]) -> List[BlockRecord]:
    """Damage a record payload so the parent's validation must catch it."""
    if not records:
        return records
    first = dataclasses.replace(records[0], final_nops=records[0].seed_nops + 7)
    return [first] + records[1:]


def _chunk_worker(
    conn,
    chunk_id: int,
    attempt: int,
    params_chunk: Sequence[BlockParams],
    machine: MachineDescription,
    spec: PopulationSpec,
    options: SearchOptions,
    block_timeout: Optional[float],
    verify: bool,
    budget: Optional[BudgetManager],
    fault_plan: Optional[FaultPlan],
    cache=None,
) -> None:
    """Worker entry point: schedule one parameter chunk.

    Protocol (messages over ``conn``):

    * ``("hb", chunk_id, k)`` after each scheduled block — the progress
      heartbeat the supervisor watches.  Progress, not liveness: a worker
      spinning uselessly inside one block goes as stale as a dead one.
    * ``("done", chunk_id, records, telemetry_dict)`` exactly once on
      success — the *only* message that carries records, so partial work
      from a faulted attempt can never be merged.
    * ``("fatal", chunk_id, message)`` for a failed schedule certificate:
      retrying would reproduce it (the records, not the worker, are
      wrong), so the parent must abort, not requeue.

    When a :class:`FaultPlan` schedules a fault for this ``(chunk_id,
    attempt)``, it triggers at the chunk's midpoint — after real work has
    been done — so recovery is exercised against partial state, not idle
    workers.
    """
    fault = fault_plan.decide(chunk_id, attempt) if fault_plan is not None else None
    fault_at = len(params_chunk) // 2
    telemetry = Telemetry()
    records: List[BlockRecord] = []
    try:
        for k, params in enumerate(params_chunk):
            if fault in ("crash", "hang") and k == fault_at:
                fault_plan.inject(fault)
            gb = generate_from_params(params, spec)
            records.append(
                schedule_generated_block(
                    params.index,
                    gb,
                    machine,
                    options,
                    telemetry,
                    block_timeout,
                    verify,
                    budget=budget,
                    cache=cache,
                )
            )
            conn.send(("hb", chunk_id, k))
        if fault == "corrupt":
            records = _corrupt_records(records)
        conn.send(("done", chunk_id, records, telemetry.as_dict()))
    except VerificationError as exc:
        conn.send(("fatal", chunk_id, str(exc)))
    finally:
        conn.close()


class _Running:
    """One live worker: its process, pipe, and freshest heartbeat."""

    __slots__ = ("process", "conn", "last_beat")

    def __init__(self, process, conn, now: float):
        self.process = process
        self.conn = conn
        self.last_beat = now


def _stop_worker(worker: _Running) -> None:
    try:
        worker.conn.close()
    except OSError:
        pass
    if worker.process.is_alive():
        worker.process.terminate()
    worker.process.join(timeout=5.0)


def run_population_parallel(
    n_blocks: int,
    curtail: int = DEFAULT_CURTAIL,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
    options: Optional[SearchOptions] = None,
    workers: Optional[int] = None,
    block_timeout: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    verify: bool = False,
    done: Optional[Mapping[int, BlockRecord]] = None,
    on_records: Optional[Callable[[Sequence[BlockRecord]], None]] = None,
    budget: Optional[BudgetManager] = None,
    supervisor: Optional[SupervisorConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    cache=None,
) -> List[BlockRecord]:
    """Schedule ``n_blocks`` synthetic blocks across supervised workers.

    Drop-in parallel equivalent of :func:`run_population`: same
    parameters plus ``workers`` (default: ``REPRO_WORKERS`` or the CPU
    count) and the same record list, in block-index order.  Serial
    fallback when ``workers=1`` or worker processes cannot be started.
    With ``verify=True`` each worker certifies every published schedule
    through the independent checker; a certificate failure raises
    :class:`repro.experiments.runner.VerificationError` in the parent.

    Resilience (all optional; see :func:`repro.experiments.runner.run_population`
    for ``done``/``budget`` semantics):

    * ``done`` — journal-recovered records whose blocks are skipped.
    * ``on_records`` — called with each chunk of freshly scheduled
      records as it is accepted (including poison-quarantine seeds);
      the CLI points this at the checkpoint journal.
    * ``budget`` — run budgets: the armed wall-clock deadline crosses
      into workers (``time.monotonic`` is system-wide), so blocks past
      the deadline degrade inside workers exactly as they would
      serially; the run-level Ω cap is enforced by the parent at chunk
      granularity (workers cannot see each other's spend).
    * ``supervisor`` — heartbeat/retry/poison policy knobs.
    * ``fault_plan`` — deterministic fault injection for chaos tests.
    * ``cache`` — a :class:`repro.service.cache.ScheduleCache`; each
      worker re-opens the same disk store (the pickle form carries only
      the store path), so canonical forms solved by any worker — or any
      earlier run — are served instead of re-searched.
    """
    if workers is None:
        workers = default_workers()
    if machine is None:
        machine = paper_simulation_machine()
    if options is None:
        options = SearchOptions(curtail=curtail)
    if options.engine in ("vector", "native"):
        from ..sched.core import resolve_engine

        # Normalize in the parent rather than letting every worker
        # discover the missing dependency (NumPy / a C compiler) on its
        # own: one warning line per run, byte-identical records, never a
        # crash.
        resolved = resolve_engine(options.engine, telemetry=telemetry)
        if resolved != options.engine:
            options = dataclasses.replace(options, engine=resolved)
    if supervisor is None:
        supervisor = SupervisorConfig()
    if budget is not None:
        budget.start()

    def serial() -> List[BlockRecord]:
        return run_population(
            n_blocks,
            curtail,
            master_seed,
            machine,
            spec,
            options,
            telemetry,
            block_timeout,
            verify,
            done=done,
            on_record=(
                None if on_records is None else (lambda r: on_records([r]))
            ),
            budget=budget,
            cache=cache,
        )

    if workers <= 1 or n_blocks <= 1:
        return serial()

    all_params = list(sample_population_params(n_blocks, master_seed, spec))
    if done:
        params = [p for p in all_params if p.index not in done]
    else:
        params = all_params
    skipped = n_blocks - len(params)

    records: List[BlockRecord] = [done[p.index] for p in all_params if done and p.index in done]

    if params:
        n_chunks = min(len(params), workers * CHUNKS_PER_WORKER)
        # Round-robin striping: block cost is size-skewed and sizes drift
        # along the stream, so contiguous spans would load-balance poorly.
        chunks = [params[i::n_chunks] for i in range(n_chunks)]
        try:
            fresh = _run_supervised(
                chunks,
                machine,
                spec,
                options,
                block_timeout,
                verify,
                workers,
                telemetry,
                on_records,
                budget,
                supervisor,
                fault_plan,
                cache,
            )
        except (OSError, PermissionError, RuntimeError):
            # Worker processes cannot be stood up (restricted sandbox,
            # missing /dev/shm, fork limits): the records are
            # deterministic, so redoing the run serially is always safe.
            if telemetry is not None:
                telemetry.count("parallel.fallbacks")
            return serial()
        records.extend(fresh)
        if telemetry is not None:
            telemetry.count("parallel.runs")
            telemetry.count("parallel.workers", workers)
            telemetry.count("parallel.chunks", len(chunks))

    records.sort(key=lambda r: r.index)
    assert len(records) == n_blocks and all(
        r.index == i for i, r in enumerate(records)
    ), "parallel merge lost or duplicated block records"
    if telemetry is not None:
        telemetry.count("blocks.scheduled", n_blocks - skipped)
        if skipped:
            telemetry.count("resilience.journal_blocks_skipped", skipped)
    return records


def _run_supervised(
    chunks: List[List[BlockParams]],
    machine: MachineDescription,
    spec: PopulationSpec,
    options: SearchOptions,
    block_timeout: Optional[float],
    verify: bool,
    workers: int,
    telemetry: Optional[Telemetry],
    on_records: Optional[Callable[[Sequence[BlockRecord]], None]],
    budget: Optional[BudgetManager],
    config: SupervisorConfig,
    fault_plan: Optional[FaultPlan],
    cache=None,
) -> List[BlockRecord]:
    """Drive the chunk fleet to completion under supervision.

    The loop: launch ready chunks into free worker slots, wait briefly
    for messages, accept validated results, detect crashed/hung workers,
    requeue or poison their chunks.  Raises :class:`VerificationError`
    on a worker's ``fatal`` message and lets process-spawn errors
    propagate (the caller falls back to the serial runner).
    """
    sup = ChunkSupervisor(len(chunks), config)
    running: Dict[int, _Running] = {}
    records: List[BlockRecord] = []

    def accept(cid: int, chunk_records: List[BlockRecord], stats: dict) -> None:
        sup.note_success(cid)
        records.extend(chunk_records)
        if telemetry is not None:
            telemetry.merge(stats)
        if budget is not None:
            budget.charge(sum(r.omega_calls for r in chunk_records))
        if on_records is not None:
            on_records(chunk_records)

    def quarantine(cid: int) -> None:
        """Poisoned chunk: publish deterministic list seeds, keep going."""
        seeds = [
            list_seed_record(
                p.index, generate_from_params(p, spec), machine, telemetry
            )
            for p in chunks[cid]
        ]
        records.extend(seeds)
        if telemetry is not None:
            telemetry.count("resilience.poison_chunks")
            telemetry.count("resilience.poison_blocks", len(seeds))
        if on_records is not None:
            on_records(seeds)

    def fail(cid: int, kind: str, counter: str, now: float) -> None:
        if telemetry is not None:
            telemetry.count(counter)
        if sup.note_failure(cid, kind, now) == "poison":
            quarantine(cid)
        elif telemetry is not None:
            telemetry.count("resilience.chunk_retries")

    try:
        while not sup.finished():
            now = time.monotonic()
            while len(running) < workers:
                cid = sup.next_ready(now)
                if cid is None:
                    break
                parent_conn, child_conn = Pipe(duplex=False)
                proc = Process(
                    target=_chunk_worker,
                    args=(
                        child_conn,
                        cid,
                        sup.attempts[cid],
                        chunks[cid],
                        machine,
                        spec,
                        options,
                        block_timeout,
                        verify,
                        budget,
                        fault_plan,
                        cache,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                running[cid] = _Running(proc, parent_conn, now)

            if running:
                mp_connection.wait(
                    [w.conn for w in running.values()],
                    timeout=config.poll_interval,
                )
            elif not sup.finished():
                time.sleep(max(config.poll_interval, sup.sleep_hint(now)))
                continue

            now = time.monotonic()
            for cid in list(running):
                worker = running[cid]
                finished = False
                failure: Optional[Tuple[str, str]] = None
                try:
                    while worker.conn.poll():
                        msg = worker.conn.recv()
                        if msg[0] == "hb":
                            worker.last_beat = now
                        elif msg[0] == "done":
                            _, _, chunk_records, stats = msg
                            reason = validate_records(
                                chunk_records, [p.index for p in chunks[cid]]
                            )
                            if reason is None:
                                accept(cid, chunk_records, stats)
                            else:
                                failure = (
                                    f"invalid records: {reason}",
                                    "resilience.corrupted_records",
                                )
                            finished = True
                            break
                        elif msg[0] == "fatal":
                            for other in running.values():
                                _stop_worker(other)
                            raise VerificationError(msg[2])
                except (EOFError, OSError):
                    failure = ("connection lost", "resilience.crashes_detected")
                    finished = True
                if not finished:
                    if not worker.process.is_alive():
                        failure = (
                            f"worker died (exit {worker.process.exitcode})",
                            "resilience.crashes_detected",
                        )
                        finished = True
                    elif now - worker.last_beat > config.hang_timeout:
                        failure = (
                            f"no heartbeat for {config.hang_timeout:g}s",
                            "resilience.hangs_detected",
                        )
                        finished = True
                if finished:
                    _stop_worker(worker)
                    del running[cid]
                    if failure is not None:
                        fail(cid, failure[0], failure[1], time.monotonic())

            if budget is not None and budget.run_exhausted() is not None:
                # Run budget gone: degrade every not-yet-started chunk to
                # list seeds.  In-flight chunks finish under their own
                # (worker-side) deadline checks.
                for cid in sup.drain_pending():
                    if telemetry is not None:
                        telemetry.count(
                            "resilience.run_budget_exhausted", len(chunks[cid])
                        )
                    sup.note_success(cid)
                    seeds = [
                        list_seed_record(
                            p.index,
                            generate_from_params(p, spec),
                            machine,
                            telemetry,
                        )
                        for p in chunks[cid]
                    ]
                    records.extend(seeds)
                    if on_records is not None:
                        on_records(seeds)
    finally:
        for worker in running.values():
            _stop_worker(worker)

    return records
