"""Ablation experiments (A1 and A2 in DESIGN.md).

**A1 — pruning contributions.**  The paper's claim is that each heuristic
"prunes the search space dramatically" without sacrificing optimality.
We quantify every prune's contribution by switching it off individually
(and by degrading the seed to program order), measuring completion rate
and Ω calls on a shared block population.  Because all prunes are
optimality-preserving, the *final NOPs of completed searches never
change* across configurations — the harness asserts this.

**A2 — curtail-point sensitivity.**  Section 5.3: for truncated searches,
"increasing the runtime curtail point by fifty fold did not cause the
search to run to completion ... however, neither did the best schedule
change", i.e. the search converges to near-optimal long before it can
prove optimality.  We re-run every truncated block at multiples of λ and
report how often the schedule improves at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..sched.search import SearchOptions, schedule_block
from ..synth.population import PopulationSpec, sample_population
from .report import format_table, to_csv
from .runner import mean

#: The prune/seed configurations compared by A1.
A1_CONFIGS: Tuple[Tuple[str, SearchOptions], ...] = (
    ("all prunes (default)", SearchOptions()),
    ("no alpha-beta", SearchOptions(alpha_beta=False)),
    ("no equivalence (5c)", SearchOptions(equivalence_prune=False)),
    ("no lower bounds", SearchOptions(lower_bound_prune=False)),
    ("no dominance memo", SearchOptions(dominance_prune=False)),
    ("no heuristic seeds", SearchOptions(heuristic_seeds=False)),
    ("program-order seed", SearchOptions(seed_with_list_schedule=False)),
    ("seed-order candidates", SearchOptions(cheapest_first=False)),
    ("paper prunes only", SearchOptions.paper()),
)


@dataclass(frozen=True)
class AblationRow:
    label: str
    completed_pct: float
    avg_omega: float
    median_omega: float
    avg_final_nops: float
    avg_seconds: float


@dataclass(frozen=True)
class A1Result:
    rows: List[AblationRow]
    n_blocks: int
    curtail: int
    optimality_consistent: bool  # completed searches agree across configs

    def render(self) -> str:
        table = format_table(
            ["configuration", "% complete", "avg omega", "median omega",
             "avg final NOPs", "avg s/block"],
            [
                (r.label, f"{r.completed_pct:.1f}", r.avg_omega,
                 r.median_omega, r.avg_final_nops, f"{r.avg_seconds:.4f}")
                for r in self.rows
            ],
            title=(
                f"A1 — pruning ablation over {self.n_blocks} blocks "
                f"(lambda = {self.curtail:,})"
            ),
        )
        check = (
            "optimality check: all configurations agree on every "
            "mutually-completed block (prunes are optimality-preserving)"
            if self.optimality_consistent
            else "WARNING: configurations disagreed on a completed block!"
        )
        return f"{table}\n{check}"

    def csv(self) -> str:
        return to_csv(
            ["configuration", "completed_pct", "avg_omega", "median_omega",
             "avg_final_nops", "avg_seconds"],
            [
                (r.label, r.completed_pct, r.avg_omega, r.median_omega,
                 r.avg_final_nops, r.avg_seconds)
                for r in self.rows
            ],
        )


def run_a1(
    n_blocks: int = 300,
    curtail: int = 20_000,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> A1Result:
    if machine is None:
        machine = paper_simulation_machine()
    dags = [
        DependenceDAG(gb.block)
        for gb in sample_population(n_blocks, master_seed, spec)
        if len(gb.block) > 0
    ]
    rows: List[AblationRow] = []
    # per-block final NOPs of *completed* searches, per config, for the
    # optimality-consistency cross-check.
    completed_finals: List[Dict[int, int]] = []
    for label, base in A1_CONFIGS:
        options = replace(base, curtail=curtail)
        omegas: List[int] = []
        finals: List[int] = []
        seconds: List[float] = []
        done = 0
        finals_map: Dict[int, int] = {}
        for idx, dag in enumerate(dags):
            result = schedule_block(dag, machine, options)
            omegas.append(result.omega_calls)
            finals.append(result.final_nops)
            seconds.append(result.elapsed_seconds)
            if result.completed:
                done += 1
                finals_map[idx] = result.final_nops
        completed_finals.append(finals_map)
        omegas_sorted = sorted(omegas)
        rows.append(
            AblationRow(
                label=label,
                completed_pct=100.0 * done / len(dags),
                avg_omega=mean(omegas),
                median_omega=omegas_sorted[len(omegas_sorted) // 2],
                avg_final_nops=mean(finals),
                avg_seconds=mean(seconds),
            )
        )
    consistent = True
    reference = completed_finals[0]
    for finals_map in completed_finals[1:]:
        for idx, nops in finals_map.items():
            if idx in reference and reference[idx] != nops:
                consistent = False
    return A1Result(rows, len(dags), curtail, consistent)


# ----------------------------------------------------------------------
# A2 — curtail sensitivity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class A2Row:
    multiplier: int
    curtail: int
    still_truncated: int
    improved: int
    avg_final_nops: float


@dataclass(frozen=True)
class A2Result:
    rows: List[A2Row]
    n_truncated: int
    base_curtail: int

    def render(self) -> str:
        table = format_table(
            ["lambda multiplier", "lambda", "still truncated", "schedules improved",
             "avg final NOPs"],
            [
                (f"x{r.multiplier}", r.curtail, r.still_truncated, r.improved,
                 r.avg_final_nops)
                for r in self.rows
            ],
            title=(
                f"A2 — curtail sensitivity on {self.n_truncated} truncated "
                f"blocks (base lambda = {self.base_curtail:,})"
            ),
        )
        return (
            f"{table}\npaper: a fifty-fold larger lambda neither completed the "
            "searches nor changed the best schedules found"
        )

    def csv(self) -> str:
        return to_csv(
            ["multiplier", "curtail", "still_truncated", "improved", "avg_final_nops"],
            [
                (r.multiplier, r.curtail, r.still_truncated, r.improved,
                 r.avg_final_nops)
                for r in self.rows
            ],
        )


def run_a2(
    n_blocks: int = 2_000,
    base_curtail: int = 2_000,
    multipliers: Tuple[int, ...] = (1, 10, 50),
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> A2Result:
    """Find truncated blocks at a modest λ, then raise λ and watch.

    A deliberately small ``base_curtail`` is used so that truncation
    actually occurs often enough to study (at production λ almost nothing
    truncates — Table 7).
    """
    if machine is None:
        machine = paper_simulation_machine()
    truncated: List[Tuple[DependenceDAG, int]] = []
    base = SearchOptions(curtail=base_curtail)
    for gb in sample_population(n_blocks, master_seed, spec):
        if len(gb.block) == 0:
            continue
        dag = DependenceDAG(gb.block)
        result = schedule_block(dag, machine, base)
        if not result.completed:
            truncated.append((dag, result.final_nops))

    rows: List[A2Row] = []
    for multiplier in multipliers:
        options = SearchOptions(curtail=base_curtail * multiplier)
        still = 0
        improved = 0
        finals: List[int] = []
        for dag, base_nops in truncated:
            result = schedule_block(dag, machine, options)
            finals.append(result.final_nops)
            if not result.completed:
                still += 1
            if result.final_nops < base_nops:
                improved += 1
        rows.append(
            A2Row(
                multiplier=multiplier,
                curtail=base_curtail * multiplier,
                still_truncated=still,
                improved=improved,
                avg_final_nops=mean(finals),
            )
        )
    return A2Result(rows, len(truncated), base_curtail)
