"""Extension experiments (X1 and X2 in DESIGN.md).

**X1 — multi-pipeline selection** (paper footnote 3 / section 6).  On the
Tables 2+3 example machine (two loaders, two adders, one multiplier) the
published algorithm must pin each operation class to one pipeline; the
extension searches over the assignment jointly with the order.  Compared
policies: first-pipeline pinning, round-robin pinning, and the joint
search — measured by NOPs and issue-span cycles.

**X2 — block splitting** (section 5.3).  "For very large basic blocks,
it might be useful to split the basic blocks into smaller sections ...
and find solutions which are locally optimal.  A good heuristic for the
split might be to simply partition the list schedule."  We schedule
40-80-instruction blocks monolithically (bounded search) and with the
splitting scheduler, comparing NOPs and Ω calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_example_machine, paper_simulation_machine
from ..sched.multi import (
    first_pipeline_assignment,
    round_robin_assignment,
    schedule_block_multi,
)
from ..sched.search import SearchOptions, schedule_block
from ..sched.splitting import schedule_block_split
from ..synth.population import PopulationSpec, sample_population
from .report import format_table, to_csv
from .runner import mean


# ----------------------------------------------------------------------
# X1 — multi-pipeline selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class X1Row:
    machine: str
    policy: str
    avg_nops: float
    avg_span_cycles: float
    avg_omega: float
    wins: int  # blocks where this policy strictly beat first-pipeline


@dataclass(frozen=True)
class X1Result:
    rows: List[X1Row]
    n_blocks: int
    joint_never_loses: bool

    def render(self) -> str:
        table = format_table(
            ["machine", "assignment policy", "avg NOPs", "avg span (cycles)",
             "avg omega", "blocks beating pinned"],
            [
                (r.machine, r.policy, r.avg_nops, r.avg_span_cycles,
                 r.avg_omega, r.wins)
                for r in self.rows
            ],
            title=f"X1 — pipeline selection ({self.n_blocks} blocks per machine)",
        )
        check = (
            "dominance check: joint search never produced more NOPs than "
            "either pinned policy"
            if self.joint_never_loses
            else "WARNING: joint search lost to a pinned policy on some block!"
        )
        return (
            f"{table}\n{check}\n"
            "on identical twins (Tables 2+3) an optimal order compensates "
            "for any spreading policy; on asymmetric units the joint search "
            "finds schedules no static pinning can reach (footnote 3's "
            "unsupported feature, realized)"
        )

    def csv(self) -> str:
        return to_csv(
            ["machine", "policy", "avg_nops", "avg_span", "avg_omega", "wins"],
            [(r.machine, r.policy, r.avg_nops, r.avg_span_cycles, r.avg_omega,
              r.wins) for r in self.rows],
        )


def run_x1(
    n_blocks: int = 100,
    curtail: int = 30_000,
    master_seed: int = 2023,
    machines: Optional[List[MachineDescription]] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> X1Result:
    if machines is None:
        from ..machine.presets import asymmetric_units_machine

        machines = [paper_example_machine(), asymmetric_units_machine()]
    options = SearchOptions(curtail=curtail)
    rows: List[X1Row] = []
    joint_never_loses = True
    for machine in machines:
        per_policy: dict[str, List[Tuple[int, int, int]]] = {
            "first-pipeline (pinned)": [],
            "round-robin (pinned)": [],
            "joint search (extension)": [],
        }
        for gb in sample_population(n_blocks, master_seed, spec):
            if len(gb.block) == 0:
                continue
            dag = DependenceDAG(gb.block)
            n = len(dag)
            first = schedule_block(
                dag, machine, options,
                assignment=first_pipeline_assignment(dag, machine),
            )
            per_policy["first-pipeline (pinned)"].append(
                (first.final_nops, n + first.final_nops, first.omega_calls)
            )
            rr = schedule_block(
                dag, machine, options,
                assignment=round_robin_assignment(dag, machine),
            )
            per_policy["round-robin (pinned)"].append(
                (rr.final_nops, n + rr.final_nops, rr.omega_calls)
            )
            joint = schedule_block_multi(
                dag,
                machine,
                options,
                extra_incumbents=[
                    (first.best.order, first_pipeline_assignment(dag, machine)),
                    (rr.best.order, round_robin_assignment(dag, machine)),
                ],
            )
            per_policy["joint search (extension)"].append(
                (joint.total_nops, joint.issue_span_cycles, joint.omega_calls)
            )
            if joint.total_nops > min(first.final_nops, rr.final_nops):
                joint_never_loses = False

        baseline = per_policy["first-pipeline (pinned)"]
        for policy, results in per_policy.items():
            wins = sum(
                1 for (nops, _, _), (bnops, _, _) in zip(results, baseline)
                if nops < bnops
            )
            rows.append(
                X1Row(
                    machine=machine.name,
                    policy=policy,
                    avg_nops=mean(r[0] for r in results),
                    avg_span_cycles=mean(r[1] for r in results),
                    avg_omega=mean(r[2] for r in results),
                    wins=wins,
                )
            )
    return X1Result(rows, n_blocks, joint_never_loses)


# ----------------------------------------------------------------------
# X2 — block splitting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class X2Row:
    label: str
    avg_nops: float
    avg_omega: float
    max_omega: int
    optimal_or_all_windows: float  # % runs completing (monolithic) / all windows local-opt


@dataclass(frozen=True)
class X2Result:
    rows: List[X2Row]
    n_blocks: int
    avg_size: float
    window: int

    def render(self) -> str:
        table = format_table(
            ["scheduler", "avg NOPs", "avg omega", "max omega", "% complete"],
            [(r.label, r.avg_nops, r.avg_omega, r.max_omega,
              f"{r.optimal_or_all_windows:.0f}")
             for r in self.rows],
            title=(
                f"X2 — block splitting on {self.n_blocks} large blocks "
                f"(avg {self.avg_size:.1f} instructions, window {self.window})"
            ),
        )
        return (
            f"{table}\nsection 5.3's proposal, quantified: splitting bounds "
            "the worst-case search (its omega ceiling is windows x lambda) at "
            "a small NOP premium; with the full prune set the monolithic "
            "search is cheap even at this size, so splitting only pays under "
            "1990-era pruning"
        )

    def csv(self) -> str:
        return to_csv(
            ["scheduler", "avg_nops", "avg_omega", "max_omega", "pct_complete"],
            [(r.label, r.avg_nops, r.avg_omega, r.max_omega,
              r.optimal_or_all_windows)
             for r in self.rows],
        )


def run_x2(
    n_blocks: int = 30,
    window: int = 20,
    curtail: int = 50_000,
    master_seed: int = 7,
    machine: Optional[MachineDescription] = None,
) -> X2Result:
    """Schedule large blocks three ways: monolithically with the paper's
    prune set (the 1990 situation section 5.3 worries about),
    monolithically with the full prune set, and window-by-window."""
    if machine is None:
        machine = paper_simulation_machine()
    # A population skewed to large blocks (40-80 instructions); a wide
    # variable pool keeps dead-store elimination from shrinking them.
    spec = PopulationSpec(
        statement_shape=30.0,
        statement_scale=1.6,
        min_statements=30,
        max_statements=80,
        min_variables=10,
        max_variables=24,
        min_constants=4,
        max_constants=10,
    )
    paper_mono: List[Tuple[int, int, bool]] = []
    full_mono: List[Tuple[int, int, bool]] = []
    split: List[Tuple[int, int, bool]] = []
    sizes: List[int] = []
    for gb in sample_population(n_blocks * 4, master_seed, spec):
        if len(gb.block) < 40:
            continue
        if len(sizes) >= n_blocks:
            break
        dag = DependenceDAG(gb.block)
        sizes.append(len(dag))
        p = schedule_block(dag, machine, SearchOptions.paper(curtail=curtail))
        paper_mono.append((p.final_nops, p.omega_calls, p.completed))
        f = schedule_block(dag, machine, SearchOptions(curtail=curtail))
        full_mono.append((f.final_nops, f.omega_calls, f.completed))
        s = schedule_block_split(
            dag, machine, window=window, curtail_per_window=curtail // 10
        )
        split.append((s.total_nops, s.omega_calls, s.all_windows_completed))

    def row(label: str, results: List[Tuple[int, int, bool]]) -> X2Row:
        return X2Row(
            label,
            mean(r[0] for r in results),
            mean(r[1] for r in results),
            max(r[1] for r in results),
            100.0 * sum(r[2] for r in results) / max(1, len(results)),
        )

    rows = [
        row("monolithic, paper prunes", paper_mono),
        row("monolithic, all prunes", full_mono),
        row(f"split (window={window})", split),
    ]
    return X2Result(rows, len(sizes), mean(sizes), window)
