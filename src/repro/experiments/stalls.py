"""Experiment S — stall taxonomy before and after optimal scheduling.

Section 2.1 distinguishes the two reasons an instruction waits —
*dependence* (latency) and *conflict* (enqueue time) — and notes they
"generally do not imply the same amount of delay".  This experiment
classifies every NOP in the corpus by its binding cause
(``repro.analysis.explain_schedule``) under the front end's emission
order and under the optimal schedule, answering a question the paper
leaves implicit: *which kind of stall does optimal scheduling actually
remove?*

Expected shape (and what we find): naive code stalls almost entirely on
dependences — on-demand loading puts consumers right behind producers —
and optimal scheduling eliminates the bulk of those; conflicts are a
minor term on the Tables 4+5 machine (loader enqueue 1 never conflicts;
only back-to-back multiplies can) and are also the stalls least amenable
to reordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.timeline import explain_schedule, stall_breakdown
from ..ir.dag import DependenceDAG
from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..sched.list_scheduler import program_order
from ..sched.nop_insertion import compute_timing
from ..sched.search import SearchOptions, schedule_block
from ..synth.population import PopulationSpec, sample_population
from .report import format_table, to_csv

CAUSES = ("dependence", "conflict")


@dataclass(frozen=True)
class StallsResult:
    naive: Dict[str, int]  # cause -> total NOPs, program order
    optimal: Dict[str, int]  # cause -> total NOPs, optimal schedule
    n_blocks: int
    machine_name: str

    def removed_pct(self, cause: str) -> float:
        before = self.naive.get(cause, 0)
        after = self.optimal.get(cause, 0)
        return 100.0 * (before - after) / before if before else 0.0

    def render(self) -> str:
        rows = []
        for cause in CAUSES:
            rows.append(
                (
                    cause,
                    self.naive.get(cause, 0),
                    self.optimal.get(cause, 0),
                    f"{self.removed_pct(cause):.1f}%",
                )
            )
        total_naive = sum(self.naive.values())
        total_optimal = sum(self.optimal.values())
        rows.append(
            (
                "total",
                total_naive,
                total_optimal,
                f"{100.0 * (total_naive - total_optimal) / max(1, total_naive):.1f}%",
            )
        )
        table = format_table(
            ["stall cause", "naive NOPs", "optimal NOPs", "removed"],
            rows,
            title=(
                f"S — stall taxonomy over {self.n_blocks} blocks "
                f"({self.machine_name})"
            ),
        )
        return (
            f"{table}\n"
            "section 2.1's taxonomy, quantified: on-demand emission stalls "
            "on dependences; scheduling hides them behind independent work, "
            "while conflict stalls (same-pipeline spacing) are both rarer "
            "and harder to remove"
        )

    def csv(self) -> str:
        return to_csv(
            ["cause", "naive_nops", "optimal_nops", "removed_pct"],
            [
                (c, self.naive.get(c, 0), self.optimal.get(c, 0),
                 round(self.removed_pct(c), 2))
                for c in CAUSES
            ],
        )


def run(
    n_blocks: int = 300,
    curtail: int = 20_000,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> StallsResult:
    if machine is None:
        machine = paper_simulation_machine()
    options = SearchOptions(curtail=curtail)
    naive_totals: Dict[str, int] = {}
    optimal_totals: Dict[str, int] = {}
    count = 0
    for gb in sample_population(n_blocks, master_seed, spec):
        block = gb.block
        if len(block) < 2:
            continue
        count += 1
        dag = DependenceDAG(block)
        naive = compute_timing(dag, program_order(dag), machine)
        for cause, nops in stall_breakdown(
            explain_schedule(block, machine, naive, dag=dag)
        ).items():
            naive_totals[cause] = naive_totals.get(cause, 0) + nops
        best = schedule_block(dag, machine, options).best
        for cause, nops in stall_breakdown(
            explain_schedule(block, machine, best, dag=dag)
        ).items():
            optimal_totals[cause] = optimal_totals.get(cause, 0) + nops
    return StallsResult(naive_totals, optimal_totals, count, machine.name)
