"""Experiment A3 — prepass vs postpass scheduling (sections 1 and 3.4).

The paper's structural argument: previous schedulers are "postpass
reorganizers" on register-allocated assembly, where "the register
assignment can impose unnecessary restrictions on the schedule,
resulting in unnecessary execution delays"; this work schedules the
register-free tuple form and allocates afterwards.

The experiment isolates that delta exactly: the same optimal search runs
(a) on the true dependence DAG under a fair register budget (prepass —
the paper's design) and (b) on the DAG plus the anti/output edges a
program-order register allocation induces (postpass — the prior art).
Any NOP difference is attributable purely to scheduling *after*
allocation — no heuristic noise on either side.

Swept over register-file sizes: the tighter the file, the more reuse,
the more artificial serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..machine.machine import MachineDescription
from ..machine.presets import paper_simulation_machine
from ..postpass.registers import compare_prepass_postpass
from ..regalloc.liveness import max_live
from ..regalloc.spill import insert_spill_code
from ..sched.search import SearchOptions
from ..synth.population import PopulationSpec, sample_population
from .report import format_table, to_csv
from .runner import mean


@dataclass(frozen=True)
class A3Row:
    registers: str  # "tightest" or a number
    blocks: int
    avg_reuse_edges: float
    avg_prepass_nops: float
    avg_postpass_nops: float
    avg_penalty: float
    blocks_penalized_pct: float


@dataclass(frozen=True)
class A3Result:
    rows: List[A3Row]
    penalty_never_negative: bool

    def render(self) -> str:
        table = format_table(
            ["register file", "blocks", "avg reuse edges",
             "prepass NOPs", "postpass NOPs", "penalty", "% blocks hurt"],
            [
                (r.registers, r.blocks, r.avg_reuse_edges,
                 r.avg_prepass_nops, r.avg_postpass_nops, r.avg_penalty,
                 f"{r.blocks_penalized_pct:.0f}")
                for r in self.rows
            ],
            title="A3 — prepass (paper) vs postpass (prior art) scheduling",
        )
        check = (
            "sanity: postpass never beat prepass (its legal schedules are "
            "a subset)"
            if self.penalty_never_negative
            else "WARNING: postpass beat prepass somewhere — investigate!"
        )
        return (
            f"{table}\n{check}\n"
            "paper's claim (sections 1, 3.4): register assignment before "
            "scheduling imposes unnecessary restrictions; the penalty "
            "column is that cost, isolated"
        )

    def csv(self) -> str:
        return to_csv(
            ["registers", "blocks", "avg_reuse_edges", "prepass_nops",
             "postpass_nops", "penalty", "pct_blocks_hurt"],
            [
                (r.registers, r.blocks, r.avg_reuse_edges,
                 r.avg_prepass_nops, r.avg_postpass_nops, r.avg_penalty,
                 r.blocks_penalized_pct)
                for r in self.rows
            ],
        )


def run_a3(
    n_blocks: int = 150,
    register_files: Tuple[Optional[int], ...] = (None, 4, 6, 8),
    curtail: int = 30_000,
    master_seed: int = 1990,
    machine: Optional[MachineDescription] = None,
    spec: PopulationSpec = PopulationSpec(),
) -> A3Result:
    """Run the prepass-vs-postpass sweep.

    ``None`` in ``register_files`` means "tightest spill-free file"
    (exactly max-live registers, maximum reuse pressure).  Fixed sizes
    smaller than a block's pressure get spill code first, as any real
    compiler would.
    """
    if machine is None:
        machine = paper_simulation_machine()
    options = SearchOptions(curtail=curtail)
    blocks = [
        gb.block
        for gb in sample_population(n_blocks, master_seed, spec)
        if len(gb.block) > 1
    ]
    rows: List[A3Row] = []
    never_negative = True
    for k in register_files:
        penalties: List[int] = []
        pre: List[int] = []
        post: List[int] = []
        edges: List[int] = []
        for block in blocks:
            if k is not None and max_live(block) > k:
                block = insert_spill_code(block, k).block
            comparison = compare_prepass_postpass(block, machine, k, options)
            penalties.append(comparison.delay_penalty)
            pre.append(comparison.prepass.final_nops)
            post.append(comparison.postpass.final_nops)
            edges.append(comparison.reuse_edges)
            if comparison.delay_penalty < 0:
                never_negative = False
        rows.append(
            A3Row(
                registers="tightest" if k is None else str(k),
                blocks=len(penalties),
                avg_reuse_edges=mean(edges),
                avg_prepass_nops=mean(pre),
                avg_postpass_nops=mean(post),
                avg_penalty=mean(penalties),
                blocks_penalized_pct=100.0
                * sum(p > 0 for p in penalties)
                / max(1, len(penalties)),
            )
        )
    return A3Result(rows, never_negative)
