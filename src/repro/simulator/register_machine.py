"""A register-level machine: executes *generated assembly*, not tuples.

The tuple-level simulator (:mod:`repro.simulator.core`) shares the
block/DAG data structures with the compiler; this machine does not.  It
knows only what hardware knows — mnemonics, register numbers, variable
names, and the pipeline tables — making it a fully independent check of
the compiler's actual artifact: the assembly text, parsed back by
:mod:`repro.codegen.asmparser`, must execute hazard-free and compute the
source program's semantics.

Hazard model (scoreboard semantics, matching §2.1 exactly):

* each register carries ``(value, ready_at)``: a write at issue cycle t
  with producer latency L binds the register immediately (in-order issue
  serializes WAW/WAR) but marks the value unreadable before ``t + L``;
* reading a register before its ``ready_at`` is a dependence hazard;
* each pipeline refuses a second enqueue within its enqueue time;
* memory behaves like one more destination: a store's variable is
  unreadable before ``issue + store latency``.

Two modes, as in the tuple simulator: *implicit* (hardware stalls) and
*padded/explicit* (the instruction stream's waits must already suffice;
violations raise :class:`RegisterHazardError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..codegen.asmparser import AsmInstruction, parse_assembly
from ..ir.ops import Opcode
from ..machine.machine import UNPIPELINED_LATENCY, MachineDescription
from ..sched.nop_insertion import InitialConditions


class RegisterHazardError(RuntimeError):
    """The assembly under-waited: a hazard reached the register machine."""


@dataclass(frozen=True)
class RegisterTrace:
    """Result of executing an assembly program."""

    total_cycles: int  # cycle after the last issue
    stall_cycles: int  # waits consumed (padded) or stalls inserted (implicit)
    memory: Dict[str, object]
    registers: Dict[int, object]
    issue_cycles: Tuple[int, ...]


class RegisterMachine:
    """Executes parsed assembly against a machine description."""

    def __init__(self, machine: MachineDescription):
        self.machine = machine
        if not machine.is_deterministic:
            machine = machine.fixed_assignment()
            self.machine = machine
        self._latency: Dict[Opcode, int] = {}
        self._pipe: Dict[Opcode, Optional[int]] = {}
        for op in Opcode:
            pid = machine.sigma(op)
            self._pipe[op] = pid
            self._latency[op] = (
                UNPIPELINED_LATENCY if pid is None else machine.pipeline(pid).latency
            )

    # ------------------------------------------------------------------
    def run(
        self,
        program: Sequence[AsmInstruction],
        memory: Optional[Mapping[str, object]] = None,
        stall_on_hazard: bool = False,
        initial: Optional[InitialConditions] = None,
    ) -> RegisterTrace:
        """Execute ``program``.

        ``stall_on_hazard=False`` (padded/explicit discipline) raises
        :class:`RegisterHazardError` when the stream's waits are
        insufficient; ``True`` models the implicit interlock instead.
        ``initial`` seeds carry-in pipeline occupancy and variable
        readiness (footnote 1), as on the tuple-level simulator.
        """
        init = initial if initial is not None else InitialConditions()
        mem_value: Dict[str, object] = dict(memory or {})
        mem_ready: Dict[str, int] = dict(init.variable_ready)
        reg_value: Dict[int, object] = {}
        reg_ready: Dict[int, int] = {}
        pipe_free: Dict[int, int] = dict(init.pipe_free)
        cycle = 0
        stalls = 0
        issues: List[int] = []

        for instr in program:
            cycle += instr.wait
            stalls += instr.wait
            earliest = cycle
            for reg in instr.src_regs:
                if reg not in reg_value:
                    raise RegisterHazardError(
                        f"line {instr.line_no}: R{reg} read before any write"
                    )
                earliest = max(earliest, reg_ready.get(reg, 0))
            if instr.opcode is Opcode.LOAD:
                earliest = max(earliest, mem_ready.get(instr.variable, 0))
            elif instr.opcode is Opcode.STORE:
                # Writes to a cell still being written serialize too.
                earliest = max(earliest, mem_ready.get(instr.variable, 0))
            pid = self._pipe[instr.opcode]
            if pid is not None:
                earliest = max(earliest, pipe_free.get(pid, 0))
            if earliest > cycle:
                if stall_on_hazard:
                    stalls += earliest - cycle
                    cycle = earliest
                else:
                    raise RegisterHazardError(
                        f"line {instr.line_no}: {instr.opcode.value} issued "
                        f"at cycle {cycle} but is not safe before "
                        f"cycle {earliest}"
                    )

            latency = self._latency[instr.opcode]
            if pid is not None:
                pipe_free[pid] = cycle + self.machine.pipeline(pid).enqueue_time

            op = instr.opcode
            if op is Opcode.CONST:
                result = instr.immediate
            elif op is Opcode.LOAD:
                if instr.variable not in mem_value:
                    raise RegisterHazardError(
                        f"line {instr.line_no}: load of undefined variable "
                        f"{instr.variable!r}"
                    )
                result = mem_value[instr.variable]
            elif op is Opcode.STORE:
                mem_value[instr.variable] = reg_value[instr.src_regs[0]]
                mem_ready[instr.variable] = cycle + latency
                result = None
            else:
                operands = [reg_value[r] for r in instr.src_regs]
                result = op.evaluate(*operands)
            if instr.dest_reg is not None:
                reg_value[instr.dest_reg] = result
                reg_ready[instr.dest_reg] = cycle + latency

            issues.append(cycle)
            cycle += 1

        return RegisterTrace(
            total_cycles=cycle,
            stall_cycles=stalls,
            memory=mem_value,
            registers=reg_value,
            issue_cycles=tuple(issues),
        )

    def run_text(
        self,
        text: str,
        memory: Optional[Mapping[str, object]] = None,
        stall_on_hazard: bool = False,
        initial: Optional[InitialConditions] = None,
    ) -> RegisterTrace:
        """Parse and execute assembly text in one step."""
        return self.run(parse_assembly(text), memory, stall_on_hazard, initial)
