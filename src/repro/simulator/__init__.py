"""Cycle-accurate multi-pipeline simulator (section 2.2's three delay
disciplines: implicit interlock, explicit interlock, NOP padding)."""

from .core import (
    NOP,
    HazardError,
    InterlockMode,
    PipelineSimulator,
    SimulationTrace,
    simulate_schedule,
)
from .register_machine import (
    RegisterHazardError,
    RegisterMachine,
    RegisterTrace,
)

__all__ = [
    "NOP",
    "HazardError",
    "InterlockMode",
    "PipelineSimulator",
    "SimulationTrace",
    "simulate_schedule",
    "RegisterHazardError",
    "RegisterMachine",
    "RegisterTrace",
]
