"""Cycle-accurate multi-pipeline execution simulator.

Section 2.2 of the paper describes three architectural implementations of
pipeline delays — implicit interlock, explicit interlock, and NOP
insertion — and argues they are orthogonal to the scheduling problem: a
schedule is good or bad regardless of the enforcement mechanism.  This
simulator makes that claim checkable:

* in **implicit-interlock** mode it receives a bare instruction order and
  stalls in hardware whenever a dependence or conflict would be violated;
* in **explicit-interlock** mode it receives ``(instruction, wait)`` pairs
  (the Tera-style count of cycles to hold issue) and *faults* if the
  waits are insufficient — stalling is the compiler's job;
* in **NOP-padded** mode it receives an instruction stream with NOPs
  already inserted and faults on any hazard.

The central reproduction invariant (property-tested): for any legal
order, the implicit-interlock cycle count equals ``len(order) +
mu(order)`` computed by the Ω procedure — hardware stalls and compiler
NOPs are the same cycles.

The simulator also executes the instructions (via the tuple evaluators)
so value correctness can be asserted against the reference interpreter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.block import BasicBlock
from ..ir.dag import DependenceDAG
from ..ir.interp import Value, _step
from ..machine.machine import MachineDescription
from ..sched.nop_insertion import (
    InitialConditions,
    PipelineAssignment,
    SigmaResolver,
)


class HazardError(RuntimeError):
    """A NOP-padded or explicit-interlock stream violated the pipeline
    constraints — the compiler under-inserted delays."""


class InterlockMode(enum.Enum):
    """The three delay disciplines of section 2.2."""

    IMPLICIT = "implicit"
    EXPLICIT = "explicit"
    NOP_PADDED = "nop-padded"


#: Sentinel for a NOP slot in a padded stream.
NOP = None


@dataclass(frozen=True)
class SimulationTrace:
    """Result of simulating one basic block."""

    mode: InterlockMode
    issue_cycles: Tuple[int, ...]  # issue cycle of each real instruction
    order: Tuple[int, ...]  # tuple idents in issue order
    total_cycles: int  # cycle after the last *issue* (issue span)
    completion_cycle: int  # cycle when the last result drains
    stall_cycles: int  # cycles lost to interlocks / NOPs
    memory: Dict[str, Value]

    def issue_cycle_of(self, ident: int) -> int:
        return self.issue_cycles[self.order.index(ident)]


class PipelineSimulator:
    """Simulates a machine executing one basic block.

    The hardware model matches the compiler model of section 2.1 exactly:

    * an instruction *issues* on some cycle ``t``;
    * if it runs on pipeline ``p``, the next issue into ``p`` is legal at
      ``t + enqueue_time(p)`` or later;
    * its result is available to dependents issuing at
      ``t + latency(p)`` or later (``t + 1`` for unpipelined operations);
    * one instruction (or NOP) issues per cycle.
    """

    def __init__(
        self,
        block: BasicBlock,
        machine: MachineDescription,
        dag: Optional[DependenceDAG] = None,
        assignment: Optional[PipelineAssignment] = None,
        initial: Optional[InitialConditions] = None,
    ):
        self.block = block
        self.machine = machine
        self.dag = dag if dag is not None else DependenceDAG(block)
        self.resolver = SigmaResolver(self.dag, machine, assignment)
        self.initial = initial if initial is not None else InitialConditions()

    # ------------------------------------------------------------------
    def run_implicit(
        self,
        order: Sequence[int],
        memory: Optional[Mapping[str, Value]] = None,
    ) -> SimulationTrace:
        """Hardware interlock: stall each issue until it is hazard-free."""
        return self._run(list(order), InterlockMode.IMPLICIT, memory, waits=None)

    def run_explicit(
        self,
        tagged: Sequence[Tuple[int, int]],
        memory: Optional[Mapping[str, Value]] = None,
    ) -> SimulationTrace:
        """Explicit interlock: each instruction carries a wait count; the
        hardware blindly delays that many cycles and then *checks* that the
        issue really was safe (raising :class:`HazardError` otherwise)."""
        order = [ident for ident, _ in tagged]
        waits = [wait for _, wait in tagged]
        return self._run(order, InterlockMode.EXPLICIT, memory, waits=waits)

    def run_padded(
        self,
        stream: Sequence[Optional[int]],
        memory: Optional[Mapping[str, Value]] = None,
    ) -> SimulationTrace:
        """NOP padding: ``stream`` mixes tuple idents and :data:`NOP`
        slots; every real issue must be hazard-free on arrival."""
        order: List[int] = []
        waits: List[int] = []
        pending = 0
        for slot in stream:
            if slot is NOP:
                pending += 1
            else:
                order.append(slot)
                waits.append(pending)
                pending = 0
        trace = self._run(order, InterlockMode.NOP_PADDED, memory, waits=waits)
        return trace

    # ------------------------------------------------------------------
    def _run(
        self,
        order: List[int],
        mode: InterlockMode,
        memory: Optional[Mapping[str, Value]],
        waits: Optional[List[int]],
    ) -> SimulationTrace:
        if sorted(order) != sorted(self.block.idents):
            raise ValueError("simulation order must cover the whole block")
        if not self.dag.is_legal_order(order):
            raise ValueError("simulation order violates the dependence DAG")

        resolver = self.resolver
        issue_of: Dict[int, int] = {}
        # Earliest next legal issue per pipe, seeded with the carry-in
        # occupancy from preceding blocks (footnote 1).
        pipe_free: Dict[int, int] = dict(self.initial.pipe_free)
        variable_ready = self.initial.variable_ready
        result_ready: Dict[int, int] = {}
        issue_cycles: List[int] = []
        cycle = 0
        stalls = 0

        env: Dict[str, Value] = dict(memory or {})
        values: Dict[int, Value] = {}

        for pos, ident in enumerate(order):
            t = self.block.by_ident(ident)
            if waits is not None:
                cycle += waits[pos]
                stalls += waits[pos]
            earliest = cycle
            pid = resolver.sigma(ident)
            if pid is not None:
                earliest = max(earliest, pipe_free.get(pid, 0))
            if variable_ready and t.variable in variable_ready:
                earliest = max(earliest, variable_ready[t.variable])
            for delta in self.dag.rho(ident):
                earliest = max(earliest, result_ready[delta])
            if earliest > cycle:
                if mode is InterlockMode.IMPLICIT:
                    stalls += earliest - cycle
                    cycle = earliest
                else:
                    raise HazardError(
                        f"instruction {ident} ({t.op.value}) issued at cycle "
                        f"{cycle} but is not safe before cycle {earliest} "
                        f"({mode.value} stream under-padded)"
                    )
            issue_of[ident] = cycle
            issue_cycles.append(cycle)
            if pid is not None:
                pipe_free[pid] = cycle + resolver.enqueue_time(ident)
            result_ready[ident] = cycle + resolver.latency(ident)
            _step(t, env, values)
            cycle += 1  # the issue slot itself

        completion = max(result_ready.values(), default=0)
        return SimulationTrace(
            mode=mode,
            issue_cycles=tuple(issue_cycles),
            order=tuple(order),
            total_cycles=cycle,
            completion_cycle=completion,
            stall_cycles=stalls,
            memory=env,
        )


def simulate_schedule(
    block: BasicBlock,
    machine: MachineDescription,
    order: Sequence[int],
    etas: Sequence[int],
    memory: Optional[Mapping[str, Value]] = None,
    assignment: Optional[PipelineAssignment] = None,
) -> SimulationTrace:
    """Simulate a scheduled block as a NOP-padded stream.

    Convenience wrapper validating a scheduler's output end to end: takes
    the (order, etas) a scheduler produced, expands the NOPs, and runs the
    padded stream — raising :class:`HazardError` if the scheduler
    under-inserted NOPs anywhere.
    """
    stream: List[Optional[int]] = []
    for ident, eta in zip(order, etas):
        stream.extend([NOP] * eta)
        stream.append(ident)
    sim = PipelineSimulator(block, machine, assignment=assignment)
    return sim.run_padded(stream, memory)
