"""Time-indexed ILP encoding of the NOP-minimization problem.

The branch-and-bound search explores *orders* and prices them with Ω;
this encoder lowers the same problem — the packed ``_Flat`` tables of
:mod:`repro.sched.core`: latencies, enqueue times, dependence edges,
per-pipeline capacity, carry-in floors — into 0/1 *issue-slot*
variables, so an entirely different solver (simplex + branch and bound,
:mod:`repro.ilp.bnb`) can certify the search's answers.

The model
---------
With ``n`` instructions and issue slots ``t = 0 .. H`` (``H`` comes
from an incumbent schedule's last issue cycle — any optimal schedule
issues its last instruction no later than the incumbent does):

* ``x[k,t] = 1`` iff instruction ``k`` issues at cycle ``t``, restricted
  to a window ``est(k) <= t <= lst(k)`` (below);
* assignment: ``sum_t x[k,t] == 1`` for every ``k``;
* slot capacity: ``sum_k x[k,t] <= 1`` — one issue per cycle, the
  paper's single-issue stream;
* dependences: for every edge ``d -> k``,
  ``sum_t t*x[k,t] - sum_t t*x[d,t] >= latency(d)`` (aggregated form);
* pipeline enqueue: for a pipeline with enqueue time ``e >= 2``, every
  window of ``e`` consecutive slots holds at most one of its users:
  ``sum_{sigma(k)=p} sum_{s in [w, w+e-1]} x[k,s] <= 1``;
* makespan: ``z >= sum_t t*x[k,t]`` for every sink ``k``, and the
  objective is ``min z``.  Since the Ω identity makes total NOPs equal
  ``t_last - (n - 1)`` (one issue per cycle plus stalls), minimizing
  the last issue cycle *is* minimizing NOPs.

Issue windows ``[est, lst]`` shrink the variable count: ``est`` is the
maximum of the carry-in floors (pipeline busy-until, variable-ready),
the longest latency path from the roots and the ancestor count (every
ancestor occupies an earlier slot); ``lst`` is ``H`` minus the larger
of the downstream latency chain and the descendant count.  All four are
valid for every schedule that fits the horizon, so no optimal solution
is cut off.

Independence
------------
The encoder reads its latency/enqueue tables through the module-level
seams :func:`latency_table` / :func:`enqueue_table` and re-derives the
decoded schedule's η stream from *its own* tables
(:meth:`ModelTables.timing_of`), never through the search's pricing
code.  That keeps the certificate checker meaningful as an oracle over
this backend: a bug injected into the encoder's tables propagates into
the η stream it publishes and is caught downstream by
``repro.verify.certificate`` (pinned by the mutation test in
``tests/test_differential.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sched.nop_insertion import ScheduleTiming
from .simplex import LinearProgram


def latency_table(flat) -> List[int]:
    """Latency per dense instruction (seam for mutation testing)."""
    return list(flat.lat)


def enqueue_table(flat) -> List[int]:
    """Enqueue time per dense instruction (seam for mutation testing)."""
    return list(flat.enq)


class ModelTables:
    """The encoder's own copy of one ``_Flat`` problem's timing tables.

    Everything the model derives — issue windows, constraint
    coefficients, and the η repricing of decoded orders — comes from
    *these* tables, so the whole ILP pipeline stands or falls together
    under the certificate checker.
    """

    def __init__(self, flat) -> None:
        self.flat = flat
        self.n = flat.n
        self.idents = flat.idents
        self.lat = latency_table(flat)
        self.enq = enqueue_table(flat)
        self.sig = list(flat.sig)
        self.preds = flat.preds
        self.succs = flat.succs
        self.pipe_enq = list(flat.pipe_enq)
        self.pipe_last = list(flat.pipe_last)
        self.var_bound = list(flat.var_bound)

    def timing_of(self, dense_order: List[int]) -> ScheduleTiming:
        """Ω over ``dense_order`` using the model's tables.

        Same recurrence as ``sched.core._flat_timing`` — earliest legal
        issue against the previous issue, the pipeline's last enqueue,
        carry-in floors and every predecessor's completion — but fed
        from the encoder-owned latency/enqueue copies (see module
        docstring).
        """
        lat, enq, sig, preds = self.lat, self.enq, self.sig, self.preds
        var_bound = self.var_bound
        pipe_last = list(self.pipe_last)
        issue = [0] * self.n
        etas: List[int] = []
        issues: List[int] = []
        prev = -1
        for k in dense_order:
            base = prev + 1
            e = base
            p = sig[k]
            if p >= 0:
                pl = pipe_last[p]
                if pl is not None:
                    v = pl + enq[k]
                    if v > e:
                        e = v
            v = var_bound[k]
            if v is not None and v > e:
                e = v
            for d in preds[k]:
                v = issue[d] + lat[d]
                if v > e:
                    e = v
            issue[k] = e
            etas.append(e - base)
            issues.append(e)
            if p >= 0:
                pipe_last[p] = e
            prev = e
        return ScheduleTiming(
            tuple(self.idents[k] for k in dense_order),
            tuple(etas),
            tuple(issues),
        )


class TimeIndexedModel:
    """One horizon-``H`` lowering of a :class:`ModelTables` problem."""

    def __init__(self, tables: ModelTables, horizon: int) -> None:
        self.tables = tables
        self.n = n = tables.n
        self.horizon = horizon
        lat, enq, sig = tables.lat, tables.enq, tables.sig

        # --------------------------------------------------------------
        # Issue windows.  Dense index order is topological (dependences
        # point from lower idents to higher), so one forward and one
        # backward sweep suffice.
        # --------------------------------------------------------------
        est = [0] * n
        anc = [0] * n
        for k in range(n):
            e = 0
            vb = tables.var_bound[k]
            if vb is not None and vb > e:
                e = vb
            p = sig[k]
            if p >= 0 and tables.pipe_last[p] is not None:
                e = max(e, tables.pipe_last[p] + enq[k])
            a = 0
            for d in tables.preds[k]:
                a |= anc[d] | (1 << d)
                e = max(e, est[d] + lat[d])
            anc[k] = a
            est[k] = max(e, a.bit_count())
        chain = [0] * n
        desc = [0] * n
        for k in range(n - 1, -1, -1):
            for s in tables.succs[k]:
                desc[k] |= desc[s] | (1 << s)
                chain[k] = max(chain[k], lat[k] + chain[s])
        lst = [
            min(horizon - chain[k], horizon - desc[k].bit_count())
            for k in range(n)
        ]
        for k in range(n):
            if est[k] > lst[k]:
                raise ValueError(
                    f"horizon {horizon} admits no issue window for "
                    f"instruction {tables.idents[k]} "
                    f"(est {est[k]} > lst {lst[k]})"
                )
        self.est, self.lst, self.chain = est, lst, chain

        # --------------------------------------------------------------
        # Variables: one binary per (instruction, slot) plus makespan z.
        # --------------------------------------------------------------
        lp = LinearProgram()
        col_of: Dict[Tuple[int, int], int] = {}
        slot_of: List[Tuple[int, int]] = []
        for k in range(n):
            for t in range(est[k], lst[k] + 1):
                col_of[(k, t)] = lp.add_variable(0.0, 1.0)
                slot_of.append((k, t))
        # z >= t_k for every k, z >= est+chain for any k, and z >= n-1
        # (n issues at distinct cycles).  Per-pipeline capacity gives one
        # more floor — the search's root "users" bound, re-derived from
        # the encoder's tables: c users of a pipeline with enqueue e
        # cannot issue closer than e apart, so the last one issues no
        # earlier than the earliest user's window start plus (c-1)*e.
        z_lower = max(
            n - 1, max((est[k] + chain[k] for k in range(n)), default=0)
        )
        for p, e in enumerate(tables.pipe_enq):
            users = [k for k in range(n) if sig[k] == p]
            if len(users) >= 2:
                z_lower = max(
                    z_lower, min(est[k] for k in users) + (len(users) - 1) * e
                )
        self.z_col = lp.add_variable(float(z_lower), float(horizon), 1.0)
        self.z_lower = z_lower
        self.col_of = col_of
        self.slot_of = slot_of

        # --------------------------------------------------------------
        # Rows.
        # --------------------------------------------------------------
        for k in range(n):
            lp.add_row(
                {col_of[(k, t)]: 1.0 for t in range(est[k], lst[k] + 1)},
                "==",
                1.0,
            )
        by_slot: Dict[int, List[int]] = {}
        for (k, t), j in col_of.items():
            by_slot.setdefault(t, []).append(j)
        for t in sorted(by_slot):
            cols = by_slot[t]
            if len(cols) > 1:
                lp.add_row({j: 1.0 for j in cols}, "<=", 1.0)
        for k in range(n):
            for d in tables.preds[k]:
                coeffs: Dict[int, float] = {}
                for t in range(est[k], lst[k] + 1):
                    if t:
                        coeffs[col_of[(k, t)]] = float(t)
                for t in range(est[d], lst[d] + 1):
                    if t:
                        coeffs[col_of[(d, t)]] = coeffs.get(col_of[(d, t)], 0.0) - t
                lp.add_row(coeffs, ">=", float(lat[d]))
        for p, e in enumerate(tables.pipe_enq):
            if e < 2:
                continue  # slot capacity already enforces spacing 1
            members = [k for k in range(n) if sig[k] == p]
            if len(members) < 2:
                continue
            seen = set()
            for w in range(0, horizon + 1):
                cols = []
                ks = set()
                for k in members:
                    for s in range(max(w, est[k]), min(w + e - 1, lst[k]) + 1):
                        cols.append(col_of[(k, s)])
                        ks.add(k)
                if len(ks) < 2:
                    continue
                key = frozenset(cols)
                if key in seen:
                    continue
                seen.add(key)
                lp.add_row({j: 1.0 for j in cols}, "<=", 1.0)
        for k in range(n):
            if tables.succs[k]:
                continue  # only sinks can issue last
            coeffs = {self.z_col: -1.0}
            for t in range(est[k], lst[k] + 1):
                if t:
                    coeffs[col_of[(k, t)]] = float(t)
            lp.add_row(coeffs, "<=", 0.0)
        self.lp = lp

    # ------------------------------------------------------------------
    # Solution handling.
    # ------------------------------------------------------------------
    def fractional_col(
        self, x: Tuple[float, ...], tol: float = 1e-6
    ) -> Optional[int]:
        """The most fractional issue-slot column, or ``None`` if integral."""
        best_j, best_frac = None, tol
        for j in range(len(self.slot_of)):
            frac = min(x[j], 1.0 - x[j])
            if frac > best_frac:
                best_j, best_frac = j, frac
        return best_j

    def decode(self, x: Tuple[float, ...]) -> List[int]:
        """Dense instruction order of an integral solution (sorted by slot)."""
        slot = [-1] * self.n
        for j, (k, t) in enumerate(self.slot_of):
            if x[j] > 0.5:
                slot[k] = t
        if any(s < 0 for s in slot) or len(set(slot)) != self.n:
            raise ValueError("solution is not a one-slot-per-instruction point")
        return sorted(range(self.n), key=slot.__getitem__)
