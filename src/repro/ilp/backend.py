"""The ``backend="ilp"`` entry: certified NOP-minimization via ILP.

:func:`run_ilp_search` is the ILP twin of ``sched.core.run_fast_search``:
it lowers the block to the packed ``_Flat`` tables, copies them into the
encoder's own :class:`~repro.ilp.encoder.ModelTables`, prices the seed
and heuristic incumbents, builds one
:class:`~repro.ilp.encoder.TimeIndexedModel` at the incumbent's horizon
and runs LP-based branch and bound to either *prove the incumbent
optimal* or *beat it*.  The answer comes back as an
:class:`IlpSearchResult` — a ``SearchResult`` whose ``best`` timing was
re-derived entirely from the encoder's tables, plus the ILP-specific
certificates: the root LP relaxation (a dual lower bound in NOPs,
comparable to the search's chain/users/root combinatorial bounds) and
the certified ``lower_bound`` that remains valid even when a node or
pivot budget curtails the run (``completed=False``), so a curtailed
block carries a replayable optimality gap instead of a shrug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..sched.search import SearchResult
from ..telemetry import prune_counts
from .bnb import IlpOptions, branch_and_bound
from .encoder import ModelTables, TimeIndexedModel


@dataclass(frozen=True)
class IlpSearchResult(SearchResult):
    """``SearchResult`` plus the ILP backend's certificates.

    ``completed=True`` means branch and bound exhausted the tree:
    ``best`` is provably optimal and ``lower_bound == final_nops``.
    Otherwise a budget ran out and ``lower_bound`` is the certified
    dual bound active at curtailment — ``final_nops - lower_bound`` is
    a true optimality gap.
    """

    #: Backend provenance (``ScheduleOutcome`` protocol).
    provenance = "ilp"

    #: Root LP optimum in NOPs (makespan relaxation minus ``n - 1``).
    lp_relaxation: float = 0.0
    #: Certified lower bound on the optimal NOP count.
    lower_bound: int = 0
    #: Branch-and-bound nodes solved (including the root).
    nodes: int = 0
    #: Simplex pivots across all node LPs.
    lp_pivots: int = 0

    @property
    def optimality_gap(self) -> int:
        return self.final_nops - self.lower_bound


def run_ilp_search(
    dag,
    machine,
    resolver,
    options,
    ilp_options: Optional[IlpOptions],
    initial,
    seed: Tuple[int, ...],
    assignment,
    start: float,
) -> IlpSearchResult:
    """Everything ``schedule_block(backend="ilp")`` does after validation.

    Mirrors ``run_fast_search``'s contract: ``seed`` is already
    validated, ``start`` anchors ``elapsed_seconds``, and the caller
    records telemetry.  ``options`` contributes the seeding policy
    (``heuristic_seeds``) and ``time_limit``; the ILP budgets come from
    ``ilp_options``.
    """
    from ..sched.core import _Flat
    from ..sched.heuristics import greedy_schedule, gross_schedule

    if ilp_options is None:
        ilp_options = IlpOptions()
    if options.time_limit is not None:
        limit = options.time_limit
        if ilp_options.time_limit is not None:
            limit = min(limit, ilp_options.time_limit)
        ilp_options = replace(ilp_options, time_limit=limit)

    n = len(dag)
    flat = _Flat(dag, machine, resolver, initial)
    tables = ModelTables(flat)
    index_of = flat.index_of

    omega_calls = 0
    improvements = 0

    def price_idents(order_idents):
        nonlocal omega_calls
        omega_calls += n
        return tables.timing_of([index_of[i] for i in order_idents])

    seed_timing = price_idents(seed)
    best = seed_timing
    if options.heuristic_seeds and n > 1:
        for heuristic in (gross_schedule, greedy_schedule):
            candidate = price_idents(
                heuristic(dag, machine, assignment, initial).order
            )
            if candidate.total_nops < best.total_nops:
                best = candidate
                improvements += 1

    if n <= 1:
        return IlpSearchResult(
            best,
            seed_timing,
            omega_calls,
            True,
            time.perf_counter() - start,
            improvements,
            prune_counts=prune_counts(),
            lp_relaxation=float(best.total_nops),
            lower_bound=best.total_nops,
            nodes=0,
            lp_pivots=0,
        )

    horizon = best.issue_times[-1]
    model = TimeIndexedModel(tables, horizon)

    def price(dense_order: List[int]) -> int:
        nonlocal omega_calls, improvements, best
        omega_calls += n
        timing = tables.timing_of(dense_order)
        if timing.total_nops < best.total_nops:
            best = timing
            improvements += 1
        return timing.issue_times[-1]

    outcome = branch_and_bound(model, horizon, price, ilp_options, start)

    final_nops = best.total_nops
    if outcome.completed:
        lower_bound = final_nops
    else:
        lower_bound = max(0, outcome.best_bound - (n - 1))
    if outcome.lp_relaxation is not None:
        lp_relaxation = max(0.0, outcome.lp_relaxation - (n - 1))
    else:
        lp_relaxation = float(max(0, model.z_lower - (n - 1)))

    kinds = {}
    if outcome.pruned_by_bound:
        kinds["bounds"] = outcome.pruned_by_bound
    if outcome.timed_out:
        kinds["timeout"] = 1
    elif not outcome.completed:
        kinds["curtail"] = 1
    return IlpSearchResult(
        best,
        seed_timing,
        omega_calls,
        outcome.completed,
        time.perf_counter() - start,
        improvements,
        proved_by_bound=outcome.proved_at_root,
        timed_out=outcome.timed_out,
        prune_counts=prune_counts(**kinds),
        lp_relaxation=lp_relaxation,
        lower_bound=lower_bound,
        nodes=outcome.nodes,
        lp_pivots=outcome.pivots,
    )


def schedule_block_ilp(
    dag,
    machine,
    options=None,
    ilp_options: Optional[IlpOptions] = None,
    assignment=None,
    seed=None,
    initial_conditions=None,
    telemetry=None,
) -> IlpSearchResult:
    """Convenience wrapper: ``schedule_block(..., backend="ilp")``."""
    from ..sched.search import SearchOptions, schedule_block

    return schedule_block(
        dag,
        machine,
        options if options is not None else SearchOptions(),
        assignment=assignment,
        seed=seed,
        initial_conditions=initial_conditions,
        telemetry=telemetry,
        backend="ilp",
        ilp_options=ilp_options,
    )
