"""Bounded-variable two-phase primal simplex — dependency-free.

The ILP optimality backend (:mod:`repro.ilp`) needs an LP solver and the
repository bakes in no solver dependency, so this module implements the
textbook algorithm from scratch: a dense-tableau primal simplex over
variables with general box bounds ``l <= x <= u`` (upper bounds handled
by status flags and bound flips, *not* by doubling the variable count —
the time-indexed scheduling encodings are all 0/1 variables, so
doubling would be ruinous), with a phase-1 artificial-variable start for
rows the slack basis cannot satisfy.

Design notes
------------
* **Dense tableau.**  The scheduling LPs top out around a thousand
  columns and a couple hundred rows; a dense ``B^-1 A`` tableau with
  rank-1 pivot updates is simpler and, at this size, faster than any
  sparse cleverness.  When NumPy is importable the tableau rows and the
  reduced-cost row are ``float64`` arrays and a pivot is two vectorized
  updates; without it the same algorithm runs on plain lists (the
  solver must *work* everywhere — the no-numpy CI job runs it — it just
  solves small instances more slowly).
* **Anti-cycling.**  Dantzig's rule (most negative reduced cost) until
  the objective stalls for ``_STALL_LIMIT`` consecutive pivots, then
  Bland's rule (lowest eligible index) permanently; with bounds this is
  the standard finite-termination guarantee.
* **Determinism.**  Entering/leaving ties break on the lowest index and
  no randomization is used anywhere, so a given program always returns
  the same solution — the property the differential oracle and the
  resumable verify runs rely on.

The solver reports one of four statuses: ``optimal``, ``infeasible``,
``unbounded`` (cannot happen for the scheduling encodings, where every
structural variable is boxed — defensive only) and ``pivot-limit``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy accelerates pivots but is never required.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

INF = math.inf

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
PIVOT_LIMIT = "pivot-limit"

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2

#: Pivots without objective progress before switching to Bland's rule.
_STALL_LIMIT = 200

#: Feasibility / reduced-cost tolerance.  The scheduling encodings are
#: all small integers, so drift stays far below this.
TOL = 1e-7


@dataclass
class LinearProgram:
    """``min c.x`` subject to linear rows and box bounds ``l <= x <= u``.

    Rows are ``(coefficients keyed by column, sense, rhs)`` with sense
    one of ``"<="``, ``">="``, ``"=="``.  Every variable must have a
    finite lower bound (the encodings only ever need ``0`` or small
    non-negative floors).
    """

    objective: List[float] = field(default_factory=list)
    lower: List[float] = field(default_factory=list)
    upper: List[float] = field(default_factory=list)
    rows: List[Tuple[Dict[int, float], str, float]] = field(default_factory=list)

    @property
    def n_cols(self) -> int:
        return len(self.objective)

    def add_variable(
        self, lower: float = 0.0, upper: float = INF, objective: float = 0.0
    ) -> int:
        if not math.isfinite(lower):
            raise ValueError("every variable needs a finite lower bound")
        if upper < lower:
            raise ValueError(f"empty bound interval [{lower}, {upper}]")
        self.objective.append(float(objective))
        self.lower.append(float(lower))
        self.upper.append(float(upper))
        return len(self.objective) - 1

    def add_row(self, coeffs: Dict[int, float], sense: str, rhs: float) -> None:
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown row sense {sense!r}")
        for j in coeffs:
            if not 0 <= j < self.n_cols:
                raise ValueError(f"row references unknown column {j}")
        self.rows.append(
            ({j: float(c) for j, c in coeffs.items() if c}, sense, float(rhs))
        )


@dataclass(frozen=True)
class LpSolution:
    """Outcome of one :func:`solve` call."""

    status: str
    objective: float
    x: Tuple[float, ...]
    pivots: int

    @property
    def ok(self) -> bool:
        return self.status == OPTIMAL


def solve(
    program: LinearProgram,
    lower: Optional[Sequence[float]] = None,
    upper: Optional[Sequence[float]] = None,
    pivot_limit: int = 50_000,
) -> LpSolution:
    """Minimize ``program`` (optionally overriding the variable bounds).

    ``lower``/``upper`` — per-structural-column bound overrides — exist
    for branch and bound: a node fixes a handful of binaries by
    tightening bounds without mutating (or copying) the shared program.
    """
    tab = _Tableau(program, lower, upper, pivot_limit)
    return tab.run()


class _Tableau:
    """One solve: builds the start basis, runs phase 1 then phase 2."""

    def __init__(
        self,
        program: LinearProgram,
        lower: Optional[Sequence[float]],
        upper: Optional[Sequence[float]],
        pivot_limit: int,
    ) -> None:
        self.program = program
        self.pivot_limit = pivot_limit
        self.pivots = 0
        n = program.n_cols
        self.nstruct = n
        self.lo: List[float] = list(program.lower if lower is None else lower)
        self.up: List[float] = list(program.upper if upper is None else upper)
        if len(self.lo) != n or len(self.up) != n:
            raise ValueError("bound override length must match the program")
        self.infeasible_bounds = any(
            self.lo[j] > self.up[j] + TOL for j in range(n)
        )

    # ------------------------------------------------------------------
    # Setup: slack/artificial columns, identity start basis.
    # ------------------------------------------------------------------
    def _build(self) -> None:
        prog = self.program
        n = self.nstruct
        lo, up = self.lo, self.up
        # Nonbasic structural variables start at their (finite) lower
        # bound; row residuals decide which rows get an artificial.
        start = list(lo)
        plans = []  # (dense coeffs, basic_col_kind, scale, basic_value)
        n_slack = 0
        n_art = 0
        for coeffs, sense, rhs in prog.rows:
            act = sum(c * start[j] for j, c in coeffs.items())
            resid = rhs - act
            if sense == "<=":
                slack_id = n_slack
                n_slack += 1
                if resid >= 0:
                    plans.append((coeffs, sense, ("slack", slack_id), 1.0, resid))
                else:
                    plans.append(
                        (coeffs, sense, ("art", n_art, slack_id), -1.0, -resid)
                    )
                    n_art += 1
            elif sense == ">=":
                slack_id = n_slack
                n_slack += 1
                if resid <= 0:
                    # surplus = act - rhs >= 0 is basic; scale the row by
                    # -1 so its own coefficient comes out +1.
                    plans.append((coeffs, sense, ("slack", slack_id), -1.0, -resid))
                else:
                    plans.append(
                        (coeffs, sense, ("art", n_art, slack_id), 1.0, resid)
                    )
                    n_art += 1
            else:  # "=="
                scale = 1.0 if resid >= 0 else -1.0
                plans.append((coeffs, sense, ("art", n_art, None), scale, abs(resid)))
                n_art += 1

        m = len(plans)
        N = n + n_slack + n_art
        self.m, self.N = m, N
        self.lo = lo + [0.0] * (n_slack + n_art)
        self.up = up + [INF] * (n_slack + n_art)
        self.is_art = [False] * N
        self.cost = list(prog.objective) + [0.0] * (n_slack + n_art)
        self.status = [_AT_LOWER] * N
        self.basis: List[int] = [0] * m
        self.xB: List[float] = [0.0] * m

        rows: List[List[float]] = []
        for i, (coeffs, sense, basic, scale, bval) in enumerate(plans):
            row = [0.0] * N
            for j, c in coeffs.items():
                row[j] = c * scale
            slack_sign = {"<=": 1.0, ">=": -1.0, "==": 0.0}[sense]
            if basic[0] == "slack":
                scol = n + basic[1]
                row[scol] = slack_sign * scale
                bcol = scol
            else:
                acol = n + n_slack + basic[1]
                row[acol] = 1.0
                self.is_art[acol] = True
                if basic[2] is not None:  # nonbasic slack still in the row
                    row[n + basic[2]] = slack_sign * scale
                bcol = acol
            rows.append(row)
            self.basis[i] = bcol
            self.status[bcol] = _BASIC
            self.xB[i] = bval
        self.n_art = n_art

        if _np is not None:
            self.T = _np.array(rows, dtype=_np.float64) if m else _np.zeros((0, N))
            # NumPy mirrors of the per-column state: the entering-variable
            # scan is the only O(N)-per-pivot loop, and vectorizing it
            # needs these as arrays (all updates are scalar writes, which
            # work identically on arrays and lists).
            self.lo = _np.array(self.lo, dtype=_np.float64)
            self.up = _np.array(self.up, dtype=_np.float64)
            self.status = _np.array(self.status, dtype=_np.int8)
        else:
            self.T = rows

    # ------------------------------------------------------------------
    # The shared pivot loop (one phase).
    # ------------------------------------------------------------------
    def _reduced_costs(self, cost: List[float]):
        """``d = c - c_B . B^-1 A`` and the objective for the basis."""
        if _np is not None:
            d = _np.array(cost, dtype=_np.float64)
            for i, b in enumerate(self.basis):
                cb = cost[b]
                if cb:
                    d -= cb * self.T[i]
        else:
            d = list(cost)
            for i, b in enumerate(self.basis):
                cb = cost[b]
                if cb:
                    row = self.T[i]
                    for j in range(self.N):
                        d[j] -= cb * row[j]
        obj = sum(cost[self.basis[i]] * self.xB[i] for i in range(self.m))
        for j in range(self.N):
            if self.status[j] == _AT_LOWER:
                if cost[j] and self.lo[j]:
                    obj += cost[j] * self.lo[j]
            elif self.status[j] == _AT_UPPER:
                if cost[j]:
                    obj += cost[j] * self.up[j]
        return d, obj

    def _entering(self, d, bland: bool) -> Tuple[int, int]:
        """Eligible nonbasic column and its direction (+1 up, -1 down)."""
        lo, up, status = self.lo, self.up, self.status
        if _np is not None:
            free = (up - lo) > TOL
            viol = _np.where(
                (status == _AT_LOWER) & free,
                -d,
                _np.where((status == _AT_UPPER) & free, d, -INF),
            )
            if bland:
                idx = _np.nonzero(viol > TOL)[0]
                if idx.size == 0:
                    return -1, 0
                j = int(idx[0])
            else:
                j = int(_np.argmax(viol))
                if viol[j] <= TOL:
                    return -1, 0
            return j, (1 if status[j] == _AT_LOWER else -1)
        best_j, best_viol, best_s = -1, TOL, 0
        for j in range(self.N):
            st = status[j]
            if st == _BASIC or up[j] - lo[j] <= TOL:
                continue  # fixed columns (incl. retired artificials)
            dj = d[j]
            if st == _AT_LOWER and dj < -TOL:
                viol, s = -dj, 1
            elif st == _AT_UPPER and dj > TOL:
                viol, s = dj, -1
            else:
                continue
            if bland:
                return j, s
            if viol > best_viol:
                best_j, best_viol, best_s = j, viol, s
        return best_j, best_s

    def _iterate(self, cost: List[float]) -> str:
        d, obj = self._reduced_costs(cost)
        self.obj = obj
        stall = 0
        bland = False
        lo, up = self.lo, self.up
        while True:
            if self.pivots >= self.pivot_limit:
                return PIVOT_LIMIT
            enter, s = self._entering(d, bland)
            if enter < 0:
                return OPTIMAL
            if _np is not None:
                col = self.T[:, enter]
            else:
                col = [self.T[i][enter] for i in range(self.m)]
            # Ratio test: the entering variable's own bound span versus
            # each basic variable hitting one of its bounds.
            limit = up[enter] - lo[enter]
            leave, leave_to = -1, _AT_LOWER
            for i in range(self.m):
                a = col[i] * s
                b = self.basis[i]
                if a > TOL:
                    ratio = max(self.xB[i] - lo[b], 0.0) / a
                    if ratio < limit - 1e-12:
                        limit, leave, leave_to = ratio, i, _AT_LOWER
                elif a < -TOL and up[b] < INF:
                    ratio = max(up[b] - self.xB[i], 0.0) / (-a)
                    if ratio < limit - 1e-12:
                        limit, leave, leave_to = ratio, i, _AT_UPPER
            if limit == INF:
                return UNBOUNDED
            delta = max(limit, 0.0)
            if delta:
                if _np is not None:
                    self.xB = (
                        _np.asarray(self.xB) - s * delta * col
                    ).tolist()
                else:
                    for i in range(self.m):
                        self.xB[i] -= s * delta * col[i]
                self.obj += d[enter] * s * delta
            if leave < 0:
                # Bound flip: no basis change.
                self.status[enter] = (
                    _AT_UPPER if self.status[enter] == _AT_LOWER else _AT_LOWER
                )
            else:
                leaving = self.basis[leave]
                entering_val = (
                    lo[enter] if self.status[enter] == _AT_LOWER else up[enter]
                ) + s * delta
                self._pivot(leave, enter, d)
                self.xB[leave] = entering_val
                self.basis[leave] = enter
                self.status[enter] = _BASIC
                self.status[leaving] = leave_to
                if self.is_art[leaving]:
                    # An artificial that left the basis never returns.
                    self.up[leaving] = 0.0
            self.pivots += 1
            if self.obj < self.last_obj - 1e-9:
                self.last_obj = self.obj
                stall = 0
            else:
                stall += 1
                if stall > _STALL_LIMIT:
                    bland = True

    def _pivot(self, r: int, c: int, d) -> None:
        """Row-reduce column ``c`` to the ``r``-th unit vector."""
        if _np is not None:
            T = self.T
            T[r] = T[r] / T[r][c]
            colvals = T[:, c].copy()
            colvals[r] = 0.0
            T -= _np.outer(colvals, T[r])
            dc = d[c]
            if dc:
                d -= dc * T[r]
        else:
            T = self.T
            piv = T[r][c]
            rowr = [v / piv for v in T[r]]
            T[r] = rowr
            for i in range(self.m):
                if i == r:
                    continue
                f = T[i][c]
                if f:
                    rowi = T[i]
                    T[i] = [x - f * y for x, y in zip(rowi, rowr)]
            dc = d[c]
            if dc:
                for j in range(self.N):
                    d[j] -= dc * rowr[j]

    # ------------------------------------------------------------------
    # Two phases + extraction.
    # ------------------------------------------------------------------
    def run(self) -> LpSolution:
        if self.infeasible_bounds:
            return LpSolution(INFEASIBLE, INF, (), 0)
        self._build()
        self.last_obj = INF
        if self.n_art:
            phase1 = [1.0 if a else 0.0 for a in self.is_art]
            status = self._iterate(phase1)
            if status != OPTIMAL:
                return LpSolution(status, INF, (), self.pivots)
            if self.obj > 1e-6:
                return LpSolution(INFEASIBLE, INF, (), self.pivots)
            self._retire_artificials()
        self.last_obj = INF
        status = self._iterate(self.cost)
        x = self._extract()
        obj = sum(self.cost[j] * x[j] for j in range(self.nstruct))
        return LpSolution(status, obj, tuple(x[: self.nstruct]), self.pivots)

    def _retire_artificials(self) -> None:
        """After phase 1: lock artificials at zero, pivot basic ones out."""
        d_dummy = (
            _np.zeros(self.N) if _np is not None else [0.0] * self.N
        )
        for i in range(self.m):
            b = self.basis[i]
            if not self.is_art[b]:
                continue
            # A basic artificial at value 0; swap in any usable column.
            row = self.T[i]
            swap = -1
            for j in range(self.N):
                if self.is_art[j] or self.status[j] == _BASIC:
                    continue
                if abs(row[j]) > TOL:
                    swap = j
                    break
            if swap >= 0:
                old_status = self.status[swap]
                self._pivot(i, swap, d_dummy)
                self.basis[i] = swap
                self.status[swap] = _BASIC
                self.status[b] = _AT_LOWER
                self.xB[i] = (
                    self.lo[swap] if old_status == _AT_LOWER else self.up[swap]
                )
            # else: the row is redundant; the artificial stays basic at 0
            # and no pivot can move it (its row is zero elsewhere).
        for j in range(self.N):
            if self.is_art[j]:
                self.up[j] = 0.0

    def _extract(self) -> List[float]:
        x = [0.0] * self.N
        for j in range(self.N):
            x[j] = self.lo[j] if self.status[j] == _AT_LOWER else (
                self.up[j] if self.status[j] == _AT_UPPER else 0.0
            )
        for i in range(self.m):
            x[self.basis[i]] = self.xB[i]
        return x
