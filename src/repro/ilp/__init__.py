"""Dependency-free ILP backend for NOP-minimization.

An independent optimality witness for the branch-and-bound search: the
same problem the search explores order-by-order is lowered to a
time-indexed 0/1 program (:mod:`repro.ilp.encoder`), solved by a
bounded-variable simplex (:mod:`repro.ilp.simplex`) inside LP-based
branch and bound (:mod:`repro.ilp.bnb`), and decoded back into a
certified ``SearchResult`` (:mod:`repro.ilp.backend`).  Entry points:
``schedule_block(..., backend="ilp")`` or :func:`schedule_block_ilp`.

Pure Python throughout; NumPy, when present, only accelerates the
simplex pivots and changes no results.
"""

from .backend import IlpSearchResult, run_ilp_search, schedule_block_ilp
from .bnb import BnbOutcome, IlpOptions, branch_and_bound
from .encoder import ModelTables, TimeIndexedModel
from .simplex import INFEASIBLE, OPTIMAL, LinearProgram, LpSolution, solve

__all__ = [
    "INFEASIBLE",
    "OPTIMAL",
    "BnbOutcome",
    "IlpOptions",
    "IlpSearchResult",
    "LinearProgram",
    "LpSolution",
    "ModelTables",
    "TimeIndexedModel",
    "branch_and_bound",
    "run_ilp_search",
    "schedule_block_ilp",
    "solve",
]
