"""Branch and bound over the time-indexed LP relaxation.

A classical LP-based branch and bound, kept deliberately simple because
its job is *certification*, not speed: depth-first, diving on the
``x = 1`` branch of the most fractional issue-slot variable, with the
makespan variable capped at ``incumbent - 1`` at every node so the LP
itself prunes ("is there anything strictly better in this subtree?" —
infeasible means no).

Soundness of the exit states:

* ``completed`` — the tree was exhausted: every leaf was integral,
  LP-infeasible under the cap, or bound-pruned against the *final*
  incumbent (the incumbent only ever improves, so a prune against an
  older, larger incumbent still certifies the subtree against the final
  one).  The final incumbent is provably optimal.
* otherwise — a node/pivot/time budget ran out.  The certified lower
  bound is the minimum over the unexplored nodes' parent LP bounds
  (everything explored or pruned is certified at or above the final
  incumbent), i.e. a true dual bound on the optimum, reported next to
  the incumbent as a *certified optimality gap*.

All bounds here are in makespan (``z``) space — the last issue cycle —
which :mod:`repro.ilp.backend` converts to NOPs via ``Ω = z - (n-1)``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .encoder import TimeIndexedModel
from .simplex import INFEASIBLE, OPTIMAL, solve

_EPS = 1e-6


@dataclass(frozen=True)
class IlpOptions:
    """Budget knobs of the ILP backend (analogue of ``SearchOptions``)."""

    #: Branch-and-bound nodes before giving up (curtailment analogue).
    max_nodes: int = 2_000
    #: Simplex pivot budget per node LP.
    node_pivot_limit: int = 50_000
    #: Simplex pivot budget across the whole run.
    total_pivot_limit: int = 2_000_000
    #: Wall-clock budget in seconds; ``None`` = unlimited.
    time_limit: Optional[float] = None
    #: A column within this of 0/1 counts as integral.
    integrality_tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be positive")
        if self.node_pivot_limit < 1 or self.total_pivot_limit < 1:
            raise ValueError("pivot limits must be positive")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError("time limit must be positive")
        if not 0 < self.integrality_tol < 0.5:
            raise ValueError("integrality tolerance must be in (0, 0.5)")


@dataclass
class BnbOutcome:
    """What one branch-and-bound run established (makespan space)."""

    completed: bool
    proved_at_root: bool
    timed_out: bool
    nodes: int
    pivots: int
    #: Root LP optimum at the incumbent horizon (the reported dual
    #: bound); ``None`` when the root LP itself hit a budget.
    lp_relaxation: Optional[float]
    #: Certified lower bound on the optimal makespan.
    best_bound: int
    pruned_by_bound: int


def branch_and_bound(
    model: TimeIndexedModel,
    incumbent_makespan: int,
    price: Callable[[List[int]], int],
    options: IlpOptions,
    start: float,
) -> BnbOutcome:
    """Prove the incumbent optimal or beat it.

    ``price(dense_order)`` reprices an integral solution through the
    model's own Ω (the caller keeps the best timing) and returns the
    achieved makespan, which becomes the new incumbent cap.
    """
    lp = model.lp
    base_lower = list(lp.lower)
    base_upper = list(lp.upper)
    zcol = model.z_col
    ub = incumbent_makespan
    pivots = 0
    nodes = 0
    pruned = 0
    deadline = None if options.time_limit is None else start + options.time_limit

    def lp_solve(fixings: Tuple[Tuple[int, int], ...], z_cap: int):
        nonlocal pivots
        lo = list(base_lower)
        up = list(base_upper)
        for j, v in fixings:
            if v:
                lo[j] = 1.0
            else:
                up[j] = 0.0
        up[zcol] = float(z_cap)
        sol = solve(lp, lower=lo, upper=up, pivot_limit=options.node_pivot_limit)
        pivots += sol.pivots
        return sol

    # Root LP at the incumbent horizon: always feasible (the incumbent is
    # a point of the model), and its optimum is the dual bound reported
    # alongside the search's combinatorial bounds.
    root = lp_solve((), ub)
    nodes += 1
    if root.status != OPTIMAL:
        # A pivot-limited (or, numerically, "infeasible") root proves
        # nothing; claim nothing.
        return BnbOutcome(
            False, False, False, nodes, pivots, None, model.z_lower, pruned
        )
    lp_relaxation = root.objective
    root_lb = math.ceil(root.objective - _EPS)
    if root_lb >= ub:
        return BnbOutcome(
            True, True, False, nodes, pivots, lp_relaxation, ub, 1
        )

    #: DFS stack of (fixed (column, value) pairs, parent LP bound).
    stack: List[Tuple[Tuple[Tuple[int, int], ...], int]] = [((), root_lb)]
    timed_out = False
    exhausted = False
    while stack:
        if deadline is not None and time.perf_counter() > deadline:
            timed_out = True
            break
        if nodes >= options.max_nodes or pivots >= options.total_pivot_limit:
            exhausted = True
            break
        fixings, parent_lb = stack.pop()
        if parent_lb >= ub:
            pruned += 1
            continue
        nodes += 1
        sol = lp_solve(fixings, ub - 1)
        if sol.status == INFEASIBLE:
            pruned += 1
            continue
        if sol.status != OPTIMAL:
            stack.append((fixings, parent_lb))
            exhausted = True
            break
        lb = max(parent_lb, math.ceil(sol.objective - _EPS))
        if lb >= ub:
            pruned += 1
            continue
        frac = model.fractional_col(sol.x, options.integrality_tol)
        if frac is None:
            order = model.decode(sol.x)
            achieved = price(order)
            if achieved < ub:
                ub = achieved
            continue
        # Dive on x=1 first (pushed last, popped first): assignment rows
        # collapse fastest along the all-ones path.
        stack.append((fixings + ((frac, 0),), lb))
        stack.append((fixings + ((frac, 1),), lb))

    if timed_out or exhausted or stack:
        best_bound = min((plb for _, plb in stack), default=ub)
        return BnbOutcome(
            False,
            False,
            timed_out,
            nodes,
            pivots,
            lp_relaxation,
            min(best_bound, ub),
            pruned,
        )
    return BnbOutcome(
        True, False, False, nodes, pivots, lp_relaxation, ub, pruned
    )
