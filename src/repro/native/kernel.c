/* Native hot core of the branch-and-bound searches (engine="native").
 *
 * A C port of the two flattened search loops in repro/sched/core.py:
 *
 *   repro_dfs   <-> _run_fast_dfs    (the pruned DFS of schedule_block)
 *   repro_split <-> run_fast_split   (the windowed search of
 *                                     schedule_block_split)
 *
 * The contract is the repository-wide engine lattice: every decision --
 * candidate order, all five prunes, the dominance-memo FIFO policy, the
 * curtail/deadline checks, the Omega-call accounting -- is made in the
 * same order on the same integers as the Python fast engine, so every
 * output (schedule, counters, flags) is bit-for-bit identical.  Only
 * the representation differs:
 *
 *   - ready/scheduled sets are multiword uint64 bitsets instead of
 *     Python's arbitrary-precision ints (iterated lowest-bit-first,
 *     matching the scalar scan);
 *   - the dominance memo is a chained hash table plus an
 *     insertion-order list, replicating dict semantics exactly: lookup
 *     by full serialized key, overwrite-in-place keeps insertion
 *     position, FIFO eviction drops the oldest entry at capacity;
 *   - Optional[int] values (pipeline last-issue, variable-ready bounds)
 *     use INT64_MIN as the None sentinel.
 *
 * The file is self-contained C99 with no dependencies beyond libc; it
 * is compiled on first use by repro/native/build.py and bound through
 * ctypes by repro/native/bindings.py.  Bump NATIVE_ABI_VERSION whenever
 * an exported signature or cfg/stats layout changes -- the build cache
 * keys on it.
 */

/* clock_gettime/CLOCK_MONOTONIC need POSIX.1b under strict -std=c99. */
#if !defined(_WIN32)
#define _POSIX_C_SOURCE 199309L
#endif

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define NATIVE_ABI_VERSION 1

/* None sentinel for pipe_last / var_bound / saved values. */
#define NONE INT64_MIN

/* Return codes. */
#define OK 0
#define ERR_ALLOC (-1)

typedef int64_t i64;
typedef uint64_t u64;

#if defined(_WIN32)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

/* ------------------------------------------------------------------ */
/* Wall clock (deadline checks): monotonic seconds.                    */
/* ------------------------------------------------------------------ */

static double now_sec(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

/* ------------------------------------------------------------------ */
/* Multiword bitsets (W = ceil(n/64) words, lowest-bit-first order).   */
/* ------------------------------------------------------------------ */

static inline int bs_test(const u64 *b, i64 k) {
    return (int)((b[k >> 6] >> (k & 63)) & 1u);
}

static inline void bs_set(u64 *b, i64 k) { b[k >> 6] |= (u64)1 << (k & 63); }

static inline void bs_clear(u64 *b, i64 k) {
    b[k >> 6] &= ~((u64)1 << (k & 63));
}

static inline i64 ctz64(u64 x) {
#if defined(__GNUC__) || defined(__clang__)
    return (i64)__builtin_ctzll(x);
#else
    i64 c = 0;
    while (!(x & 1u)) {
        x >>= 1;
        c++;
    }
    return c;
#endif
}

/* Does `succ_row` reach outside `mask`?  (succ_mask[k] & ~mask != 0) */
static inline int bs_escapes(const u64 *succ_row, const u64 *mask, i64 W) {
    for (i64 w = 0; w < W; w++) {
        if (succ_row[w] & ~mask[w]) return 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Candidates: (eta, seed position, dense index) triples, ordered      */
/* exactly like the Python tuples -- seed positions are unique, so the */
/* (eta, seed) order is total and stability is irrelevant.             */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 eta, seedp, k;
} Cand;

static void cand_sort(Cand *c, i64 len, int cheapest_first) {
    /* Insertion sort: candidate lists are tiny (the population averages
     * ~1-2 ready instructions per node). */
    for (i64 i = 1; i < len; i++) {
        Cand x = c[i];
        i64 j = i - 1;
        if (cheapest_first) {
            while (j >= 0 && (c[j].eta > x.eta ||
                              (c[j].eta == x.eta && c[j].seedp > x.seedp))) {
                c[j + 1] = c[j];
                j--;
            }
        } else {
            while (j >= 0 && c[j].seedp > x.seedp) {
                c[j + 1] = c[j];
                j--;
            }
        }
        c[j + 1] = x;
    }
}

/* Growable candidate pool + frame stack (the explicit DFS stack). */

typedef struct {
    i64 start, count, idx;
} Frame;

typedef struct {
    Cand *pool;
    i64 pool_len, pool_cap;
    Frame *frames;
    i64 frames_len, frames_cap;
} Stack;

static int stack_init(Stack *s, i64 n) {
    s->pool_len = 0;
    s->pool_cap = 4 * n + 16;
    s->frames_len = 0;
    s->frames_cap = n + 16;
    s->pool = (Cand *)malloc((size_t)s->pool_cap * sizeof(Cand));
    s->frames = (Frame *)malloc((size_t)s->frames_cap * sizeof(Frame));
    return (s->pool && s->frames) ? OK : ERR_ALLOC;
}

static void stack_free(Stack *s) {
    free(s->pool);
    free(s->frames);
}

static int pool_reserve(Stack *s, i64 extra) {
    if (s->pool_len + extra <= s->pool_cap) return OK;
    i64 cap = s->pool_cap;
    while (cap < s->pool_len + extra) cap *= 2;
    Cand *p = (Cand *)realloc(s->pool, (size_t)cap * sizeof(Cand));
    if (!p) return ERR_ALLOC;
    s->pool = p;
    s->pool_cap = cap;
    return OK;
}

static int frame_push(Stack *s, i64 start, i64 count, i64 idx) {
    if (s->frames_len == s->frames_cap) {
        i64 cap = s->frames_cap * 2;
        Frame *f = (Frame *)realloc(s->frames, (size_t)cap * sizeof(Frame));
        if (!f) return ERR_ALLOC;
        s->frames = f;
        s->frames_cap = cap;
    }
    s->frames[s->frames_len].start = start;
    s->frames[s->frames_len].count = count;
    s->frames[s->frames_len].idx = idx;
    s->frames_len++;
    return OK;
}

/* ------------------------------------------------------------------ */
/* Dominance memo: dict semantics (lookup by serialized key, overwrite */
/* in place, FIFO eviction in insertion order) on a chained hash table */
/* threaded with an insertion-order list.                              */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 *key;
    i64 klen;
    u64 hash;
    i64 value;
    i64 prev, next; /* insertion-order links (-1 terminated) */
    i64 chain;      /* bucket chain / free-list link */
} MEntry;

typedef struct {
    MEntry *e;
    i64 cap, used, count;
    i64 *buckets;
    u64 nbuckets; /* power of two */
    i64 head, tail, free_list;
} Memo;

static u64 memo_hash(const i64 *key, i64 klen) {
    const unsigned char *p = (const unsigned char *)key;
    size_t nbytes = (size_t)klen * sizeof(i64);
    u64 h = 1469598103934665603ull; /* FNV-1a 64 */
    for (size_t i = 0; i < nbytes; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

static int memo_init(Memo *m) {
    m->cap = 64;
    m->used = 0;
    m->count = 0;
    m->nbuckets = 64;
    m->head = m->tail = m->free_list = -1;
    m->e = (MEntry *)malloc((size_t)m->cap * sizeof(MEntry));
    m->buckets = (i64 *)malloc(m->nbuckets * sizeof(i64));
    if (!m->e || !m->buckets) return ERR_ALLOC;
    for (u64 b = 0; b < m->nbuckets; b++) m->buckets[b] = -1;
    return OK;
}

static void memo_free(Memo *m) {
    for (i64 i = m->head; i >= 0; i = m->e[i].next) free(m->e[i].key);
    free(m->e);
    free(m->buckets);
}

static i64 memo_find(const Memo *m, const i64 *key, i64 klen, u64 h) {
    for (i64 i = m->buckets[h & (m->nbuckets - 1)]; i >= 0; i = m->e[i].chain) {
        if (m->e[i].hash == h && m->e[i].klen == klen &&
            memcmp(m->e[i].key, key, (size_t)klen * sizeof(i64)) == 0)
            return i;
    }
    return -1;
}

static void memo_unlink_bucket(Memo *m, i64 slot) {
    i64 *cursor = &m->buckets[m->e[slot].hash & (m->nbuckets - 1)];
    while (*cursor != slot) cursor = &m->e[*cursor].chain;
    *cursor = m->e[slot].chain;
}

static void memo_evict_oldest(Memo *m) {
    i64 slot = m->head;
    m->head = m->e[slot].next;
    if (m->head >= 0)
        m->e[m->head].prev = -1;
    else
        m->tail = -1;
    memo_unlink_bucket(m, slot);
    free(m->e[slot].key);
    m->e[slot].key = NULL;
    m->e[slot].chain = m->free_list;
    m->free_list = slot;
    m->count--;
}

static int memo_grow(Memo *m) {
    u64 nb = m->nbuckets * 2;
    i64 *buckets = (i64 *)malloc(nb * sizeof(i64));
    if (!buckets) return ERR_ALLOC;
    for (u64 b = 0; b < nb; b++) buckets[b] = -1;
    free(m->buckets);
    m->buckets = buckets;
    m->nbuckets = nb;
    for (i64 i = m->head; i >= 0; i = m->e[i].next) {
        u64 b = m->e[i].hash & (nb - 1);
        m->e[i].chain = m->buckets[b];
        m->buckets[b] = i;
    }
    return OK;
}

/* Insert a key known to be absent (Python: memo[key] = mu on a miss). */
static int memo_insert(Memo *m, const i64 *key, i64 klen, u64 h, i64 value) {
    if (m->count + 1 > (i64)(m->nbuckets - m->nbuckets / 4)) {
        if (memo_grow(m) != OK) return ERR_ALLOC;
    }
    i64 slot;
    if (m->free_list >= 0) {
        slot = m->free_list;
        m->free_list = m->e[slot].chain;
    } else {
        if (m->used == m->cap) {
            i64 cap = m->cap * 2;
            MEntry *e = (MEntry *)realloc(m->e, (size_t)cap * sizeof(MEntry));
            if (!e) return ERR_ALLOC;
            m->e = e;
            m->cap = cap;
        }
        slot = m->used++;
    }
    MEntry *en = &m->e[slot];
    en->key = (i64 *)malloc((size_t)klen * sizeof(i64));
    if (!en->key) return ERR_ALLOC;
    memcpy(en->key, key, (size_t)klen * sizeof(i64));
    en->klen = klen;
    en->hash = h;
    en->value = value;
    en->next = -1;
    en->prev = m->tail;
    if (m->tail >= 0)
        m->e[m->tail].next = slot;
    else
        m->head = slot;
    m->tail = slot;
    u64 b = h & (m->nbuckets - 1);
    en->chain = m->buckets[b];
    m->buckets[b] = slot;
    m->count++;
    return OK;
}

/* ------------------------------------------------------------------ */
/* ABI                                                                 */
/* ------------------------------------------------------------------ */

EXPORT i64 repro_abi(void) { return NATIVE_ABI_VERSION; }

/* cfg[] layout for repro_dfs. */
enum {
    CFG_N = 0,
    CFG_P,
    CFG_CURTAIL,
    CFG_ALPHA_BETA,
    CFG_EQUIVALENCE,
    CFG_LOWER_BOUNDS,
    CFG_DOMINANCE,
    CFG_CHEAPEST_FIRST,
    CFG_MAX_MEMO,
    CFG_HAS_DEADLINE,
    CFG_BUDGET, /* -1: no register budget */
    CFG_MAX_LATENCY,
    CFG_BEST_NOPS,
    CFG_OMEGA_CALLS,
    CFG_IMPROVEMENTS,
    CFG_LEN
};

/* stats[] layout for repro_dfs (prune kinds in telemetry order). */
enum {
    ST_OMEGA = 0,
    ST_IMPROVEMENTS,
    ST_COMPLETED,
    ST_TIMED_OUT,
    ST_MEMO_EVICTED,
    ST_IMPROVED, /* out_order/out_etas/out_issue are valid */
    ST_LEGALITY,
    ST_BOUNDS,
    ST_EQUIVALENCE,
    ST_ALPHA_BETA,
    ST_CURTAIL,
    ST_TIMEOUT,
    ST_DOMINANCE,
    ST_LEN
};

/* The pruned DFS of schedule_block (mirror of _run_fast_dfs).
 *
 * CSR pairs (xxx_off has n+1 entries) carry the dense predecessor,
 * successor and register-operand lists.  pipe_last0/var_bound use the
 * NONE sentinel; deadline_rel is the remaining wall-clock budget in
 * seconds, measured from this call's entry (only read when
 * cfg[CFG_HAS_DEADLINE]).  Outputs: out_order/out_etas/out_issue hold
 * the best complete schedule found *here* (valid iff
 * stats[ST_IMPROVED]), stats the counters.
 */
EXPORT i64 repro_dfs(
    const i64 *cfg,
    const i64 *lat, const i64 *enq, const i64 *sig,
    const i64 *pred_off, const i64 *pred_lst,
    const i64 *succ_off, const i64 *succ_lst,
    const i64 *pipe_enq, const i64 *pipe_last0,
    const i64 *var_bound,
    const i64 *seed_at, const i64 *chain, const i64 *users0,
    const i64 *opnd_off, const i64 *opnd_lst, const i64 *produces,
    double deadline_rel,
    i64 *out_order, i64 *out_etas, i64 *out_issue, i64 *stats)
{
    const i64 n = cfg[CFG_N];
    const i64 P = cfg[CFG_P];
    const i64 curtail = cfg[CFG_CURTAIL];
    const int alpha_beta = cfg[CFG_ALPHA_BETA] != 0;
    const int equivalence = cfg[CFG_EQUIVALENCE] != 0;
    const int lower_bounds = cfg[CFG_LOWER_BOUNDS] != 0;
    const int dominance = cfg[CFG_DOMINANCE] != 0;
    const int cheapest_first = cfg[CFG_CHEAPEST_FIRST] != 0;
    const i64 max_memo = cfg[CFG_MAX_MEMO];
    const int has_deadline = cfg[CFG_HAS_DEADLINE] != 0;
    const i64 budget = cfg[CFG_BUDGET];
    const i64 max_latency = cfg[CFG_MAX_LATENCY];
    const double t0 = has_deadline ? now_sec() : 0.0;

    const i64 W = (n >> 6) + 1; /* always >= 1: no zero-size allocations */
    i64 rc = ERR_ALLOC;

    /* ---- allocations ---- */
    i64 *order = NULL, *etas = NULL, *issue = NULL;
    i64 *saved_p = NULL, *saved_v = NULL, *indeg = NULL;
    i64 *pipe_last = NULL, *users = NULL, *used_pipes = NULL;
    i64 *consumers_left = NULL;
    u64 *ready = NULL, *mask = NULL, *succ_bits = NULL;
    unsigned char *trivial = NULL;
    i64 *key_buf = NULL, *dang_k = NULL, *dang_s = NULL, *seen = NULL;
    Stack st = {0};
    Memo memo = {0};
    int memo_live = 0, stack_live = 0;

    order = (i64 *)malloc((size_t)n * sizeof(i64));
    etas = (i64 *)malloc((size_t)n * sizeof(i64));
    issue = (i64 *)calloc((size_t)n, sizeof(i64));
    saved_p = (i64 *)malloc((size_t)n * sizeof(i64));
    saved_v = (i64 *)malloc((size_t)n * sizeof(i64));
    indeg = (i64 *)malloc((size_t)n * sizeof(i64));
    pipe_last = (i64 *)malloc((size_t)(P > 0 ? P : 1) * sizeof(i64));
    users = (i64 *)malloc((size_t)(P > 0 ? P : 1) * sizeof(i64));
    used_pipes = (i64 *)malloc((size_t)(P > 0 ? P : 1) * sizeof(i64));
    ready = (u64 *)calloc((size_t)W, sizeof(u64));
    mask = (u64 *)calloc((size_t)W, sizeof(u64));
    succ_bits = (u64 *)calloc((size_t)(n * W), sizeof(u64));
    trivial = (unsigned char *)malloc((size_t)n);
    dang_k = (i64 *)malloc((size_t)(max_latency + 2) * sizeof(i64));
    dang_s = (i64 *)malloc((size_t)(max_latency + 2) * sizeof(i64));
    seen = (i64 *)malloc((size_t)n * sizeof(i64));
    /* Worst-case key: mask words + three length-prefixed segments. */
    key_buf = (i64 *)malloc(
        (size_t)(W + 3 + 2 * P + 2 * (max_latency + 2) + 2 * n) * sizeof(i64));
    if (!order || !etas || !issue || !saved_p || !saved_v || !indeg ||
        !pipe_last || !users || !used_pipes || !ready || !mask ||
        !succ_bits || !trivial || !dang_k || !dang_s || !seen || !key_buf)
        goto cleanup;
    if (budget >= 0) {
        consumers_left = (i64 *)calloc((size_t)n, sizeof(i64));
        if (!consumers_left) goto cleanup;
        for (i64 k = 0; k < n; k++)
            for (i64 j = opnd_off[k]; j < opnd_off[k + 1]; j++)
                consumers_left[opnd_lst[j]]++;
    }
    if (stack_init(&st, n) != OK) goto cleanup;
    stack_live = 1;
    if (memo_init(&memo) != OK) goto cleanup;
    memo_live = 1;

    /* ---- static structure ---- */
    memcpy(pipe_last, pipe_last0, (size_t)P * sizeof(i64));
    memcpy(users, users0, (size_t)P * sizeof(i64));
    i64 n_used = 0;
    for (i64 p = 0; p < P; p++)
        if (users[p]) used_pipes[n_used++] = p;
    int has_vb = 0;
    for (i64 k = 0; k < n; k++)
        if (var_bound[k] != NONE) has_vb = 1;
    for (i64 k = 0; k < n; k++) {
        indeg[k] = pred_off[k + 1] - pred_off[k];
        if (indeg[k] == 0) bs_set(ready, k);
        for (i64 j = succ_off[k]; j < succ_off[k + 1]; j++)
            bs_set(succ_bits + k * W, succ_lst[j]);
    }
    int any_trivial = 0;
    for (i64 k = 0; k < n; k++) {
        trivial[k] = (sig[k] < 0 && indeg[k] == 0) ? 1 : 0;
        if (trivial[k]) any_trivial = 1;
    }
    any_trivial = equivalence && any_trivial;

    /* ---- mutable search state ---- */
    i64 olen = 0, total_nops = 0, last_iss = -1, live_count = 0;
    i64 best_nops = cfg[CFG_BEST_NOPS];
    i64 omega_calls = cfg[CFG_OMEGA_CALLS];
    i64 improvements = cfg[CFG_IMPROVEMENTS];
    i64 improved = 0;
    i64 completed = 1, timed_out = 0;
    i64 n_legality = 0, n_bounds = 0, n_equivalence = 0, n_alpha_beta = 0;
    i64 n_dominance = 0, n_curtail = 0, n_timeout = 0, n_memo_evicted = 0;

    i64 cstart = 0, ccount = 0, cidx = 0;
    int at_root = 1;
    i64 pending = n;

    while (1) {
        if (pending >= 0) {
            /* ---- node entry: candidates + eta, then node-level
             * prunes in reference order ---- */
            i64 remaining = pending;
            pending = -1;
            if (at_root) {
                at_root = 0;
            } else {
                if (frame_push(&st, cstart, ccount, cidx) != OK)
                    goto cleanup;
            }
            i64 base = last_iss + 1;
            cstart = st.pool_len;
            ccount = 0;
            i64 lb = 0;
            if (pool_reserve(&st, remaining) != OK) goto cleanup;
            for (i64 w = 0; w < W; w++) {
                u64 rm = ready[w];
                while (rm) {
                    i64 k = (w << 6) + ctz64(rm);
                    rm &= rm - 1;
                    i64 e = base;
                    i64 p = sig[k];
                    if (p >= 0) {
                        i64 pl = pipe_last[p];
                        if (pl != NONE) {
                            i64 v = pl + enq[k];
                            if (v > e) e = v;
                        }
                    }
                    if (has_vb) {
                        i64 v = var_bound[k];
                        if (v != NONE && v > e) e = v;
                    }
                    for (i64 j = pred_off[k]; j < pred_off[k + 1]; j++) {
                        i64 d = pred_lst[j];
                        i64 v = issue[d] + lat[d];
                        if (v > e) e = v;
                    }
                    i64 eta = e - base;
                    st.pool[st.pool_len].eta = eta;
                    st.pool[st.pool_len].seedp = seed_at[k];
                    st.pool[st.pool_len].k = k;
                    st.pool_len++;
                    ccount++;
                    if (lower_bounds) {
                        i64 gap = 1 + eta + chain[k] - remaining;
                        if (gap > lb) lb = gap;
                    }
                }
            }
            n_legality += remaining - ccount;
            cand_sort(st.pool + cstart, ccount, cheapest_first);
            cidx = 0;

            int pruned = 0;
            if (olen > 0) {
                i64 mu = total_nops;
                if (lower_bounds) {
                    i64 tl = base - 1;
                    for (i64 u = 0; u < n_used; u++) {
                        i64 p = used_pipes[u];
                        i64 ku = users[p];
                        if (ku) {
                            i64 pl = pipe_last[p];
                            i64 pe = pipe_enq[p];
                            i64 first = (pl == NONE) ? tl + 1 : pl + pe;
                            i64 gap = (first + (ku - 1) * pe) - (tl + remaining);
                            if (gap > lb) lb = gap;
                        }
                    }
                    if (mu + lb >= best_nops) {
                        n_bounds++;
                        pruned = 1;
                    }
                }
                if (!pruned && dominance) {
                    i64 tl = base - 1;
                    i64 klen = 0;
                    for (i64 w = 0; w < W; w++)
                        key_buf[klen++] = (i64)mask[w];
                    i64 np_at = klen++;
                    i64 cnt = 0;
                    for (i64 p = 0; p < P; p++) {
                        i64 pl = pipe_last[p];
                        if (pl != NONE && pl - tl + pipe_enq[p] > 1) {
                            key_buf[klen++] = p;
                            key_buf[klen++] = pl - tl;
                            cnt++;
                        }
                    }
                    key_buf[np_at] = cnt;
                    i64 nd = 0;
                    i64 from = olen > max_latency + 1 ? olen - (max_latency + 1)
                                                      : 0;
                    for (i64 q = from; q < olen; q++) {
                        i64 k = order[q];
                        i64 slack = issue[k] + lat[k] - (tl + 1);
                        if (slack > 0 && bs_escapes(succ_bits + k * W, mask, W)) {
                            dang_k[nd] = k;
                            dang_s[nd] = slack;
                            nd++;
                        }
                    }
                    for (i64 i = 1; i < nd; i++) { /* sort by k (unique) */
                        i64 xk = dang_k[i], xs = dang_s[i];
                        i64 j = i - 1;
                        while (j >= 0 && dang_k[j] > xk) {
                            dang_k[j + 1] = dang_k[j];
                            dang_s[j + 1] = dang_s[j];
                            j--;
                        }
                        dang_k[j + 1] = xk;
                        dang_s[j + 1] = xs;
                    }
                    key_buf[klen++] = nd;
                    for (i64 i = 0; i < nd; i++) {
                        key_buf[klen++] = dang_k[i];
                        key_buf[klen++] = dang_s[i];
                    }
                    i64 nr_at = klen++;
                    cnt = 0;
                    if (has_vb) {
                        for (i64 k = 0; k < n; k++) { /* ascending k */
                            i64 b = var_bound[k];
                            if (b != NONE && !bs_test(mask, k) && b > tl + 1) {
                                key_buf[klen++] = k;
                                key_buf[klen++] = b - (tl + 1);
                                cnt++;
                            }
                        }
                    }
                    key_buf[nr_at] = cnt;

                    u64 h = memo_hash(key_buf, klen);
                    i64 slot = memo_find(&memo, key_buf, klen, h);
                    if (slot >= 0) {
                        if (mu >= memo.e[slot].value) {
                            n_dominance++;
                            pruned = 1;
                        } else {
                            /* Tighter prefix: overwrite in place (keeps
                             * insertion position, exactly like dict
                             * assignment to an existing key). */
                            memo.e[slot].value = mu;
                        }
                    } else if (max_memo > 0) {
                        if (memo.count >= max_memo) {
                            memo_evict_oldest(&memo);
                            n_memo_evicted++;
                        }
                        if (memo_insert(&memo, key_buf, klen, h, mu) != OK)
                            goto cleanup;
                    }
                }
            }

            if (pruned) {
                ccount = 0;
                st.pool_len = cstart;
            } else if (any_trivial && ccount > 1) {
                i64 nseen = 0, wout = 0;
                for (i64 j = 0; j < ccount; j++) {
                    Cand c = st.pool[cstart + j];
                    if (trivial[c.k]) {
                        int dup = 0;
                        for (i64 s = 0; s < nseen; s++) {
                            if (memcmp(succ_bits + c.k * W,
                                       succ_bits + seen[s] * W,
                                       (size_t)W * sizeof(u64)) == 0) {
                                dup = 1;
                                break;
                            }
                        }
                        if (dup) {
                            n_equivalence++;
                            continue;
                        }
                        seen[nseen++] = c.k;
                    }
                    st.pool[cstart + wout] = c;
                    wout++;
                }
                ccount = wout;
                st.pool_len = cstart + ccount;
            }
        }

        if (cidx == ccount) {
            if (st.frames_len == 0) break;
            /* Close the candidate that opened this frame, undo it, and
             * resume the suspended parent frame. */
            i64 k = order[olen - 1];
            for (i64 j = succ_off[k]; j < succ_off[k + 1]; j++) {
                i64 s = succ_lst[j];
                if (indeg[s] == 0) bs_clear(ready, s);
                indeg[s]++;
            }
            bs_set(ready, k);
            bs_clear(mask, k);
            if (budget >= 0) {
                if (produces[k] && consumers_left[k] > 0) live_count--;
                for (i64 j = opnd_off[k]; j < opnd_off[k + 1]; j++) {
                    i64 r = opnd_lst[j];
                    if (consumers_left[r] == 0) live_count++;
                    consumers_left[r]++;
                }
            }
            i64 p = sig[k];
            if (p >= 0) users[p]++;
            olen--;
            i64 e2 = etas[olen];
            total_nops -= e2;
            last_iss = issue[k] - e2 - 1;
            i64 sp = saved_p[olen];
            if (sp >= 0) pipe_last[sp] = saved_v[olen];
            st.pool_len = cstart;
            Frame f = st.frames[--st.frames_len];
            cstart = f.start;
            ccount = f.count;
            cidx = f.idx;
            continue;
        }
        Cand c = st.pool[cstart + cidx];
        cidx++;
        i64 eta = c.eta;
        i64 k = c.k;
        if (budget >= 0) {
            i64 freed = 0;
            for (i64 j = opnd_off[k]; j < opnd_off[k + 1]; j++)
                if (consumers_left[opnd_lst[j]] == 1) freed++;
            if (live_count - freed + produces[k] > budget)
                continue; /* would not be allocatable: treat as illegal */
        }
        /* Step [4]: curtail-point truncation. */
        if (omega_calls >= curtail) {
            n_curtail++;
            completed = 0;
            break;
        }
        if (has_deadline && now_sec() - t0 > deadline_rel) {
            n_timeout++;
            timed_out = 1;
            completed = 0;
            break;
        }
        omega_calls++;
        /* Push k (eta cached from node entry; last_iss = -1 on an empty
         * order makes iss = eta, as Omega defines). */
        i64 iss = last_iss + 1 + eta;
        order[olen] = k;
        etas[olen] = eta;
        issue[k] = iss;
        total_nops += eta;
        last_iss = iss;
        i64 p = sig[k];
        if (p < 0) {
            saved_p[olen] = -1;
        } else {
            saved_p[olen] = p;
            saved_v[olen] = pipe_last[p];
            pipe_last[p] = iss;
            users[p]--;
        }
        olen++;
        if (budget >= 0) {
            for (i64 j = opnd_off[k]; j < opnd_off[k + 1]; j++) {
                i64 r = opnd_lst[j];
                if (--consumers_left[r] == 0) live_count--;
            }
            if (produces[k] && consumers_left[k] > 0) live_count++;
        }
        i64 depth = olen;
        int done = 0;
        if (depth == n) {
            /* Step [3]: complete schedule; adopt if strictly better. */
            if (total_nops < best_nops) {
                best_nops = total_nops;
                memcpy(out_order, order, (size_t)n * sizeof(i64));
                memcpy(out_etas, etas, (size_t)n * sizeof(i64));
                for (i64 q = 0; q < n; q++) out_issue[q] = issue[order[q]];
                improvements++;
                improved = 1;
            }
            done = 1;
        } else if (alpha_beta && total_nops >= best_nops) {
            /* Step [6]: mu never decreases as a schedule grows. */
            n_alpha_beta++;
            done = 1;
        }
        if (done) {
            if (budget >= 0) {
                if (produces[k] && consumers_left[k] > 0) live_count--;
                for (i64 j = opnd_off[k]; j < opnd_off[k + 1]; j++) {
                    i64 r = opnd_lst[j];
                    if (consumers_left[r] == 0) live_count++;
                    consumers_left[r]++;
                }
            }
            if (p >= 0) users[p]++;
            olen--;
            total_nops -= eta;
            last_iss = iss - eta - 1;
            i64 sp = saved_p[olen];
            if (sp >= 0) pipe_last[sp] = saved_v[olen];
        } else {
            bs_clear(ready, k);
            bs_set(mask, k);
            for (i64 j = succ_off[k]; j < succ_off[k + 1]; j++) {
                i64 s = succ_lst[j];
                if (--indeg[s] == 0) bs_set(ready, s);
            }
            pending = n - depth;
        }
    }

    stats[ST_OMEGA] = omega_calls;
    stats[ST_IMPROVEMENTS] = improvements;
    stats[ST_COMPLETED] = completed;
    stats[ST_TIMED_OUT] = timed_out;
    stats[ST_MEMO_EVICTED] = n_memo_evicted;
    stats[ST_IMPROVED] = improved;
    stats[ST_LEGALITY] = n_legality;
    stats[ST_BOUNDS] = n_bounds;
    stats[ST_EQUIVALENCE] = n_equivalence;
    stats[ST_ALPHA_BETA] = n_alpha_beta;
    stats[ST_CURTAIL] = n_curtail;
    stats[ST_TIMEOUT] = n_timeout;
    stats[ST_DOMINANCE] = n_dominance;
    rc = OK;

cleanup:
    if (memo_live) memo_free(&memo);
    if (stack_live) stack_free(&st);
    free(order);
    free(etas);
    free(issue);
    free(saved_p);
    free(saved_v);
    free(indeg);
    free(pipe_last);
    free(users);
    free(used_pipes);
    free(consumers_left);
    free(ready);
    free(mask);
    free(succ_bits);
    free(trivial);
    free(key_buf);
    free(dang_k);
    free(dang_s);
    free(seen);
    return rc;
}

/* ------------------------------------------------------------------ */
/* Windowed split search (mirror of run_fast_split).                   */
/* ------------------------------------------------------------------ */

/* Shared flat timing state, carried across windows. */
typedef struct {
    i64 n, P;
    const i64 *lat, *enq, *sig;
    const i64 *pred_off, *pred_lst, *succ_off, *succ_lst;
    const i64 *var_bound;
    int has_vb;
    i64 *order, *etas, *issue, *sp, *sv, *pipe_last;
    i64 olen, total_nops;
} SState;

static i64 s_peek(const SState *s, i64 k) {
    i64 base = s->olen ? s->issue[s->order[s->olen - 1]] + 1 : 0;
    i64 e = base;
    i64 p = s->sig[k];
    if (p >= 0) {
        i64 pl = s->pipe_last[p];
        if (pl != NONE) {
            i64 v = pl + s->enq[k];
            if (v > e) e = v;
        }
    }
    if (s->has_vb) {
        i64 v = s->var_bound[k];
        if (v != NONE && v > e) e = v;
    }
    for (i64 j = s->pred_off[k]; j < s->pred_off[k + 1]; j++) {
        i64 d = s->pred_lst[j];
        i64 v = s->issue[d] + s->lat[d];
        if (v > e) e = v;
    }
    return e - base;
}

/* eta < 0 means "compute it" (etas are always >= 0). */
static void s_push(SState *s, i64 k, i64 eta) {
    if (eta < 0) eta = s_peek(s, k);
    i64 iss = s->olen ? s->issue[s->order[s->olen - 1]] + 1 + eta : eta;
    s->order[s->olen] = k;
    s->etas[s->olen] = eta;
    s->issue[k] = iss;
    s->total_nops += eta;
    i64 p = s->sig[k];
    if (p < 0) {
        s->sp[s->olen] = -1;
    } else {
        s->sp[s->olen] = p;
        s->sv[s->olen] = s->pipe_last[p];
        s->pipe_last[p] = iss;
    }
    s->olen++;
}

static void s_pop(SState *s) {
    s->olen--;
    s->total_nops -= s->etas[s->olen];
    i64 sp = s->sp[s->olen];
    if (sp >= 0) s->pipe_last[sp] = s->sv[s->olen];
}

/* cfg[] layout for repro_split. */
enum {
    SCFG_N = 0,
    SCFG_P,
    SCFG_WINDOW,
    SCFG_CURTAIL,
    SCFG_LEN
};

/* stats[] layout for repro_split. */
enum {
    SST_OMEGA = 0,
    SST_ALL_COMPLETED,
    SST_LEGALITY,
    SST_BOUNDS,
    SST_ALPHA_BETA,
    SST_CURTAIL,
    SST_LEN
};

EXPORT i64 repro_split(
    const i64 *cfg,
    const i64 *lat, const i64 *enq, const i64 *sig,
    const i64 *pred_off, const i64 *pred_lst,
    const i64 *succ_off, const i64 *succ_lst,
    const i64 *pipe_enq, const i64 *pipe_last0,
    const i64 *var_bound,
    const i64 *dense_seed,
    i64 *out_order, i64 *out_etas, i64 *out_issue, i64 *stats)
{
    (void)pipe_enq; /* the splitter has no pipeline-capacity bound */
    const i64 n = cfg[SCFG_N];
    const i64 P = cfg[SCFG_P];
    const i64 window = cfg[SCFG_WINDOW];
    const i64 curtail = cfg[SCFG_CURTAIL];
    const i64 W = (n >> 6) + 1; /* always >= 1: no zero-size allocations */
    i64 rc = ERR_ALLOC;

    SState s;
    s.n = n;
    s.P = P;
    s.lat = lat;
    s.enq = enq;
    s.sig = sig;
    s.pred_off = pred_off;
    s.pred_lst = pred_lst;
    s.succ_off = succ_off;
    s.succ_lst = succ_lst;
    s.var_bound = var_bound;
    s.has_vb = 0;
    for (i64 k = 0; k < n; k++)
        if (var_bound[k] != NONE) s.has_vb = 1;
    s.olen = 0;
    s.total_nops = 0;

    i64 *wseed = NULL, *windeg = NULL, *local_indeg = NULL;
    i64 *local_ready = NULL, *chain_w = NULL;
    i64 *wbest = NULL, *wgreedy = NULL;
    unsigned char *in_window = NULL;
    u64 *ready_mask = NULL;
    Stack st = {0};
    int stack_live = 0;

    s.order = (i64 *)malloc((size_t)n * sizeof(i64));
    s.etas = (i64 *)malloc((size_t)n * sizeof(i64));
    s.issue = (i64 *)calloc((size_t)n, sizeof(i64));
    s.sp = (i64 *)malloc((size_t)n * sizeof(i64));
    s.sv = (i64 *)malloc((size_t)n * sizeof(i64));
    s.pipe_last = (i64 *)malloc((size_t)(P > 0 ? P : 1) * sizeof(i64));
    wseed = (i64 *)calloc((size_t)n, sizeof(i64));
    windeg = (i64 *)calloc((size_t)n, sizeof(i64));
    local_indeg = (i64 *)calloc((size_t)n, sizeof(i64));
    local_ready = (i64 *)malloc((size_t)n * sizeof(i64));
    chain_w = (i64 *)calloc((size_t)n, sizeof(i64));
    wbest = (i64 *)malloc((size_t)n * sizeof(i64));
    wgreedy = (i64 *)malloc((size_t)n * sizeof(i64));
    in_window = (unsigned char *)calloc((size_t)n, 1);
    ready_mask = (u64 *)calloc((size_t)W, sizeof(u64));
    if (!s.order || !s.etas || !s.issue || !s.sp || !s.sv || !s.pipe_last ||
        !wseed || !windeg || !local_indeg || !local_ready || !chain_w ||
        !wbest || !wgreedy || !in_window || !ready_mask)
        goto cleanup;
    if (stack_init(&st, n) != OK) goto cleanup;
    stack_live = 1;
    memcpy(s.pipe_last, pipe_last0, (size_t)P * sizeof(i64));

    i64 omega_calls = 0;
    i64 all_completed = 1;
    i64 n_legality = 0, n_bounds = 0, n_alpha_beta = 0, n_curtail = 0;

    for (i64 w_start = 0; w_start < n; w_start += window) {
        const i64 *members = dense_seed + w_start;
        i64 wn = window < n - w_start ? window : n - w_start;

        /* ---- window setup (member set, window indegrees, chain) ---- */
        for (i64 i = 0; i < wn; i++) {
            in_window[members[i]] = 1;
            wseed[members[i]] = i;
        }
        memset(ready_mask, 0, (size_t)W * sizeof(u64));
        for (i64 i = 0; i < wn; i++) {
            i64 k = members[i];
            i64 d = 0;
            for (i64 j = pred_off[k]; j < pred_off[k + 1]; j++)
                if (in_window[pred_lst[j]]) d++;
            windeg[k] = d;
            if (d == 0) bs_set(ready_mask, k);
        }
        /* Latency chains within the window: members are in seed
         * (topological) order, so a reverse scan sees inner successors
         * first. */
        for (i64 i = wn - 1; i >= 0; i--) {
            i64 k = members[i];
            i64 best = 0;
            for (i64 j = succ_off[k]; j < succ_off[k + 1]; j++) {
                i64 sx = succ_lst[j];
                if (in_window[sx]) {
                    i64 v = lat[k] + chain_w[sx];
                    if (v > best) best = v;
                }
            }
            chain_w[k] = best;
        }
        i64 base_nops = s.total_nops;
        i64 entry_len = s.olen;

        /* ---- incumbents: seed slice and greedy order (n each) ---- */
        for (i64 i = 0; i < wn; i++) s_push(&s, members[i], -1);
        i64 best_nops = s.total_nops - base_nops;
        for (i64 i = 0; i < wn; i++) s_pop(&s);
        memcpy(wbest, members, (size_t)wn * sizeof(i64));

        {
            i64 nready = 0;
            for (i64 i = 0; i < wn; i++) {
                i64 k = members[i];
                local_indeg[k] = windeg[k];
                if (windeg[k] == 0) local_ready[nready++] = k;
            }
            i64 gn = 0;
            while (nready) {
                i64 pick_at = 0;
                i64 pick_eta = s_peek(&s, local_ready[0]);
                i64 pick_seed = wseed[local_ready[0]];
                for (i64 i = 1; i < nready; i++) {
                    i64 e = s_peek(&s, local_ready[i]);
                    i64 sd = wseed[local_ready[i]];
                    if (e < pick_eta || (e == pick_eta && sd < pick_seed)) {
                        pick_at = i;
                        pick_eta = e;
                        pick_seed = sd;
                    }
                }
                i64 pick = local_ready[pick_at];
                local_ready[pick_at] = local_ready[--nready];
                s_push(&s, pick, -1);
                wgreedy[gn++] = pick;
                for (i64 j = succ_off[pick]; j < succ_off[pick + 1]; j++) {
                    i64 sx = succ_lst[j];
                    if (in_window[sx] && --local_indeg[sx] == 0)
                        local_ready[nready++] = sx;
                }
            }
            i64 greedy_nops = s.total_nops - base_nops;
            for (i64 i = 0; i < gn; i++) s_pop(&s);
            if (greedy_nops < best_nops) {
                best_nops = greedy_nops;
                memcpy(wbest, wgreedy, (size_t)wn * sizeof(i64));
            }
        }
        i64 wcalls = 2 * wn;
        i64 wcomplete = 1;

        /* ---- the window DFS ---- */
        st.pool_len = 0;
        st.frames_len = 0;
        i64 cstart = 0, ccount = 0, cidx = 0;
        int have_frame = 0;
        i64 expand_remaining = wn;

        while (1) {
            if (!have_frame || expand_remaining >= 0) {
                /* wexpand(expand_remaining) */
                i64 remaining = expand_remaining;
                expand_remaining = -1;
                cstart = st.pool_len;
                ccount = 0;
                if (pool_reserve(&st, remaining) != OK) goto cleanup;
                i64 base = s.olen ? s.issue[s.order[s.olen - 1]] + 1 : 0;
                for (i64 w = 0; w < W; w++) {
                    u64 rm = ready_mask[w];
                    while (rm) {
                        i64 k = (w << 6) + ctz64(rm);
                        rm &= rm - 1;
                        i64 e = base;
                        i64 p = sig[k];
                        if (p >= 0) {
                            i64 pl = s.pipe_last[p];
                            if (pl != NONE) {
                                i64 v = pl + enq[k];
                                if (v > e) e = v;
                            }
                        }
                        if (s.has_vb) {
                            i64 v = var_bound[k];
                            if (v != NONE && v > e) e = v;
                        }
                        for (i64 j = pred_off[k]; j < pred_off[k + 1]; j++) {
                            i64 d = pred_lst[j];
                            i64 v = s.issue[d] + lat[d];
                            if (v > e) e = v;
                        }
                        st.pool[st.pool_len].eta = e - base;
                        st.pool[st.pool_len].seedp = wseed[k];
                        st.pool[st.pool_len].k = k;
                        st.pool_len++;
                        ccount++;
                    }
                }
                n_legality += remaining - ccount;
                cand_sort(st.pool + cstart, ccount, 1);
                cidx = 0;
                if (s.olen > entry_len) {
                    i64 window_nops = s.total_nops - base_nops;
                    i64 lb = 0;
                    for (i64 j = 0; j < ccount; j++) {
                        i64 gap = 1 + st.pool[cstart + j].eta +
                                  chain_w[st.pool[cstart + j].k] - remaining;
                        if (gap > lb) lb = gap;
                    }
                    if (window_nops + lb >= best_nops) {
                        n_bounds++;
                        ccount = 0;
                        st.pool_len = cstart;
                    }
                }
                have_frame = 1;
            }

            if (cidx == ccount) {
                if (st.frames_len == 0) break;
                i64 k = s.order[s.olen - 1];
                for (i64 j = succ_off[k]; j < succ_off[k + 1]; j++) {
                    i64 sx = succ_lst[j];
                    if (in_window[sx]) {
                        if (windeg[sx] == 0) bs_clear(ready_mask, sx);
                        windeg[sx]++;
                    }
                }
                bs_set(ready_mask, k);
                s_pop(&s);
                st.pool_len = cstart;
                Frame f = st.frames[--st.frames_len];
                cstart = f.start;
                ccount = f.count;
                cidx = f.idx;
                continue;
            }
            Cand c = st.pool[cstart + cidx];
            cidx++;
            if (wcalls >= curtail) {
                n_curtail++;
                wcomplete = 0;
                /* Unwind the partial window: the shared flat state must
                 * be back at window entry before commit. */
                while (s.olen > entry_len) s_pop(&s);
                break;
            }
            wcalls++;
            s_push(&s, c.k, c.eta);
            i64 window_nops = s.total_nops - base_nops;
            i64 depth = s.olen - entry_len;
            int done = 0;
            if (depth == wn) {
                if (window_nops < best_nops) {
                    best_nops = window_nops;
                    memcpy(wbest, s.order + s.olen - wn,
                           (size_t)wn * sizeof(i64));
                }
                done = 1;
            } else if (window_nops >= best_nops) {
                n_alpha_beta++;
                done = 1;
            }
            if (done) {
                s_pop(&s);
            } else {
                bs_clear(ready_mask, c.k);
                for (i64 j = succ_off[c.k]; j < succ_off[c.k + 1]; j++) {
                    i64 sx = succ_lst[j];
                    if (in_window[sx] && --windeg[sx] == 0)
                        bs_set(ready_mask, sx);
                }
                if (frame_push(&st, cstart, ccount, cidx) != OK)
                    goto cleanup;
                expand_remaining = wn - depth;
            }
        }

        omega_calls += wcalls;
        all_completed = all_completed && wcomplete;

        /* ---- commit the window's best order onto the shared state ---- */
        for (i64 i = 0; i < wn; i++) s_push(&s, wbest[i], -1);
        for (i64 i = 0; i < wn; i++) in_window[members[i]] = 0;
    }

    memcpy(out_order, s.order, (size_t)n * sizeof(i64));
    memcpy(out_etas, s.etas, (size_t)n * sizeof(i64));
    for (i64 q = 0; q < n; q++) out_issue[q] = s.issue[s.order[q]];
    stats[SST_OMEGA] = omega_calls;
    stats[SST_ALL_COMPLETED] = all_completed;
    stats[SST_LEGALITY] = n_legality;
    stats[SST_BOUNDS] = n_bounds;
    stats[SST_ALPHA_BETA] = n_alpha_beta;
    stats[SST_CURTAIL] = n_curtail;
    rc = OK;

cleanup:
    if (stack_live) stack_free(&st);
    free(s.order);
    free(s.etas);
    free(s.issue);
    free(s.sp);
    free(s.sv);
    free(s.pipe_last);
    free(wseed);
    free(windeg);
    free(local_indeg);
    free(local_ready);
    free(chain_w);
    free(wbest);
    free(wgreedy);
    free(in_window);
    free(ready_mask);
    return rc;
}
