"""ctypes bindings for the compiled search kernel.

The marshalling boundary is deliberately dumb: every table the C side
needs is a flat ``int64`` array (``array('q', ...)`` buffers passed as
``int64_t*``), variable-length rows (predecessors, successors, register
operands) travel in CSR form (an ``n+1`` offsets array plus one
concatenated list), ``Optional[int]`` values use ``INT64_MIN`` as the
``None`` sentinel, and results come back through caller-allocated
output arrays (best order/η/issue) plus one flat counters array.  No
structs, no callbacks, no ownership transfer — the C kernel never keeps
a pointer past the call.

Loading is per-process and thread-safe: the first call compiles (or
cache-hits) via :mod:`repro.native.build`, loads the shared object,
checks its reported ABI version, and memoizes either the library or the
failure reason.  A cached object that fails to load or reports a stale
ABI is treated as corruption and recompiled once (``force=True``)
before giving up.
"""

from __future__ import annotations

import ctypes
import threading
import time
from array import array
from typing import List, Optional, Sequence, Tuple

from ..telemetry import prune_counts
from . import build
from .build import NativeBuildError

__all__ = [
    "load_kernel",
    "native_available",
    "unavailable_reason",
    "native_dfs",
    "native_split",
]

#: C-side Optional[int] None sentinel (INT64_MIN).
NONE = -(1 << 63)

# stats[] indices of repro_dfs (keep in sync with kernel.c).
_ST_OMEGA = 0
_ST_IMPROVEMENTS = 1
_ST_COMPLETED = 2
_ST_TIMED_OUT = 3
_ST_MEMO_EVICTED = 4
_ST_IMPROVED = 5
_ST_LEGALITY = 6
_ST_BOUNDS = 7
_ST_EQUIVALENCE = 8
_ST_ALPHA_BETA = 9
_ST_CURTAIL = 10
_ST_TIMEOUT = 11
_ST_DOMINANCE = 12
_ST_LEN = 13

# stats[] indices of repro_split.
_SST_OMEGA = 0
_SST_ALL_COMPLETED = 1
_SST_LEGALITY = 2
_SST_BOUNDS = 3
_SST_ALPHA_BETA = 4
_SST_CURTAIL = 5
_SST_LEN = 6

_I64P = ctypes.POINTER(ctypes.c_int64)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None


def _reset() -> None:
    """Forget the memoized library/failure (test hook)."""
    global _lib, _load_error
    with _lock:
        _lib = None
        _load_error = None


def _set_prototypes(lib: ctypes.CDLL) -> None:
    lib.repro_abi.restype = ctypes.c_int64
    lib.repro_abi.argtypes = []
    lib.repro_dfs.restype = ctypes.c_int64
    lib.repro_dfs.argtypes = [_I64P] * 17 + [ctypes.c_double] + [_I64P] * 4
    lib.repro_split.restype = ctypes.c_int64
    lib.repro_split.argtypes = [_I64P] * 12 + [_I64P] * 4


def load_kernel() -> ctypes.CDLL:
    """The compiled kernel, building/loading it on first use.

    Raises :class:`NativeBuildError` (with a stable reason, memoized for
    the life of the process) when no compiler exists, the compile fails,
    or the object cannot be loaded even after a forced recompile.
    """
    global _lib, _load_error
    if _lib is not None:
        return _lib
    if _load_error is not None:
        raise NativeBuildError(_load_error)
    with _lock:
        if _lib is not None:
            return _lib
        if _load_error is not None:
            raise NativeBuildError(_load_error)
        try:
            path = build.build_kernel()
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                # Corrupted/truncated cache entry: recompile once.
                path = build.build_kernel(force=True)
                lib = ctypes.CDLL(path)
            lib.repro_abi.restype = ctypes.c_int64
            if int(lib.repro_abi()) != build.ABI_VERSION:
                path = build.build_kernel(force=True)
                lib = ctypes.CDLL(path)
                lib.repro_abi.restype = ctypes.c_int64
                if int(lib.repro_abi()) != build.ABI_VERSION:
                    raise NativeBuildError(
                        "compiled kernel reports a stale ABI version"
                    )
            _set_prototypes(lib)
            _lib = lib
        except NativeBuildError as exc:
            _load_error = str(exc)
            raise
        except OSError as exc:
            _load_error = f"compiled kernel failed to load: {exc}"
            raise NativeBuildError(_load_error) from exc
    return _lib


def native_available() -> bool:
    """Whether the compiled kernel can run in this process."""
    try:
        load_kernel()
    except NativeBuildError:
        return False
    return True


def unavailable_reason() -> str:
    """Why :func:`native_available` is ``False`` (for the fallback notice)."""
    if _load_error is not None:
        return _load_error
    return "native kernel unavailable"


# ---------------------------------------------------------------------
# Marshalling helpers
# ---------------------------------------------------------------------


def _i64(seq: Sequence[int]) -> array:
    """An ``array('q')`` buffer (padded so empty tables stay addressable)."""
    a = array("q", seq)
    if not a:
        a.append(0)
    return a


def _ptr(a: array):
    return (ctypes.c_int64 * len(a)).from_buffer(a)


def _csr(rows: Sequence[Tuple[int, ...]]) -> Tuple[array, array]:
    off = array("q", [0])
    lst: List[int] = []
    total = 0
    for row in rows:
        total += len(row)
        off.append(total)
        lst.extend(row)
    return off, _i64(lst)


def _opt(values: Sequence[Optional[int]]) -> array:
    return _i64([NONE if v is None else v for v in values])


def _zeros(count: int) -> array:
    return array("q", bytes(8 * max(count, 1)))


# ---------------------------------------------------------------------
# The DFS (drop-in for repro.sched.core._run_fast_dfs)
# ---------------------------------------------------------------------


def native_dfs(
    flat,
    dag,
    options,
    seed: Tuple[int, ...],
    best,
    omega_calls: int,
    improvements: int,
    start: float,
    chain: List[int],
    users: List[int],
    max_latency: int,
):
    """Run the C DFS; same signature and contract as ``_run_fast_dfs``.

    Every ``FastOutcome`` field is bit-for-bit what the Python fast DFS
    would produce (the kernel mirrors it decision for decision); the
    wall-clock deadline is forwarded as remaining seconds so the C side
    measures against its own monotonic clock.
    """
    from ..sched.core import FastOutcome
    from ..sched.nop_insertion import ScheduleTiming

    lib = load_kernel()
    n = flat.n
    index_of = flat.index_of
    idents = flat.idents
    seed_at = [0] * n
    for pos, ident in enumerate(seed):
        seed_at[index_of[ident]] = pos

    budget = options.max_live
    if budget is None:
        cfg_budget = -1
        opnd_off = array("q", bytes(8 * (n + 1)))
        opnd_lst = _i64(())
        produces = _zeros(n)
    else:
        cfg_budget = budget
        block_by_ident = dag.block.by_ident
        operands = [
            tuple(index_of[r] for r in set(block_by_ident(i).value_refs))
            for i in idents
        ]
        opnd_off, opnd_lst = _csr(operands)
        produces = _i64(
            [1 if block_by_ident(i).op.produces_value else 0 for i in idents]
        )

    has_deadline = 0
    deadline_rel = -1.0
    if options.time_limit is not None:
        has_deadline = 1
        deadline_rel = (start + options.time_limit) - time.perf_counter()

    cfg = _i64(
        [
            n,
            flat.P,
            options.curtail,
            int(options.alpha_beta),
            int(options.equivalence_prune),
            int(options.lower_bound_prune),
            int(options.dominance_prune),
            int(options.cheapest_first),
            options.max_memo_entries,
            has_deadline,
            cfg_budget,
            max_latency,
            best.total_nops,
            omega_calls,
            improvements,
        ]
    )
    pred_off, pred_lst = _csr(flat.preds)
    succ_off, succ_lst = _csr(flat.succs)
    out_order = _zeros(n)
    out_etas = _zeros(n)
    out_issue = _zeros(n)
    stats = _zeros(_ST_LEN)

    rc = lib.repro_dfs(
        _ptr(cfg),
        _ptr(_i64(flat.lat)),
        _ptr(_i64(flat.enq)),
        _ptr(_i64(flat.sig)),
        _ptr(pred_off),
        _ptr(pred_lst),
        _ptr(succ_off),
        _ptr(succ_lst),
        _ptr(_i64(flat.pipe_enq)),
        _ptr(_opt(flat.pipe_last)),
        _ptr(_opt(flat.var_bound)),
        _ptr(_i64(seed_at)),
        _ptr(_i64(chain)),
        _ptr(_i64(users)),
        _ptr(opnd_off),
        _ptr(opnd_lst),
        _ptr(produces),
        ctypes.c_double(deadline_rel),
        _ptr(out_order),
        _ptr(out_etas),
        _ptr(out_issue),
        _ptr(stats),
    )
    if rc != 0:
        raise MemoryError(f"native kernel failed with code {rc}")

    if stats[_ST_IMPROVED]:
        best_timing = ScheduleTiming(
            tuple(idents[q] for q in out_order[:n]),
            tuple(out_etas[:n]),
            tuple(out_issue[:n]),
        )
    else:
        best_timing = best
    return FastOutcome(
        best=best_timing,
        omega_calls=int(stats[_ST_OMEGA]),
        improvements=int(stats[_ST_IMPROVEMENTS]),
        completed=bool(stats[_ST_COMPLETED]),
        timed_out=bool(stats[_ST_TIMED_OUT]),
        memo_evicted=int(stats[_ST_MEMO_EVICTED]),
        prune_counts=prune_counts(
            legality=int(stats[_ST_LEGALITY]),
            bounds=int(stats[_ST_BOUNDS]),
            equivalence=int(stats[_ST_EQUIVALENCE]),
            alpha_beta=int(stats[_ST_ALPHA_BETA]),
            curtail=int(stats[_ST_CURTAIL]),
            timeout=int(stats[_ST_TIMEOUT]),
            dominance=int(stats[_ST_DOMINANCE]),
        ),
    )


# ---------------------------------------------------------------------
# The windowed splitter (C core of run_native_split)
# ---------------------------------------------------------------------


def native_split(flat, seed: Tuple[int, ...], window: int, curtail_per_window: int):
    """Run the C windowed search over ``flat``.

    Returns ``(timing, omega_calls, all_completed, totals)``; the caller
    (``repro.sched.core.run_native_split``) adds the window tuples and
    wraps the ``SplitScheduleResult``.
    """
    from ..sched.nop_insertion import ScheduleTiming

    lib = load_kernel()
    n = flat.n
    index_of = flat.index_of
    idents = flat.idents
    cfg = _i64([n, flat.P, window, curtail_per_window])
    pred_off, pred_lst = _csr(flat.preds)
    succ_off, succ_lst = _csr(flat.succs)
    out_order = _zeros(n)
    out_etas = _zeros(n)
    out_issue = _zeros(n)
    stats = _zeros(_SST_LEN)

    rc = lib.repro_split(
        _ptr(cfg),
        _ptr(_i64(flat.lat)),
        _ptr(_i64(flat.enq)),
        _ptr(_i64(flat.sig)),
        _ptr(pred_off),
        _ptr(pred_lst),
        _ptr(succ_off),
        _ptr(succ_lst),
        _ptr(_i64(flat.pipe_enq)),
        _ptr(_opt(flat.pipe_last)),
        _ptr(_opt(flat.var_bound)),
        _ptr(_i64([index_of[i] for i in seed])),
        _ptr(out_order),
        _ptr(out_etas),
        _ptr(out_issue),
        _ptr(stats),
    )
    if rc != 0:
        raise MemoryError(f"native kernel failed with code {rc}")

    timing = ScheduleTiming(
        tuple(idents[q] for q in out_order[:n]),
        tuple(out_etas[:n]),
        tuple(out_issue[:n]),
    )
    totals = prune_counts(
        legality=int(stats[_SST_LEGALITY]),
        bounds=int(stats[_SST_BOUNDS]),
        alpha_beta=int(stats[_SST_ALPHA_BETA]),
        curtail=int(stats[_SST_CURTAIL]),
    )
    return (
        timing,
        int(stats[_SST_OMEGA]),
        bool(stats[_SST_ALL_COMPLETED]),
        totals,
    )
