"""On-demand compilation of the native search kernel (``kernel.c``).

The ``native`` engine ships as C *source*, not a binary wheel: the
kernel is compiled at first use with whatever C compiler the host
already has, cached on disk, and loaded through ``ctypes`` — no new
Python dependency, no build step at install time, and a clean fallback
to the ``fast`` engine when no compiler exists (see
``repro.sched.core.resolve_engine``).

Compiler discovery
------------------
``REPRO_CC`` (a path or command name) wins when set; otherwise the
``CC`` environment variable; otherwise the first of ``cc``/``gcc``/
``clang`` found on ``PATH``.  Discovery failure is not an error — it is
the signal :func:`native_available` turns into the one-line fallback.

Build cache layout
------------------
Compiled objects live under the user cache dir (``REPRO_NATIVE_CACHE``
overrides; else ``$XDG_CACHE_HOME/repro-native``; else
``~/.cache/repro-native``)::

    <cache root>/
      kernel-<abi>-<sha256[:16]>.so      # the compiled kernel
      kernel-<abi>-<sha256[:16]>.json    # compiler + flags provenance

The digest covers everything the binary depends on: the exact
``kernel.c`` bytes, the resolved compiler path and its ``--version``
banner, the flag list and the ABI version — touching any of them keys a
fresh compile instead of serving a stale object.  Installs are atomic
(temp file + ``os.replace`` in the cache dir, the ``repro.ioutil``
pattern), so concurrent first-use races collapse to one winner and a
reader never observes a torn shared object.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional, Tuple

__all__ = [
    "NativeBuildError",
    "find_compiler",
    "compiler_info",
    "build_kernel",
    "cache_root",
    "kernel_source_path",
]

#: Must match NATIVE_ABI_VERSION in kernel.c; the loader verifies the
#: compiled object reports the same number through ``repro_abi()``.
ABI_VERSION = 1

#: Compilation flags (order matters: they are part of the cache key).
CFLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-shared", "-std=c99", "-DNDEBUG")

_CANDIDATES = ("cc", "gcc", "clang")


class NativeBuildError(RuntimeError):
    """The native kernel could not be compiled or loaded.

    Carries a human-readable reason; callers turn it into the one-line
    ``native`` -> ``fast`` fallback notice rather than propagating.
    """


def kernel_source_path() -> str:
    """Absolute path of the adjacent ``kernel.c`` source."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernel.c")


def find_compiler() -> Optional[str]:
    """Resolve the C compiler to use, or ``None`` when there is none.

    ``REPRO_CC`` > ``CC`` > first of ``cc``/``gcc``/``clang`` on PATH.
    An explicitly configured compiler that does not resolve yields
    ``None`` (treated as "no compiler", never a crash).
    """
    for env in ("REPRO_CC", "CC"):
        configured = os.environ.get(env)
        if configured:
            return shutil.which(configured)
    for name in _CANDIDATES:
        found = shutil.which(name)
        if found:
            return found
    return None


def _compiler_version(cc: str) -> str:
    """First line of ``cc --version`` (empty string when unqueryable)."""
    try:
        out = subprocess.run(
            [cc, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.splitlines()[0].strip() if out else ""


def compiler_info() -> Optional[dict]:
    """``{"path", "version"}`` of the discovered compiler, or ``None``.

    Recorded in ``BENCH_search.json``'s ``config.env`` so a benchmark
    payload documents the toolchain its ``native`` numbers came from.
    """
    cc = find_compiler()
    if cc is None:
        return None
    return {"path": cc, "version": _compiler_version(cc)}


def cache_root() -> str:
    """Directory the compiled kernels are cached in (not yet created)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-native")


def _cache_key(source: bytes, cc: str, version: str) -> str:
    h = hashlib.sha256()
    for part in (
        source,
        cc.encode(),
        version.encode(),
        " ".join(CFLAGS).encode(),
        str(ABI_VERSION).encode(),
    ):
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()[:16]


def build_kernel(force: bool = False) -> str:
    """Return the path of a compiled, up-to-date kernel shared object.

    Serves the cached object when its digest matches; compiles (and
    atomically installs) otherwise.  ``force=True`` recompiles even on a
    cache hit — the corruption-recovery path in ``bindings.load_kernel``
    uses it when a cached object exists but fails to load.

    Raises :class:`NativeBuildError` when no compiler is available or
    the compile fails.
    """
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError("no C compiler found (cc/gcc/clang)")
    src = kernel_source_path()
    try:
        with open(src, "rb") as fh:
            source = fh.read()
    except OSError as exc:
        raise NativeBuildError(f"kernel source unreadable: {exc}") from exc
    version = _compiler_version(cc)
    key = _cache_key(source, cc, version)
    root = cache_root()
    lib_path = os.path.join(root, f"kernel-{ABI_VERSION}-{key}.so")
    if not force and os.path.exists(lib_path):
        return lib_path

    os.makedirs(root, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=root, prefix=f"kernel-{ABI_VERSION}-{key}.", suffix=".tmp"
    )
    os.close(fd)
    try:
        cmd: List[str] = [cc, *CFLAGS, "-o", tmp, src]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=300, check=False
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise NativeBuildError(
                f"C compile failed ({cc}): {detail.splitlines()[0] if detail else 'no output'}"
            )
        # Atomic install: the rename either publishes a complete object
        # or loses the race to an identical one — never a torn file.
        os.replace(tmp, lib_path)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"C compile failed ({cc}): {exc}") from exc
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
    from ..ioutil import atomic_write_json

    atomic_write_json(
        os.path.join(root, f"kernel-{ABI_VERSION}-{key}.json"),
        {
            "abi": ABI_VERSION,
            "compiler": cc,
            "compiler_version": version,
            "cflags": list(CFLAGS),
            "source_sha256": hashlib.sha256(source).hexdigest(),
        },
    )
    return lib_path
