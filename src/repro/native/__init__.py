"""``engine="native"``: the branch-and-bound hot core, compiled to C.

This package holds the fourth search engine of the repository's engine
lattice (``fast`` / ``vector`` / ``reference`` / ``native``): a
self-contained C99 port of the flattened DFS and windowed splitter in
:mod:`repro.sched.core`, compiled at first use from the adjacent
``kernel.c`` with the system C compiler and bound through ``ctypes`` —
no new Python dependency.

* :mod:`repro.native.build` — compiler discovery, the sha256-keyed
  on-disk build cache, atomic installs.
* :mod:`repro.native.bindings` — flat ``int64``/CSR marshalling of the
  ``_Flat`` tables, library loading with corruption recovery, and the
  ``native_dfs``/``native_split`` entry points the scheduler dispatch
  calls.

Results are bit-for-bit identical to every other engine (everything
except wall time); without a C compiler the engine degrades to ``fast``
with a one-line stderr notice, exactly like ``vector`` without NumPy.
"""

from .bindings import (
    load_kernel,
    native_available,
    native_dfs,
    native_split,
    unavailable_reason,
)
from .build import NativeBuildError, build_kernel, compiler_info

__all__ = [
    "NativeBuildError",
    "build_kernel",
    "compiler_info",
    "load_kernel",
    "native_available",
    "native_dfs",
    "native_split",
    "unavailable_reason",
]
