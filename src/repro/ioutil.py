"""Durable file writes shared by every artifact emitter.

Population runs can take hours; a crash (or Ctrl-C) while ``--stats-json``,
``BENCH_search.json``, a CSV, or a discrepancy report is being written must
never leave a half-serialized file that a later tool chokes on.  Every JSON
artifact in the repository therefore goes through :func:`atomic_write_text`:
the payload is written to a temporary file *in the same directory* (so the
rename cannot cross filesystems), fsync'd, and then moved over the target
with :func:`os.replace` — readers observe either the old complete file or
the new complete file, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def fsync_file(fh) -> None:
    """Flush ``fh`` and force its bytes to stable storage.

    Filesystems without fsync support (some tmpfs/overlay setups) degrade
    to a plain flush rather than failing the write.
    """
    fh.flush()
    try:
        os.fsync(fh.fileno())
    except OSError:  # pragma: no cover - fsync-less filesystem
        pass


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fsync_file(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str, payload: Any, indent: Optional[int] = 2, sort_keys: bool = False
) -> None:
    """Serialize ``payload`` and write it atomically with a trailing newline."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )
