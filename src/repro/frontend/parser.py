"""Recursive-descent parser for the front-end source language.

Grammar (standard precedence, left-associative)::

    program    := "{" statement* "}" | statement*
    statement  := assignment | "barrier" ";" | loop
    assignment := IDENT "=" expression ";"
    loop       := "for" IDENT "in" bound ".." bound "{" assignment+ "}"
    bound      := NUMBER | IDENT
    expression := term (("+" | "-") term)*
    term       := factor (("*" | "/") factor)*
    factor     := "-" factor | "(" expression ")" | NUMBER | IDENT

Loops do not nest, never contain barriers, and never assign their loop
variable — each restriction is a :class:`ParseError`.
"""

from __future__ import annotations

from typing import List, Union

from .ast import (
    Assignment,
    Barrier,
    Binary,
    Constant,
    Expr,
    ForLoop,
    Program,
    Unary,
    VarRead,
)
from .lexer import Token, TokenKind, tokenize

#: Reserved words — not usable as variable names.
KEYWORDS = frozenset({"barrier", "for", "in"})


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(
            f"line {token.line}, column {token.column}: {message} "
            f"(found {token.kind.value}{' ' + repr(token.text) if token.text else ''})"
        )
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        if self._current.kind is not kind:
            raise ParseError(f"expected {kind.value!r}", self._current)
        return self._advance()

    def _accept(self, kind: TokenKind) -> bool:
        if self._current.kind is kind:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        braced = self._accept(TokenKind.LBRACE)
        statements = []
        closer = TokenKind.RBRACE if braced else TokenKind.EOF
        while self._current.kind is not closer:
            if self._current.kind is TokenKind.EOF:
                raise ParseError("unexpected end of input", self._current)
            statements.append(self.parse_statement())
        if braced:
            self._expect(TokenKind.RBRACE)
        self._expect(TokenKind.EOF)
        return Program(statements)

    def parse_statement(self):
        token = self._expect(TokenKind.IDENT)
        if token.text == "barrier":
            self._expect(TokenKind.SEMI)
            return Barrier()
        if token.text == "for":
            return self.parse_loop(token)
        if token.text in KEYWORDS:
            raise ParseError(f"{token.text!r} is a reserved word", token)
        target = token.text
        self._expect(TokenKind.ASSIGN)
        value = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return Assignment(target, value)

    def parse_loop(self, for_token: Token) -> ForLoop:
        var_token = self._expect(TokenKind.IDENT)
        if var_token.text in KEYWORDS:
            raise ParseError(
                f"{var_token.text!r} is a reserved word", var_token
            )
        in_token = self._expect(TokenKind.IDENT)
        if in_token.text != "in":
            raise ParseError("expected 'in'", in_token)
        start = self.parse_bound()
        self._expect(TokenKind.DOTDOT)
        stop = self.parse_bound()
        self._expect(TokenKind.LBRACE)
        body: List[Assignment] = []
        while self._current.kind is not TokenKind.RBRACE:
            if self._current.kind is TokenKind.EOF:
                raise ParseError("unterminated loop body", self._current)
            token = self._expect(TokenKind.IDENT)
            if token.text == "for":
                raise ParseError("loops cannot be nested", token)
            if token.text == "barrier":
                raise ParseError(
                    "'barrier' is not allowed inside a loop", token
                )
            if token.text in KEYWORDS:
                raise ParseError(f"{token.text!r} is a reserved word", token)
            if token.text == var_token.text:
                raise ParseError(
                    f"cannot assign to the loop variable {token.text!r}",
                    token,
                )
            self._expect(TokenKind.ASSIGN)
            value = self.parse_expression()
            self._expect(TokenKind.SEMI)
            body.append(Assignment(token.text, value))
        self._expect(TokenKind.RBRACE)
        if not body:
            raise ParseError("loop body must not be empty", for_token)
        return ForLoop(var_token.text, start, stop, body)

    def parse_bound(self) -> Union[int, str]:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return int(token.text)
        if token.kind is TokenKind.IDENT:
            if token.text in KEYWORDS:
                raise ParseError(f"{token.text!r} is a reserved word", token)
            self._advance()
            return token.text
        raise ParseError("expected a loop bound (number or variable)", token)

    def parse_expression(self) -> Expr:
        node = self.parse_term()
        while self._current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().text
            node = Binary(op, node, self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_factor()
        while self._current.kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance().text
            node = Binary(op, node, self.parse_factor())
        return node

    def parse_factor(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.MINUS:
            self._advance()
            return Unary("-", self.parse_factor())
        if token.kind is TokenKind.LPAREN:
            self._advance()
            node = self.parse_expression()
            self._expect(TokenKind.RPAREN)
            return node
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Constant(int(token.text))
        if token.kind is TokenKind.IDENT:
            if token.text in KEYWORDS:
                raise ParseError(f"{token.text!r} is a reserved word", token)
            self._advance()
            return VarRead(token.text)
        raise ParseError("expected an expression", token)


def parse_program(source: str) -> Program:
    """Parse source text into a :class:`~repro.frontend.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression (test/REPL convenience)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    parser._expect(TokenKind.EOF)
    return expr
