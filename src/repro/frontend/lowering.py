"""Lowering: AST to tuple code.

Follows the code-generation conventions the paper states in section 5.2:
*"the first reference to a variable causes a load for that variable to be
generated, and a store is generated when a variable is assigned a
value."*

Figure 3 additionally shows that the generated code is the DAG-embedded
form: after ``b = 15``, the use of ``b`` in ``a = b * a`` references the
``Const 15`` tuple directly rather than re-loading ``b``.  Lowering
therefore tracks the tuple currently holding each variable's value:

* a read of a variable with no known value emits ``Load`` and records it;
* an assignment emits ``Store`` and records the stored tuple as the
  variable's current value.

Pass ``reuse_values=False`` for the naive load-on-every-demand lowering
("traditional compiler code generation techniques tend to load values on
demand", section 2.1) — used by tests and ablations to produce
dependence-heavy code.
"""

from __future__ import annotations

from typing import Dict

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.loop import LoopBlock, derive_carried_dependences
from ..ir.ops import Opcode
from .ast import (
    Binary,
    Constant,
    Expr,
    ForLoop,
    Program,
    Unary,
    VarRead,
)


def lower_program(
    program: Program,
    name: str = "block",
    reuse_values: bool = True,
) -> BasicBlock:
    """Lower a straight-line program to a tuple basic block.

    The program must be barrier-free (one basic block); split multi-block
    programs with :meth:`Program.split_blocks` and lower each piece (the
    driver's ``compile_program`` does this).  Loops have their own
    lowering (:func:`lower_loop` / ``repro.driver.compile_loop``).
    """
    if program.has_barriers:
        raise ValueError(
            "program contains barriers; split_blocks() first "
            "(or use repro.driver.compile_program)"
        )
    if program.has_loops:
        raise ValueError(
            "program contains loops; use lower_loop "
            "(or repro.driver.compile_loop)"
        )
    builder = BlockBuilder(name)
    current: Dict[str, int] = {}  # variable -> tuple holding its value

    def lower_expr(expr: Expr) -> int:
        if isinstance(expr, Constant):
            return builder.emit_const(expr.value)
        if isinstance(expr, VarRead):
            if reuse_values and expr.name in current:
                return current[expr.name]
            ref = builder.emit_load(expr.name)
            if reuse_values:
                current[expr.name] = ref
            return ref
        if isinstance(expr, Unary):
            operand = lower_expr(expr.operand)
            return builder.emit_unary(Opcode.NEG, operand)
        if isinstance(expr, Binary):
            left = lower_expr(expr.left)
            right = lower_expr(expr.right)
            return builder.emit_binary(expr.opcode, left, right)
        raise TypeError(f"not an expression: {expr!r}")

    for stmt in program:
        value = lower_expr(stmt.value)
        builder.emit_store(stmt.target, value)
        if reuse_values:
            current[stmt.target] = value

    return builder.build()


def lower_loop(
    loop: ForLoop,
    name: str = "loop",
    reuse_values: bool = True,
) -> LoopBlock:
    """Lower one bounded loop to a :class:`~repro.ir.loop.LoopBlock`.

    The body is lowered exactly like a straight-line block (value reuse
    within the iteration; nothing is reused *across* iterations — every
    cross-iteration value flows through memory, which is what makes the
    carried dependences derivable from the tuples alone).  When the body
    reads the loop counter, the lowered body ends with the induction
    update ``var = var + 1`` and executing the loop requires seeding
    ``var`` with ``start``; otherwise the counter is dead and omitted.
    """
    statements = list(loop.body)
    loop_var = None
    if loop.reads_var:
        loop_var = loop.var
        from .ast import Assignment

        statements.append(
            Assignment(
                loop.var, Binary("+", VarRead(loop.var), Constant(1))
            )
        )
    body = lower_program(Program(statements), name, reuse_values)
    return LoopBlock(
        body=body,
        carried=derive_carried_dependences(body),
        loop_var=loop_var,
        start=loop.start,
        stop=loop.stop,
    )


def lower_source(source: str, name: str = "block", reuse_values: bool = True) -> BasicBlock:
    """Parse and lower in one step."""
    from .parser import parse_program

    return lower_program(parse_program(source), name, reuse_values)
