"""Mini front end: the paper's example source language (Figure 3),
lexed, parsed, and lowered to tuple code."""

from .lexer import LexError, Token, TokenKind, tokenize
from .ast import (
    Assignment,
    Binary,
    Constant,
    Expr,
    Program,
    Unary,
    VarRead,
    evaluate_expr,
    run_program,
)
from .parser import ParseError, parse_expression, parse_program
from .lowering import lower_program, lower_source

__all__ = [
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "Assignment",
    "Binary",
    "Constant",
    "Expr",
    "Program",
    "Unary",
    "VarRead",
    "evaluate_expr",
    "run_program",
    "ParseError",
    "parse_expression",
    "parse_program",
    "lower_program",
    "lower_source",
]
