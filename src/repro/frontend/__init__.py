"""Mini front end: the paper's example source language (Figure 3),
lexed, parsed, and lowered to tuple code."""

from .ast import (
    Assignment,
    Binary,
    Constant,
    Expr,
    Program,
    Unary,
    VarRead,
    evaluate_expr,
    run_program,
)
from .lexer import LexError, Token, TokenKind, tokenize
from .lowering import lower_program, lower_source
from .parser import ParseError, parse_expression, parse_program

__all__ = [
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "Assignment",
    "Binary",
    "Constant",
    "Expr",
    "Program",
    "Unary",
    "VarRead",
    "evaluate_expr",
    "run_program",
    "ParseError",
    "parse_expression",
    "parse_program",
    "lower_program",
    "lower_source",
]
