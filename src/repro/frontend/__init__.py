"""Mini front end: the paper's example source language (Figure 3),
lexed, parsed, and lowered to tuple code — plus the bounded counting
loop ``for i in 0..N { ... }``, lowered to a loop body block with
derived cross-iteration dependences."""

from .ast import (
    Assignment,
    Binary,
    Constant,
    Expr,
    ForLoop,
    Program,
    Unary,
    VarRead,
    evaluate_expr,
    run_program,
)
from .lexer import LexError, Token, TokenKind, tokenize
from .lowering import lower_loop, lower_program, lower_source
from .parser import ParseError, parse_expression, parse_program

__all__ = [
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "Assignment",
    "Binary",
    "Constant",
    "Expr",
    "ForLoop",
    "Program",
    "Unary",
    "VarRead",
    "evaluate_expr",
    "run_program",
    "ParseError",
    "parse_expression",
    "parse_program",
    "lower_loop",
    "lower_program",
    "lower_source",
]
