"""Abstract syntax for the front-end source language.

A program is a sequence of assignment statements — optionally including
bounded counting loops (:class:`ForLoop`) — and expressions are
constants, variable reads, unary minus, and the four binary operators.
The AST carries its own exact-arithmetic evaluator, which defines source
semantics independently of the tuple IR — end-to-end tests compare the
two.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Tuple, Union

from ..ir.ops import Opcode

Value = Union[int, Fraction]


@dataclass(frozen=True, slots=True)
class Constant:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VarRead:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # "-"
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True, slots=True)
class Binary:
    op: str  # one of + - * /
    left: "Expr"
    right: "Expr"

    _OPCODES = {
        "+": Opcode.ADD,
        "-": Opcode.SUB,
        "*": Opcode.MUL,
        "/": Opcode.DIV,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPCODES:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    @property
    def opcode(self) -> Opcode:
        return self._OPCODES[self.op]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[Constant, VarRead, Unary, Binary]


@dataclass(frozen=True, slots=True)
class Assignment:
    target: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


#: A loop bound: a non-negative integer literal or the name of a memory
#: variable holding one (resolved at execution time).
Bound = Union[int, str]


def _walk_reads(expr: Expr, visit) -> None:
    if isinstance(expr, VarRead):
        visit(expr.name)
    elif isinstance(expr, Unary):
        _walk_reads(expr.operand, visit)
    elif isinstance(expr, Binary):
        _walk_reads(expr.left, visit)
        _walk_reads(expr.right, visit)


@dataclass(frozen=True, slots=True)
class ForLoop:
    """A bounded counting loop: ``for var in start..stop { body }``.

    Semantics: the loop variable is a *scoped binding* — it counts
    ``start, start+1, ..., stop-1`` (``max(0, stop-start)`` iterations)
    and is not observable after the loop (any outer variable of the same
    name is shadowed during the loop and restored afterwards).  The body
    is a straight-line sequence of assignments; it may read the loop
    variable but never assign it, and loops do not nest.
    """

    var: str
    start: Bound
    stop: Bound
    body: Tuple[Assignment, ...]

    def __init__(self, var: str, start: Bound, stop: Bound, body):
        body = tuple(body)
        if not body:
            raise ValueError("loop body must contain at least one assignment")
        for stmt in body:
            if not isinstance(stmt, Assignment):
                raise ValueError(
                    f"loop bodies contain assignments only, not {stmt!r}"
                )
            if stmt.target == var:
                raise ValueError(
                    f"loop body assigns the loop variable {var!r}"
                )
        for bound in (start, stop):
            if isinstance(bound, int) and bound < 0:
                raise ValueError("loop bounds must be non-negative")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "stop", stop)
        object.__setattr__(self, "body", body)

    @property
    def reads_var(self) -> bool:
        """Does any body expression read the loop variable?"""
        found = [False]

        def visit(name: str) -> None:
            if name == self.var:
                found[0] = True

        for stmt in self.body:
            _walk_reads(stmt.value, visit)
        return found[0]

    def __str__(self) -> str:
        inner = " ".join(str(s) for s in self.body)
        return f"for {self.var} in {self.start}..{self.stop} {{ {inner} }}"


def resolve_bound(bound: Bound, env: Mapping[str, Value]) -> int:
    """Resolve a loop bound to a concrete non-negative trip-count limit."""
    if isinstance(bound, str):
        if bound not in env:
            raise KeyError(f"loop bound variable {bound!r} is undefined")
        bound = env[bound]
    value = int(bound)
    if value != bound:
        raise ValueError(f"loop bound {bound!r} is not an integer")
    if value < 0:
        raise ValueError(f"loop bound {value} is negative")
    return value


@dataclass(frozen=True, slots=True)
class Barrier:
    """A basic-block boundary (``barrier;``).

    Instructions never move across a barrier; the scheduler handles the
    pieces as adjacent blocks whose pipeline state threads through the
    boundary (footnote 1, ``repro.sched.interblock``).  Semantically a
    no-op: all values flow between blocks through memory.
    """

    def __str__(self) -> str:
        return "barrier;"


Statement = Union[Assignment, Barrier, ForLoop]


@dataclass(frozen=True)
class Program:
    """A straight-line program: assignments, optionally partitioned
    into basic blocks by :class:`Barrier` statements."""

    statements: Tuple["Statement", ...]

    def __init__(self, statements):
        object.__setattr__(self, "statements", tuple(statements))

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __str__(self) -> str:
        body = "\n".join(f"    {s}" for s in self.statements)
        return "{\n" + body + "\n}"

    # ------------------------------------------------------------------
    def variables_read(self) -> Tuple[str, ...]:
        """Variables whose incoming value is observable (read before any
        assignment to them), in first-read order."""
        assigned: set[str] = set()
        out: Dict[str, None] = {}

        def walk(e: Expr) -> None:
            if isinstance(e, VarRead):
                if e.name not in assigned:
                    out.setdefault(e.name, None)
            elif isinstance(e, Unary):
                walk(e.operand)
            elif isinstance(e, Binary):
                walk(e.left)
                walk(e.right)

        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                continue
            if isinstance(stmt, ForLoop):
                # Symbolic bounds are reads; the loop variable is scoped.
                for bound in (stmt.start, stmt.stop):
                    if isinstance(bound, str) and bound not in assigned:
                        out.setdefault(bound, None)
                assigned.add(stmt.var)
                # The body's first iteration observes outer memory; walk
                # it like straight-line code, then commit its targets.
                for inner in stmt.body:
                    walk(inner.value)
                    assigned.add(inner.target)
                assigned.discard(stmt.var)
                continue
            walk(stmt.value)
            assigned.add(stmt.target)
        return tuple(out)

    def variables_written(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                continue
            if isinstance(stmt, ForLoop):
                for inner in stmt.body:
                    seen.setdefault(inner.target, None)
                continue
            seen.setdefault(stmt.target, None)
        return tuple(seen)

    @property
    def has_barriers(self) -> bool:
        return any(isinstance(s, Barrier) for s in self.statements)

    @property
    def has_loops(self) -> bool:
        return any(isinstance(s, ForLoop) for s in self.statements)

    def split_blocks(self) -> Tuple["Program", ...]:
        """Split at barriers into barrier-free sub-programs (empty
        segments — leading, trailing, or doubled barriers — are dropped)."""
        segments: list[list] = [[]]
        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                segments.append([])
            else:
                segments[-1].append(stmt)
        return tuple(Program(seg) for seg in segments if seg)


def evaluate_expr(expr: Expr, env: Mapping[str, Value]) -> Value:
    """Exact evaluation of an expression in ``env``."""
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, VarRead):
        return env[expr.name]
    if isinstance(expr, Unary):
        return -evaluate_expr(expr.operand, env)
    if isinstance(expr, Binary):
        left = evaluate_expr(expr.left, env)
        right = evaluate_expr(expr.right, env)
        return expr.opcode.evaluate(left, right)
    raise TypeError(f"not an expression: {expr!r}")


def run_program(program: Program, memory: Mapping[str, Value]) -> Dict[str, Value]:
    """Execute the program; returns the final memory.

    This is the *source-level* semantics every compilation stage must
    preserve.  Barriers are semantic no-ops.
    """
    env: Dict[str, Value] = dict(memory)
    for stmt in program:
        if isinstance(stmt, Barrier):
            continue
        if isinstance(stmt, ForLoop):
            run_loop_statement(stmt, env)
            continue
        env[stmt.target] = evaluate_expr(stmt.value, env)
    return env


def run_loop_statement(loop: ForLoop, env: Dict[str, Value]) -> None:
    """Execute one :class:`ForLoop` in place (source-level semantics).

    The loop variable shadows any outer variable of the same name for the
    duration of the loop and is restored (or removed) afterwards.
    """
    start = resolve_bound(loop.start, env)
    stop = resolve_bound(loop.stop, env)
    shadowed = loop.var in env
    saved = env.get(loop.var)
    for k in range(start, stop):
        env[loop.var] = k
        for stmt in loop.body:
            env[stmt.target] = evaluate_expr(stmt.value, env)
    if shadowed:
        env[loop.var] = saved
    else:
        env.pop(loop.var, None)
