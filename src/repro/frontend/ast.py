"""Abstract syntax for the front-end source language.

A program is a sequence of assignment statements; expressions are
constants, variable reads, unary minus, and the four binary operators.
The AST carries its own exact-arithmetic evaluator, which defines source
semantics independently of the tuple IR — end-to-end tests compare the
two.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Tuple, Union

from ..ir.ops import Opcode

Value = Union[int, Fraction]


@dataclass(frozen=True, slots=True)
class Constant:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VarRead:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # "-"
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True, slots=True)
class Binary:
    op: str  # one of + - * /
    left: "Expr"
    right: "Expr"

    _OPCODES = {
        "+": Opcode.ADD,
        "-": Opcode.SUB,
        "*": Opcode.MUL,
        "/": Opcode.DIV,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPCODES:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    @property
    def opcode(self) -> Opcode:
        return self._OPCODES[self.op]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[Constant, VarRead, Unary, Binary]


@dataclass(frozen=True, slots=True)
class Assignment:
    target: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass(frozen=True, slots=True)
class Barrier:
    """A basic-block boundary (``barrier;``).

    Instructions never move across a barrier; the scheduler handles the
    pieces as adjacent blocks whose pipeline state threads through the
    boundary (footnote 1, ``repro.sched.interblock``).  Semantically a
    no-op: all values flow between blocks through memory.
    """

    def __str__(self) -> str:
        return "barrier;"


Statement = Union[Assignment, Barrier]


@dataclass(frozen=True)
class Program:
    """A straight-line program: assignments, optionally partitioned
    into basic blocks by :class:`Barrier` statements."""

    statements: Tuple["Statement", ...]

    def __init__(self, statements):
        object.__setattr__(self, "statements", tuple(statements))

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __str__(self) -> str:
        body = "\n".join(f"    {s}" for s in self.statements)
        return "{\n" + body + "\n}"

    # ------------------------------------------------------------------
    def variables_read(self) -> Tuple[str, ...]:
        """Variables whose incoming value is observable (read before any
        assignment to them), in first-read order."""
        assigned: set[str] = set()
        out: Dict[str, None] = {}

        def walk(e: Expr) -> None:
            if isinstance(e, VarRead):
                if e.name not in assigned:
                    out.setdefault(e.name, None)
            elif isinstance(e, Unary):
                walk(e.operand)
            elif isinstance(e, Binary):
                walk(e.left)
                walk(e.right)

        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                continue
            walk(stmt.value)
            assigned.add(stmt.target)
        return tuple(out)

    def variables_written(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                continue
            seen.setdefault(stmt.target, None)
        return tuple(seen)

    @property
    def has_barriers(self) -> bool:
        return any(isinstance(s, Barrier) for s in self.statements)

    def split_blocks(self) -> Tuple["Program", ...]:
        """Split at barriers into barrier-free sub-programs (empty
        segments — leading, trailing, or doubled barriers — are dropped)."""
        segments: list[list] = [[]]
        for stmt in self.statements:
            if isinstance(stmt, Barrier):
                segments.append([])
            else:
                segments[-1].append(stmt)
        return tuple(Program(seg) for seg in segments if seg)


def evaluate_expr(expr: Expr, env: Mapping[str, Value]) -> Value:
    """Exact evaluation of an expression in ``env``."""
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, VarRead):
        return env[expr.name]
    if isinstance(expr, Unary):
        return -evaluate_expr(expr.operand, env)
    if isinstance(expr, Binary):
        left = evaluate_expr(expr.left, env)
        right = evaluate_expr(expr.right, env)
        return expr.opcode.evaluate(left, right)
    raise TypeError(f"not an expression: {expr!r}")


def run_program(program: Program, memory: Mapping[str, Value]) -> Dict[str, Value]:
    """Execute the program; returns the final memory.

    This is the *source-level* semantics every compilation stage must
    preserve.  Barriers are semantic no-ops.
    """
    env: Dict[str, Value] = dict(memory)
    for stmt in program:
        if isinstance(stmt, Barrier):
            continue
        env[stmt.target] = evaluate_expr(stmt.value, env)
    return env
