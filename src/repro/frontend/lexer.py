"""Lexer for the front-end source language.

The language is the one the paper's examples are written in (Figure 3)::

    {
        b = 15;
        a = b * a;
    }

Assignment statements over integer constants, scalar variables, the four
binary arithmetic operators, unary minus, and parentheses.  Braces around
the block are optional; ``//`` and ``/* ... */`` comments are accepted.
The bounded counting loop ``for i in 0..N { ... }`` adds the ``..`` range
token (``DOTDOT``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List


class TokenKind(enum.Enum):
    IDENT = "identifier"
    NUMBER = "number"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    DOTDOT = ".."
    EOF = "end of input"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"


class LexError(ValueError):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


_SINGLE = {
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_NUMBER_RE = re.compile(r"\d+")


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; the result always ends with an EOF token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if source.startswith("..", i):
            tokens.append(Token(TokenKind.DOTDOT, "..", line, col))
            i += 2
            col += 2
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            i += 1
            col += 1
            continue
        m = _NUMBER_RE.match(source, i)
        if m:
            tokens.append(Token(TokenKind.NUMBER, m.group(), line, col))
            col += len(m.group())
            i = m.end()
            continue
        m = _IDENT_RE.match(source, i)
        if m:
            tokens.append(Token(TokenKind.IDENT, m.group(), line, col))
            col += len(m.group())
            i = m.end()
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
