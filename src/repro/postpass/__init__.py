"""Postpass (after-allocation) scheduling — the prior art of sections 1
and 3.4, mechanized for comparison against the paper's prepass design."""

from .registers import (
    PrepassPostpassComparison,
    compare_prepass_postpass,
    postpass_dag,
    register_reuse_edges,
)

__all__ = [
    "PrepassPostpassComparison",
    "compare_prepass_postpass",
    "postpass_dag",
    "register_reuse_edges",
]
