"""Postpass scheduling — the prior art the paper argues against.

Sections 1 and 3.4: Gross-style schedulers are "postpass reorganizers"
working on register-allocated assembly, where "the register assignment
can impose unnecessary restrictions on the schedule, resulting in
unnecessary execution delays" — two independent computations become
serialized merely because the allocator happened to reuse a register
between them.  The paper's approach schedules the register-free tuple
form instead and allocates afterwards.

This module mechanizes the comparison:

* :func:`register_reuse_edges` — the artificial anti/output dependences
  a given register assignment adds to a block's true dependence DAG;
* :func:`postpass_dag` — the constrained DAG a postpass scheduler must
  respect (true dependences + reuse edges), given an allocation of the
  block's *program order* (what a pre-scheduling allocator produces);
* :func:`compare_prepass_postpass` — optimal NOPs of the paper's
  prepass pipeline vs an *equally optimal* search over the postpass DAG,
  for a register-file size K.  Any gap is purely the cost of scheduling
  after allocation — the paper's motivating delta, isolated from
  heuristic noise because both sides use the same optimal search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.dag import DependenceDAG, DependenceEdge
from ..machine.machine import MachineDescription
from ..regalloc.allocator import RegisterAllocation, allocate_registers
from ..sched.search import SearchOptions, SearchResult, schedule_block


def register_reuse_edges(
    block: BasicBlock,
    allocation: RegisterAllocation,
) -> List[DependenceEdge]:
    """The artificial dependences register reuse induces.

    For consecutive values ``v1`` then ``v2`` assigned to the same
    register (in the allocation's order):

    * **output**: ``v2`` must be defined after ``v1`` (same destination);
    * **anti**: every consumer of ``v1`` must issue before ``v2``
      overwrites the register it reads.

    Edges that parallel true dependences are deduplicated by the DAG.
    """
    consumers: Dict[int, List[int]] = {}
    for t in block:
        for ref in t.value_refs:
            consumers.setdefault(ref, []).append(t.ident)

    # Values per register, in definition (allocation order) sequence.
    per_register: Dict[int, List[int]] = {}
    for ident in allocation.order:
        if ident in allocation.registers:
            per_register.setdefault(
                allocation.registers[ident], []
            ).append(ident)

    position = block.position_of
    edges: List[DependenceEdge] = []
    for values in per_register.values():
        for v1, v2 in zip(values, values[1:]):
            if position(v1) < position(v2):
                edges.append(DependenceEdge(v1, v2, "output"))
            for user in consumers.get(v1, ()):
                if position(user) < position(v2):
                    edges.append(DependenceEdge(user, v2, "anti"))
    return edges


def postpass_dag(
    block: BasicBlock, num_registers: Optional[int] = None
) -> Tuple[DependenceDAG, RegisterAllocation]:
    """The DAG a postpass scheduler sees.

    Registers are assigned over the block's program order (the code a
    traditional compiler hands its postpass reorganizer), inducing reuse
    edges on top of the true dependences.
    """
    allocation = allocate_registers(block, None, num_registers)
    edges = register_reuse_edges(block, allocation)
    return DependenceDAG(block, extra_edges=edges), allocation


@dataclass(frozen=True)
class PrepassPostpassComparison:
    """Optimal prepass vs optimal postpass for one block."""

    prepass: SearchResult
    postpass: SearchResult
    num_registers: int
    reuse_edges: int  # artificial edges the allocation added

    @property
    def delay_penalty(self) -> int:
        """NOPs lost purely to scheduling after register allocation."""
        return self.postpass.final_nops - self.prepass.final_nops


def compare_prepass_postpass(
    block: BasicBlock,
    machine: MachineDescription,
    num_registers: Optional[int] = None,
    options: SearchOptions = SearchOptions(),
) -> PrepassPostpassComparison:
    """Schedule ``block`` both ways with the same optimal search.

    ``num_registers=None`` measures the tightest realistic allocation: a
    file of exactly ``max_live(program order)`` registers, i.e. the most
    reuse-happy allocator that still avoids spills.

    The prepass side uses the paper's structure: schedule the true DAG,
    constrained only by the same register budget (``max_live``) so the
    comparison is register-fair; allocation happens after.
    """
    true_dag = DependenceDAG(block)
    constrained_dag, allocation = postpass_dag(block, num_registers)
    budget = allocation.num_registers_used
    import dataclasses

    fair = (
        dataclasses.replace(options, max_live=max(3, budget))
        if len(block) > 0
        else options
    )
    prepass = schedule_block(true_dag, machine, fair)
    postpass = schedule_block(constrained_dag, machine, options)
    extra = len(constrained_dag.edges) - len(true_dag.edges)
    return PrepassPostpassComparison(
        prepass=prepass,
        postpass=postpass,
        num_registers=budget,
        reuse_edges=extra,
    )
