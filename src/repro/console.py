"""The unified ``repro`` command — one entry point, five subcommands.

::

    repro compile -e "b = 15; a = b * a;"
    repro compile -e "for i in 0..8 { p = a * b; a = a + b; }" --show asm
    repro experiments table7 --blocks 200
    repro verify --kernels --machines all
    repro verify --loops --machines all
    repro bench --blocks 80
    repro serve --port 8123 --cache /var/cache/repro

Each subcommand delegates to the corresponding tool module
(``repro.cli``, ``repro.experiments.cli``, ``repro.verify.cli``,
``repro.bench.cli``, ``repro.service.cli``); the shared flags
(``--engine``, ``--seed``, ``--curtail``, ``--stats-json``, the budget
and timeout knobs) come from one registry in :mod:`repro.cliutil`, so
their names and defaults cannot drift between tools.

The historical per-tool console scripts (``repro-compile``,
``repro-experiments``, ``repro-verify``, ``repro-bench``) still work:
they are deprecation shims that print a one-line notice to stderr and
delegate here.  Subcommand modules are imported lazily so ``repro
compile`` does not pay for the experiment suite's imports.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional

PROG = "repro"

#: subcommand -> (module path, one-line description).  The module must
#: expose ``main(argv, prog=...) -> int``.
SUBCOMMANDS = {
    "compile": (
        "repro.cli",
        "compile source (or tuple notation) to assembly; bounded loops "
        "are modulo-scheduled into a software-pipelined kernel",
    ),
    "experiments": (
        "repro.experiments.cli",
        "regenerate the paper's tables and figures",
    ),
    "verify": (
        "repro.verify.cli",
        "differential oracle: certify every scheduler against the checker "
        "(--optimality adds the ILP witness, --loops the modulo tier)",
    ),
    "bench": (
        "repro.bench.cli",
        "benchmark the search engines vs the reference, or the serve "
        "daemon under load/chaos (--service)",
    ),
    "serve": (
        "repro.service.cli",
        "batch scheduling daemon: supervised worker pool, result cache, "
        "graceful drain",
    ),
}


def _usage(stream) -> None:
    print(f"usage: {PROG} <subcommand> [options]", file=stream)
    print("\nsubcommands:", file=stream)
    for name, (_, blurb) in SUBCOMMANDS.items():
        print(f"  {name:<12} {blurb}", file=stream)
    print(
        f"\nRun '{PROG} <subcommand> --help' for per-subcommand options.",
        file=stream,
    )


def _resolve(name: str) -> Callable[..., int]:
    import importlib

    module_path, _ = SUBCOMMANDS[name]
    return importlib.import_module(module_path).main


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        _usage(sys.stdout)
        return 0
    if argv[0] in ("-V", "--version"):
        from . import __version__

        print(f"{PROG} {__version__}")
        return 0
    name, rest = argv[0], argv[1:]
    if name not in SUBCOMMANDS:
        print(f"{PROG}: unknown subcommand {name!r}\n", file=sys.stderr)
        _usage(sys.stderr)
        return 2
    return _resolve(name)(rest, prog=f"{PROG} {name}")


# ----------------------------------------------------------------------
# Deprecation shims behind the legacy console scripts.
# ----------------------------------------------------------------------

def _shim(name: str, argv: Optional[List[str]]) -> int:
    print(
        f"repro-{name} is deprecated; use '{PROG} {name}' instead",
        file=sys.stderr,
    )
    argv = list(sys.argv[1:] if argv is None else argv)
    # Keep the legacy prog in errors/help so existing scripts' output
    # stays recognizable.
    return _resolve(name)(argv, prog=f"repro-{name}")


def compile_shim(argv: Optional[List[str]] = None) -> int:
    return _shim("compile", argv)


def experiments_shim(argv: Optional[List[str]] = None) -> int:
    return _shim("experiments", argv)


def verify_shim(argv: Optional[List[str]] = None) -> int:
    return _shim("verify", argv)


def bench_shim(argv: Optional[List[str]] = None) -> int:
    return _shim("bench", argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
