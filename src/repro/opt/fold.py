"""Constant folding with value propagation (section 3.1).

One forward walk over the block that simultaneously:

* folds arithmetic over known constants into ``Const`` tuples;
* propagates copies (``Copy`` tuples disappear; their uses point at the
  source);
* forwards stored values to later loads of the same variable
  (load-after-store forwarding), which is how the paper's Figure 3 code
  comes to reference the ``Const 15`` tuple for ``b`` instead of
  re-loading it;
* folds ``Neg`` of constants and double negation.

Division is folded only when the divisor is a non-zero constant, so a
potential arithmetic fault is never optimized away.

The pass returns a renumbered block; dead tuples it orphans (e.g. the
operands of a folded expression) are left for DCE.
"""

from __future__ import annotations

from typing import Dict

from ..ir.block import BasicBlock, BlockBuilder
from ..ir.ops import Opcode
from ..ir.tuples import ConstOperand, RefOperand, VarOperand


def fold_constants(block: BasicBlock) -> BasicBlock:
    """Apply constant folding + value propagation once."""
    builder = BlockBuilder(block.name)
    # Substitution from old reference numbers to new ones.
    sub: Dict[int, int] = {}
    # New refs known to be constants, and their values.
    const_value: Dict[int, int] = {}
    # Variable -> new ref currently holding its value (set by Store/Load).
    var_value: Dict[str, int] = {}

    def resolve(ref: int) -> int:
        return sub[ref]

    def emit_const(value: int) -> int:
        ref = builder.emit_const(value)
        const_value[ref] = value
        return ref

    for t in block:
        op = t.op
        if op is Opcode.CONST:
            assert isinstance(t.alpha, ConstOperand)
            sub[t.ident] = emit_const(t.alpha.value)
        elif op is Opcode.COPY:
            assert isinstance(t.alpha, RefOperand)
            sub[t.ident] = resolve(t.alpha.ref)
        elif op is Opcode.NEG:
            assert isinstance(t.alpha, RefOperand)
            source = resolve(t.alpha.ref)
            if source in const_value:
                sub[t.ident] = emit_const(-const_value[source])
            else:
                source_tuple = builder.tuple_at(source)
                if source_tuple.op is Opcode.NEG:
                    # Neg(Neg(x)) == x under exact arithmetic.
                    assert isinstance(source_tuple.alpha, RefOperand)
                    sub[t.ident] = source_tuple.alpha.ref
                else:
                    sub[t.ident] = builder.emit_unary(Opcode.NEG, source)
        elif op is Opcode.LOAD:
            assert isinstance(t.alpha, VarOperand)
            var = t.alpha.name
            if var in var_value:
                sub[t.ident] = var_value[var]
            else:
                ref = builder.emit_load(var)
                var_value[var] = ref
                sub[t.ident] = ref
        elif op is Opcode.STORE:
            assert isinstance(t.alpha, VarOperand) and isinstance(
                t.beta, RefOperand
            )
            value_ref = resolve(t.beta.ref)
            builder.emit_store(t.alpha.name, value_ref)
            var_value[t.alpha.name] = value_ref
        else:  # binary arithmetic
            assert isinstance(t.alpha, RefOperand) and isinstance(
                t.beta, RefOperand
            )
            a = resolve(t.alpha.ref)
            b = resolve(t.beta.ref)
            if a in const_value and b in const_value:
                if op is Opcode.DIV and const_value[b] == 0:
                    # Preserve the fault: emit the division unfolded.
                    sub[t.ident] = builder.emit_binary(op, a, b)
                else:
                    value = op.evaluate(const_value[a], const_value[b])
                    # Folding may produce a non-integer (exact division);
                    # only fold when it stays integral, as Const is integer.
                    if value == int(value):
                        sub[t.ident] = emit_const(int(value))
                    else:
                        sub[t.ident] = builder.emit_binary(op, a, b)
            else:
                sub[t.ident] = builder.emit_binary(op, a, b)

    return builder.build()
