"""Dead-code elimination (section 3.1).

Within one basic block the observable effects are the final values of
stored variables, so:

* a ``Store`` is dead when a later ``Store`` to the same variable
  overwrites it with no intervening ``Load`` of that variable
  (dead-store elimination, optional);
* a value-producing tuple is dead when nothing (transitively) reaching a
  live ``Store`` consumes its result — except ``Div``, which is kept even
  when unused because eliminating it could erase a division-by-zero
  fault (matching the interpreter's semantics).

Returns a renumbered block.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.block import BasicBlock
from ..ir.ops import Opcode


def eliminate_dead_code(
    block: BasicBlock, remove_dead_stores: bool = True
) -> BasicBlock:
    """Apply DCE once (with optional dead-store elimination)."""
    live_stores: Set[int] = {t.ident for t in block if t.op is Opcode.STORE}
    if remove_dead_stores:
        # A store is killed by a later store to the same variable with no
        # intervening load of that variable.
        pending_kill: Dict[str, int] = {}
        for t in block:
            if t.op is Opcode.STORE:
                var = t.variable
                if var in pending_kill:
                    live_stores.discard(pending_kill[var])
                pending_kill[var] = t.ident
            elif t.op is Opcode.LOAD:
                pending_kill.pop(t.variable, None)

    # Mark transitively needed values from the live roots.
    needed: Set[int] = set()
    roots: List[int] = sorted(live_stores)
    # Keep possible faults: an unused Div still divides.
    roots += [t.ident for t in block if t.op is Opcode.DIV]
    stack = list(roots)
    while stack:
        ident = stack.pop()
        if ident in needed:
            continue
        needed.add(ident)
        for ref in block.by_ident(ident).value_refs:
            if ref not in needed:
                stack.append(ref)

    keep = [
        t
        for t in block
        if (t.ident in needed)
        or (t.op is Opcode.STORE and t.ident in live_stores)
    ]
    return BasicBlock(keep, block.name).renumbered()
