"""Traditional optimizations applied before scheduling (section 3.1):
constant folding with value propagation, CSE, DCE, peephole."""

from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .fold import fold_constants
from .manager import (
    OptimizationReport,
    default_passes,
    optimize,
    optimize_block,
)
from .peephole import peephole_optimize

__all__ = [
    "fold_constants",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "peephole_optimize",
    "OptimizationReport",
    "default_passes",
    "optimize",
    "optimize_block",
]
