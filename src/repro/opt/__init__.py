"""Traditional optimizations applied before scheduling (section 3.1):
constant folding with value propagation, CSE, DCE, peephole."""

from .fold import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .peephole import peephole_optimize
from .manager import (
    OptimizationReport,
    default_passes,
    optimize,
    optimize_block,
)

__all__ = [
    "fold_constants",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "peephole_optimize",
    "OptimizationReport",
    "default_passes",
    "optimize",
    "optimize_block",
]
